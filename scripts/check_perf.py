#!/usr/bin/env python3
"""Perf-trajectory regression check over `perf_trajectory.json`.

Stdlib mirror of `specweb-bench`'s `perf::check_against` (the rule
behind `figures --check-perf`), so CI can re-gate a committed ledger
without building the workspace:

  check_perf.py LEDGER.json [--ratio 0.25] [--floor 0.5]

Rule (kept in lockstep with crates/bench/src/perf.rs):

  * the last ledger entry is "current"; the most recent *earlier* entry
    with the same jobs, scale and scale_factor is the baseline — with
    no comparable baseline there is nothing to regress from (exit 0);
  * a phase regresses when `cur > prev * (1 + ratio) + floor` seconds;
    phases are matched by id, ids present in only one run are skipped;
  * `total_seconds` is compared only when both runs covered the same
    phase set (otherwise the totals measure different work).

Exit status 1 with one line per regression; 0 when within tolerance.
"""

import json
import sys

SCHEMA = "specweb-perf/v1"
DEFAULT_RATIO = 0.25
DEFAULT_FLOOR = 0.5


def comparable(a, b):
    return (
        a["jobs"] == b["jobs"]
        and a["scale"] == b["scale"]
        and a["scale_factor"] == b["scale_factor"]
    )


def check(prev, current, ratio, floor):
    limit = lambda s: s * (1.0 + ratio) + floor  # noqa: E731
    regressions = []
    old_phases = {p["id"]: p["seconds"] for p in prev["experiments"]}
    for cur in current["experiments"]:
        old = old_phases.get(cur["id"])
        if old is None:
            continue
        if cur["seconds"] > limit(old):
            regressions.append(
                f"{cur['id']}: {cur['seconds']:.2f}s, was {old:.2f}s at "
                f"{prev['git']} (limit {limit(old):.2f}s = prev x "
                f"{1.0 + ratio:.2f} + {floor:.2f}s)"
            )
    same_phases = set(old_phases) == {p["id"] for p in current["experiments"]}
    if same_phases and current["total_seconds"] > limit(prev["total_seconds"]):
        regressions.append(
            f"total: {current['total_seconds']:.2f}s, was "
            f"{prev['total_seconds']:.2f}s at {prev['git']} "
            f"(limit {limit(prev['total_seconds']):.2f}s)"
        )
    return regressions


def main():
    args = sys.argv[1:]
    ratio, floor = DEFAULT_RATIO, DEFAULT_FLOOR
    paths = []
    while args:
        a = args.pop(0)
        if a == "--ratio":
            ratio = float(args.pop(0))
        elif a == "--floor":
            floor = float(args.pop(0))
        else:
            paths.append(a)
    if len(paths) != 1:
        sys.exit(__doc__.strip())

    with open(paths[0]) as f:
        ledger = json.load(f)
    if ledger.get("schema") != SCHEMA:
        sys.exit(f"error: expected schema {SCHEMA}, got {ledger.get('schema')!r}")
    entries = ledger.get("entries", [])
    if not entries:
        print("perf ok (empty ledger)")
        return
    current = entries[-1]
    prev = next(
        (e for e in reversed(entries[:-1]) if comparable(e, current)), None
    )
    if prev is None:
        print(
            f"perf ok (no prior entry comparable to jobs={current['jobs']} "
            f"scale={current['scale']} x{current['scale_factor']})"
        )
        return
    regressions = check(prev, current, ratio, floor)
    for r in regressions:
        print(f"REGRESSION: {r}")
    if regressions:
        sys.exit(1)
    print(
        f"perf ok ({current['git']} vs {prev['git']}: "
        f"{current['total_seconds']:.2f}s total, within tolerance)"
    )


if __name__ == "__main__":
    main()
