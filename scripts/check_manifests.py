#!/usr/bin/env python3
"""CI checks over the run manifests written by the `figures` binary.

Two subcommands:

  compare DIR_A DIR_B
      Assert both directories contain the same manifest_*.json set and
      that each pair's `deterministic` section is identical. The
      `nondeterministic` section (jobs, git, timing, wall-clock
      metrics) is allowed to differ — that is its whole point.

  gate DIR
      Quality gates over one quick-suite run:
        * no manifest reports closure safety-valve truncation
          (`spec.closure_truncated_rows` > 0) — except `exp-closure`,
          whose valve sweep truncates by design;
        * no manifest reports shed requests (`dissem.shed_requests` or
          `serve.shed_total` > 0) — except `exp-shed` and `exp-hier`,
          where shedding is the subject of the experiment.

Exit status is non-zero on any violation, with one line per finding.
Stdlib only; runs on any python3.
"""

import json
import sys
from pathlib import Path

TRUNCATION_METRIC = "spec.closure_truncated_rows"
TRUNCATION_EXEMPT = {"exp-closure"}
SHED_METRICS = ("dissem.shed_requests", "serve.shed_total")
SHED_EXEMPT = {"exp-shed", "exp-hier"}


def load_manifests(d):
    manifests = {}
    for path in sorted(Path(d).glob("manifest_*.json")):
        with open(path) as f:
            manifests[path.name] = json.load(f)
    if not manifests:
        sys.exit(f"error: no manifest_*.json in {d}")
    return manifests


def counter(metrics, name):
    return metrics.get(name, {}).get("Counter", {}).get("value", 0)


def diff_paths(a, b, prefix=""):
    """Key paths at which two JSON trees differ (leaves only)."""
    if isinstance(a, dict) and isinstance(b, dict):
        paths = []
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                paths.append(f"{prefix}{key}")
            else:
                paths.extend(diff_paths(a[key], b[key], f"{prefix}{key}."))
        return paths
    return [] if a == b else [prefix.rstrip(".")]


# Known nondeterminism classes from the specweb-lint rule set (DESIGN
# §8–§9), matched against the differing key path so a manifest diff
# points straight at the rule family that typically causes it. The
# first match wins, so the specific hints precede the catch-alls; G1 is
# the graph-engine generalization of D2/D3/D4/D5 (a nondeterminism
# source *reachable* from a deterministic root), so every hint below
# also names it and the evidence-chain command that localizes the leak.
LINT_RULE_HINTS = (
    ("seed", "D4/G1", "an unseeded RNG shifts every derived stream"),
    ("time", "D3/G1", "a wall-clock read leaked into the deterministic channel"),
    ("thread", "D5/G1", "an ad-hoc thread raced the deterministic channel"),
    ("metrics", "D1/D2/G1", "a partial_cmp float sort or hash-map iteration "
                            "order leaked into deterministic results"),
    # Overflow-shaped drift (DESIGN §14): a totals/counter field that
    # shrank or wrapped between runs points at unchecked width
    # arithmetic on a scale-tainted value, not at nondeterminism.
    ("totals", "W1", "a scale-magnitude counter merge may have wrapped — "
                     "look for unchecked `+`/`*` on tainted sums"),
    ("bytes", "W1/W2", "a byte total wrapped, or a narrowing cast "
                       "truncated it on the way into the manifest"),
    ("counters", "W1", "a scale-magnitude counter merge may have wrapped — "
                       "look for unchecked `+`/`*` on tainted sums"),
    ("hops", "W1", "hop-weighted traffic is bytes × depth — the widening "
                   "multiply must be checked or saturating"),
)


def lint_hint(path):
    for fragment, rules, why in LINT_RULE_HINTS:
        if fragment in path.lower():
            return (f" [lint rule {rules}: {why}; run "
                    f"`cargo run -p specweb-lint -- --graph --width` for "
                    f"the root-to-seed evidence chain]")
    return ""


def cmd_compare(dir_a, dir_b):
    a, b = load_manifests(dir_a), load_manifests(dir_b)
    failures = []
    if set(a) != set(b):
        failures.append(
            f"manifest sets differ: only in {dir_a}: {sorted(set(a) - set(b))}, "
            f"only in {dir_b}: {sorted(set(b) - set(a))}"
        )
    for name in sorted(set(a) & set(b)):
        for path in diff_paths(a[name]["deterministic"], b[name]["deterministic"]):
            failures.append(
                f"{name}: deterministic section differs at `{path}`{lint_hint(path)}"
            )
    return failures


def cmd_gate(d):
    failures = []
    for name, manifest in load_manifests(d).items():
        exp = manifest.get("id", name)
        # Non-fatal: dropped tracer events mean the exported event log
        # is truncated (the metrics are unaffected), so warn loudly but
        # do not fail the gate on it.
        nondet = manifest["nondeterministic"]
        for field in ("dropped_events", "dropped_wall_events"):
            n = nondet.get(field, 0)
            if n > 0:
                print(
                    f"WARN: {name}: {field} = {n} (tracer ring overflowed; "
                    f"the exported event log is incomplete)"
                )
        # Both channels: a truncation or shed count is a finding no
        # matter which channel a subsystem happens to report it on.
        metrics = dict(manifest["deterministic"]["metrics"])
        metrics.update(manifest["nondeterministic"]["metrics"])
        if exp not in TRUNCATION_EXEMPT:
            n = counter(metrics, TRUNCATION_METRIC)
            if n > 0:
                failures.append(
                    f"{name}: {TRUNCATION_METRIC} = {n} (closure safety valve "
                    f"fired outside {sorted(TRUNCATION_EXEMPT)})"
                )
        if exp not in SHED_EXEMPT:
            for metric in SHED_METRICS:
                n = counter(metrics, metric)
                if n > 0:
                    failures.append(
                        f"{name}: {metric} = {n} (shedding outside "
                        f"{sorted(SHED_EXEMPT)})"
                    )
    return failures


def main():
    if len(sys.argv) >= 3 and sys.argv[1] == "compare" and len(sys.argv) == 4:
        failures = cmd_compare(sys.argv[2], sys.argv[3])
    elif len(sys.argv) == 3 and sys.argv[1] == "gate":
        failures = cmd_gate(sys.argv[2])
    else:
        sys.exit(__doc__.strip())
    for f in failures:
        print(f"FAIL: {f}")
    if failures:
        sys.exit(1)
    print("manifests ok")


if __name__ == "__main__":
    main()
