//! Offline stand-in for `serde_derive`.
//!
//! Generates implementations of the stand-in `serde::Serialize` /
//! `serde::Deserialize` traits (which are value-tree based, see
//! `vendor/serde`). The input is parsed directly from the
//! `proc_macro::TokenStream` — no `syn`/`quote`, since the build
//! environment has no registry access.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields;
//! * tuple structs (arity 1 serializes as the inner value, matching
//!   serde's newtype behavior and `#[serde(transparent)]`);
//! * enums with unit and struct variants (externally tagged, like serde);
//! * the `#[serde(transparent)]` attribute (a no-op for arity-1 tuple
//!   structs, which already serialize transparently).
//!
//! Unsupported shapes (generics, tuple variants with >1 field, other
//! `#[serde(...)]` attributes) panic at expansion time with a clear
//! message rather than silently generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    data: Data,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tok: &TokenTree, name: &str) -> bool {
    matches!(tok, TokenTree::Ident(id) if id.to_string() == name)
}

/// Validates a `#[serde(...)]` attribute body: only `transparent` is
/// understood; anything else would change the wire shape, so bail loudly.
fn check_serde_attr(group: &proc_macro::Group) {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.len() == 2 && is_ident(&toks[0], "serde") {
        if let TokenTree::Group(args) = &toks[1] {
            for tok in args.stream() {
                match &tok {
                    TokenTree::Ident(id) if id.to_string() == "transparent" => {}
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => panic!(
                        "serde stand-in: unsupported #[serde({other})] attribute \
                         (only `transparent` is implemented)"
                    ),
                }
            }
        }
    }
}

/// Skips attributes (recording serde ones) and visibility at `*i`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(tok) if is_punct(tok, '#') => {
                *i += 1;
                if matches!(toks.get(*i), Some(t) if is_punct(t, '!')) {
                    *i += 1;
                }
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    check_serde_attr(g);
                }
                *i += 1;
            }
            Some(tok) if is_ident(tok, "pub") => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists (struct bodies / struct variants).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        match &toks[i] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => panic!("serde stand-in: expected field name, found {other}"),
        }
        i += 1;
        if !matches!(toks.get(i), Some(t) if is_punct(t, ':')) {
            panic!(
                "serde stand-in: expected `:` after field `{}`",
                names.last().unwrap()
            );
        }
        i += 1;
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tok in group.stream() {
        match &tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => any = true,
            },
            _ => any = true,
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stand-in: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant, up to the separating comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!(
            "serde stand-in: expected `struct` or `enum`, found {}",
            toks[i]
        );
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in: expected type name, found {other}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(t) if is_punct(t, '<')) {
        panic!("serde stand-in: generic type `{name}` is not supported");
    }
    let data = if is_enum {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g))
            }
            _ => panic!("serde stand-in: malformed enum `{name}`"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g)))
            }
            _ => Data::Struct(Fields::Unit),
        }
    };
    Input { name, data }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Data::Struct(Fields::Named(fields)) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Obj(__fields)");
            s
        }
        Data::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "::serde::Value::Arr(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut inner = String::from(
                            "let mut __vf: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__vf.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{\n{inner}\
                             ::serde::Value::Obj(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Obj(__vf))]))\n}},\n"
                        ));
                    }
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => \
                         ::serde::Value::Obj(::std::vec::Vec::from([\
                         (::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(__f0))])),\n"
                    )),
                    Fields::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = pats
                            .iter()
                            .map(|p| format!("::serde::Serialize::to_value({p})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => \
                             ::serde::Value::Obj(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Arr(::std::vec::Vec::from([{}])))])),\n",
                            pats.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Data::Struct(Fields::Named(fields)) => {
            let mut s = format!(
                "let __obj = match _v {{\n\
                 ::serde::Value::Obj(o) => o,\n\
                 _ => return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"{name}: expected object\")),\n}};\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: match ::serde::obj_get(__obj, \"{f}\") {{\n\
                     ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"{name}: missing field `{f}`\")),\n}},\n"
                ));
            }
            s.push_str("})");
            s
        }
        Data::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(_v)?))")
        }
        Data::Struct(Fields::Tuple(n)) => {
            let mut s = format!(
                "let __arr = match _v {{\n\
                 ::serde::Value::Arr(a) if a.len() == {n} => a,\n\
                 _ => return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"{name}: expected array of {n}\")),\n}};\n\
                 ::std::result::Result::Ok({name}(\n"
            );
            for k in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::from_value(&__arr[{k}])?,\n"
                ));
            }
            s.push_str("))");
            s
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut inner = format!(
                            "let __obj = match _inner {{\n\
                             ::serde::Value::Obj(o) => o,\n\
                             _ => return ::std::result::Result::Err(::serde::Error::custom(\
                             \"{name}::{vn}: expected object\")),\n}};\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: match ::serde::obj_get(__obj, \"{f}\") {{\n\
                                 ::std::option::Option::Some(x) => \
                                 ::serde::Deserialize::from_value(x)?,\n\
                                 ::std::option::Option::None => \
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"{name}::{vn}: missing field `{f}`\")),\n}},\n"
                            ));
                        }
                        inner.push_str("})");
                        data_arms.push_str(&format!("\"{vn}\" => {{\n{inner}\n}},\n"));
                    }
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(_inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let mut inner = format!(
                            "let __arr = match _inner {{\n\
                             ::serde::Value::Arr(a) if a.len() == {n} => a,\n\
                             _ => return ::std::result::Result::Err(::serde::Error::custom(\
                             \"{name}::{vn}: expected array of {n}\")),\n}};\n\
                             ::std::result::Result::Ok({name}::{vn}(\n"
                        );
                        for k in 0..*n {
                            inner.push_str(&format!(
                                "::serde::Deserialize::from_value(&__arr[{k}])?,\n"
                            ));
                        }
                        inner.push_str("))");
                        data_arms.push_str(&format!("\"{vn}\" => {{\n{inner}\n}},\n"));
                    }
                }
            }
            format!(
                "match _v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 &format!(\"{name}: unknown variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Obj(o) if o.len() == 1 => {{\n\
                 let (__tag, _inner) = &o[0];\n\
                 match __tag.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 &format!(\"{name}: unknown variant `{{other}}`\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"{name}: expected string or single-key object\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(_v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde stand-in: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde stand-in: generated Deserialize impl must parse")
}
