//! Offline stand-in for the `rand` crate.
//!
//! This container has no network access and no vendored registry, so the
//! workspace patches `rand` with this minimal, dependency-free subset of
//! the 0.8 API (the parts `specweb` actually uses). The generator is
//! xoshiro256++ seeded through SplitMix64 — a well-studied, public-domain
//! algorithm with excellent statistical quality for simulation workloads.
//!
//! Provided surface:
//!
//! * [`rngs::StdRng`] — the workspace's only concrete generator;
//! * [`Rng`] — `gen`, `gen_range` (integer + float ranges, half-open and
//!   inclusive), `gen_bool`;
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`.
//!
//! The streams differ from upstream `rand`'s (`StdRng` is ChaCha12 there),
//! which is explicitly allowed: `rand` documents `StdRng` streams as
//! non-portable across versions, and every consumer in this workspace
//! derives its seeds from `specweb_core::rng::SeedTree` anyway.

#![forbid(unsafe_code)]

/// SplitMix64 — used to expand a `u64` seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna, 2019). 256 bits of state, period
    /// 2^256 − 1, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is the one forbidden xoshiro state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// The raw generator interface (a subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The full-entropy seed type.
    type Seed;
    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds a generator from a `u64` (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

mod dist {
    use super::RngCore;

    /// Types samplable uniformly over their full domain (`Rng::gen`).
    pub trait Standard: Sized {
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        #[inline]
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Standard for u32 {
        #[inline]
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Standard for u16 {
        #[inline]
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
            (rng.next_u64() >> 48) as u16
        }
    }
    impl Standard for u8 {
        #[inline]
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }
    impl Standard for usize {
        #[inline]
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Standard for i64 {
        #[inline]
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Standard for i32 {
        #[inline]
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }
    impl Standard for bool {
        #[inline]
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    /// Uniform in `[0, 1)` with 53 bits of precision.
    impl Standard for f64 {
        #[inline]
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    /// Uniform in `[0, 1)` with 24 bits of precision.
    impl Standard for f32 {
        #[inline]
        fn sample_std<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Unbiased sampling of an integer in `[0, bound)` via Lemire's
    /// multiply-with-rejection method.
    #[inline]
    pub fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = rng.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound && low < bound.wrapping_neg() {
                // Fast accept for the overwhelmingly common case.
                return (m >> 64) as u64;
            }
            // Exact threshold check (rare path).
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Ranges usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(below(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(below(rng, span as u64) as $t)
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let u = <$t as Standard>::sample_std(rng);
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range in gen_range");
                    let u = <$t as Standard>::sample_std(rng);
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);
}

pub use dist::{SampleRange, Standard};

/// User-facing random-value methods, blanket-implemented for every
/// generator (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample over the value type's full domain (for floats:
    /// `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_std(self)
    }

    /// A uniform sample from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_std(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(43).gen();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_float_is_half_on_average() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut r = StdRng::seed_from_u64(13);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
