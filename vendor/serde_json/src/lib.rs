//! Offline stand-in for `serde_json`.
//!
//! Converts between the stand-in `serde::Value` tree and JSON text.
//! Implements the subset of the upstream API this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`],
//! [`from_value`], the [`json!`] macro, and the re-exported [`Value`].
//!
//! Writer notes: floats use Rust's shortest-roundtrip `Display`, so any
//! finite `f64` survives a text round-trip exactly; non-finite floats
//! serialize as `null` (upstream behavior). Integer-keyed maps become
//! string-keyed objects, as upstream.

use std::fmt::Write as _;

pub use serde::Error;
pub use serde::Value;
use serde::{de::DeserializeOwned, Serialize};

pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Serializes a value into its `Value` tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a `Value` tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's float Display is shortest-roundtrip, so the
                // printed text parses back to the identical f64. Whole
                // floats print without a fraction ("2"), which re-parses
                // as an integer; f64 deserialization accepts that.
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("json parse error at byte {}: {}", self.pos, msg))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}

/// Builds a [`Value`] from JSON-ish literal syntax.
///
/// Arrays and objects are token-munched so element/value expressions may
/// span several tokens (`-4`, `1 + 2`, nested `{...}`/`[...]`); commas
/// inside nested groups are invisible to the muncher, so only true
/// separators split entries. Non-literal expressions are serialized via
/// their `Serialize` impl.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json!(@arr [] () $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json!(@obj [] $($tt)*) };

    // Array muncher: @arr [finished elements] (current element) rest…
    (@arr [$($done:tt)*] ($($cur:tt)+) , $($rest:tt)*) => {
        $crate::json!(@arr [$($done)* (($($cur)*))] () $($rest)*)
    };
    (@arr [$($done:tt)*] ($($cur:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json!(@arr [$($done)*] ($($cur)* $next) $($rest)*)
    };
    (@arr [$($done:tt)*] ($($cur:tt)+)) => {
        $crate::json!(@arr_end $($done)* (($($cur)*)))
    };
    (@arr [$($done:tt)*] ()) => {
        $crate::json!(@arr_end $($done)*)
    };
    (@arr_end $( (($($elem:tt)*)) )*) => {
        $crate::Value::Arr(::std::vec![ $( $crate::json!($($elem)*) ),* ])
    };

    // Object muncher: @obj [finished entries] key : value , …
    (@obj [$($done:tt)*] $key:literal : $($rest:tt)*) => {
        $crate::json!(@objval [$($done)*] $key () $($rest)*)
    };
    (@obj [$($done:tt)*]) => {
        $crate::json!(@obj_end $($done)*)
    };
    (@objval [$($done:tt)*] $key:literal ($($cur:tt)+) , $($rest:tt)*) => {
        $crate::json!(@obj [$($done)* (($key) (($($cur)*)))] $($rest)*)
    };
    (@objval [$($done:tt)*] $key:literal ($($cur:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json!(@objval [$($done)*] $key ($($cur)* $next) $($rest)*)
    };
    (@objval [$($done:tt)*] $key:literal ($($cur:tt)+)) => {
        $crate::json!(@obj [$($done)* (($key) (($($cur)*)))])
    };
    (@obj_end $( (($key:literal) (($($val:tt)*))) )*) => {
        $crate::Value::Obj(::std::vec![
            $( (::std::string::String::from($key), $crate::json!($($val)*)) ),*
        ])
    };

    // Fallback: any serializable expression.
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let v = json!({
            "name": "spec\tweb",
            "count": 3,
            "neg": -4,
            "pi": 3.25,
            "flag": true,
            "nothing": null,
            "list": [1, 2, 3],
            "nested": {"a": [true, false]}
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 123456.789, f64::MIN_POSITIVE] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn escapes_and_unicode() {
        let s = "a\"b\\c\nd\u{1F600}é";
        let text = to_string(s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        // Surrogate-pair escapes parse too.
        let back: String = from_str(r#""\uD83D\uDE00""#).unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn parse_errors_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "nul",
            "1e",
            "--1",
            "[1]x",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integer_boundaries() {
        let back: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(back, Value::U64(u64::MAX));
        let back: Value = from_str("-9223372036854775808").unwrap();
        assert_eq!(back, Value::I64(i64::MIN));
    }
}
