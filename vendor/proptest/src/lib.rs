//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing subset this workspace uses: the
//! [`proptest!`] macro, range / tuple / collection / option strategies,
//! `prop_map`, [`prop_oneof!`], and `prop_assert*` macros. Case inputs
//! are generated from a deterministic seed derived from the test name,
//! so failures reproduce exactly across runs (there is no shrinking —
//! the failing input is printed verbatim instead).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    use super::*;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: strategies produce
    /// final values directly and failures are not shrunk.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

/// `prop::collection`, `prop::option`, … — the combinator namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// An inclusive-exclusive size range for generated collections.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            pub min: usize,
            pub max_exclusive: usize,
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    min: r.start,
                    max_exclusive: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max_exclusive: r.end() + 1,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    min: n,
                    max_exclusive: n + 1,
                }
            }
        }

        /// `Vec`s of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.min..self.size.max_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// `Option<T>` that is `Some` three times out of four (matching
        /// real proptest's bias toward interesting values).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen_range(0u32..4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

pub mod test_runner {
    use super::*;
    use crate::strategy::Strategy;

    /// Runner configuration (`cases` is the only knob this stand-in
    /// honors).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    /// Upstream's name for the runner config, as used in
    /// `#![proptest_config(...)]`.
    pub type ProptestConfig = Config;

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property assertion (returned early by `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    fn fnv1a(text: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives `cases` generated inputs through the property `f`,
    /// panicking (like a failed `#[test]`) on the first failure.
    pub fn run_cases<S, F>(config: &Config, name: &str, strategy: &S, f: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        // Deterministic per-test seed: failures reproduce across runs.
        // PROPTEST_SEED_OFFSET rotates the stream without code changes.
        let offset = std::env::var("PROPTEST_SEED_OFFSET")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        let mut rng = StdRng::seed_from_u64(fnv1a(name) ^ offset);
        for case in 0..config.cases {
            let input = strategy.generate(&mut rng);
            let text = format!("{input:?}");
            if let Err(e) = f(input) {
                panic!(
                    "proptest case {case}/{cases} failed: {msg}\n    input: {text}",
                    cases = config.cases,
                    msg = e.message,
                );
            }
        }
    }
}

pub use test_runner::TestCaseError;

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(
            <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __strategy = ($($strat,)*);
            $crate::test_runner::run_cases(
                &__config,
                stringify!($name),
                &__strategy,
                |($($arg,)*)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_and_option_shapes(
            v in prop::collection::vec((0u8..4, 0u16..100), 1..9),
            o in prop::option::of(1u64..64),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            if let Some(x) = o {
                prop_assert!((1..64).contains(&x));
            }
        }

        #[test]
        fn oneof_and_map_compose(
            z in prop_oneof![
                (0u8..4).prop_map(u32::from),
                (10u8..14).prop_map(u32::from),
            ],
        ) {
            prop_assert!(z < 4 || (10..14).contains(&z), "z = {}", z);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn determinism_across_runners() {
        use crate::strategy::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let strat = crate::prop::collection::vec(0u16..1000, 5..6);
        let a = strat.generate(&mut StdRng::seed_from_u64(1));
        let b = strat.generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    // `proptest!` forwards attributes, so `#[should_panic]` rides along
    // with `#[test]` — the generated test must fail with the case text.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        #[should_panic(expected = "proptest case")]
        fn failures_panic_with_input(x in 0u8..2) {
            prop_assert!(x > 200);
        }
    }
}
