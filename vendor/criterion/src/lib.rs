//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking API surface the `specweb-bench` bench
//! targets use — groups, throughput annotation, `bench_function` /
//! `bench_with_input`, `criterion_group!` / `criterion_main!` — with a
//! simple wall-clock timing loop instead of criterion's statistical
//! machinery. Each benchmark reports median time per iteration and,
//! when a throughput is set, derived elements/second. Good enough to
//! compare orders of magnitude and catch regressions by eye; not a
//! replacement for criterion's confidence intervals.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A composite benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    /// Median wall-clock nanoseconds per iteration, set by `iter`.
    median_ns: f64,
    /// Measurement budget.
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call (fills caches, faults in lazy statics).
        black_box(routine());
        let mut samples = Vec::with_capacity(self.sample_size);
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed().as_nanos() as f64);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        median_ns: 0.0,
        measurement_time,
        sample_size,
    };
    f(&mut b);
    let mut line = format!("bench {name:<48} {:>12}/iter", fmt_ns(b.median_ns));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n, "B"),
        };
        if b.median_ns > 0.0 {
            let per_sec = count as f64 * 1e9 / b.median_ns;
            line.push_str(&format!("  ({per_sec:.3e} {unit}/s)"));
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut f = f;
        run_one(
            &name,
            self.throughput,
            self.sample_size,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut f = f;
        run_one(
            &name,
            self.throughput,
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size,
            measurement_time,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(
            &id.into_id(),
            None,
            self.sample_size,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    /// Upstream parses CLI filter args here; the stand-in runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stand-in");
        g.throughput(Throughput::Elements(100));
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn api_surface_works() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
        c.bench_function(BenchmarkId::new("top", "level"), |b| {
            b.iter(|| black_box(1))
        });
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
