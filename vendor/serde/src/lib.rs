//! Offline stand-in for `serde`.
//!
//! The build environment has no network or registry access, so the
//! workspace vendors the small slice of serde it uses. Instead of
//! serde's visitor architecture, serialization goes through an
//! in-memory [`Value`] tree: `Serialize` renders a value into a
//! `Value`, `Deserialize` rebuilds one from it. `vendor/serde_json`
//! handles the `Value` ⇄ JSON text conversion. The derive macros in
//! `vendor/serde_derive` generate externally-tagged representations
//! matching real serde's defaults, so persisted JSON stays compatible
//! with the upstream crate if it is ever restored.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree (the interchange format between the
/// `Serialize`/`Deserialize` traits and `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key order is preserved (insertion order of the serializer).
    Obj(Vec<(String, Value)>),
}

/// Looks up a key in an object's entry list.
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-key / array-index lookup (non-panicking `Index` twin).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(o) => obj_get(o, key),
            _ => None,
        }
    }
}

/// Compact JSON rendering, matching upstream `serde_json::Value`.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::F64(x) if x.is_finite() => write!(f, "{x}"),
            Value::F64(_) => f.write_str("null"),
            Value::Str(s) => write_json_string(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(entries) => {
                f.write_str("{")?;
                for (i, (key, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, key)?;
                    write!(f, ":{val}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// `value["key"]` lookup; missing keys yield `Value::Null` like
/// `serde_json`.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Arr(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Value::U64(n) => <$t>::try_from(n).is_ok_and(|v| v == *other),
                    Value::I64(n) => <$t>::try_from(n).is_ok_and(|v| v == *other),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::de` for `DeserializeOwned` bounds.
pub mod de {
    pub use crate::Deserialize;

    /// In this stand-in every `Deserialize` type is owned.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(String::from)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::custom("expected null"))
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let want = [$($idx),+].len();
                if arr.len() != want {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, found array of {}", want, arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Maps serialize with stringified keys, exactly like `serde_json`
/// (which only accepts string or integer keys).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type (serialized as {other:?})"),
    }
}

/// Inverse of [`key_to_string`]: try the raw string first, then an
/// integer reinterpretation (covers `#[serde(transparent)]` id newtypes).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if key == "true" || key == "false" {
        if let Ok(k) = K::from_value(&Value::Bool(key == "true")) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!(
        "cannot reconstruct map key from `{key}`"
    )))
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected map object"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected map object"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(42u32.to_value(), Value::U64(42));
        assert_eq!(u32::from_value(&Value::U64(42)).unwrap(), 42);
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(i64::from_value(&Value::I64(-3)).unwrap(), -3);
        assert_eq!(f64::from_value(&Value::U64(2)).unwrap(), 2.0);
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let back = Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert(7u32, vec![1u8, 2]);
        let back = HashMap::<u32, Vec<u8>>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Value::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn value_index_and_eq() {
        let v = Value::Obj(vec![("a".into(), Value::U64(7))]);
        assert_eq!(v["a"], 7);
        assert!(v["missing"].is_null());
        assert_eq!(Value::Str("hi".into()), "hi");
        assert_eq!(Value::F64(1.5), 1.5);
    }
}
