//! Serialization round-trips: every configuration and result type that
//! the harness persists to `results/*.json` (or that a deployment would
//! store in a config file) must survive a JSON round-trip unchanged.

use specweb::prelude::*;
use specweb::spec::cache::CacheModel;
use specweb::spec::policy::Policy;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn ids_and_units_roundtrip() {
    assert_eq!(roundtrip(&DocId::new(42)), DocId::new(42));
    assert_eq!(roundtrip(&ClientId::new(7)), ClientId::new(7));
    assert_eq!(roundtrip(&Bytes::from_kib(3)), Bytes::from_kib(3));
    assert_eq!(roundtrip(&SimTime::from_secs(9)), SimTime::from_secs(9));
    assert_eq!(roundtrip(&Duration::INFINITE), Duration::INFINITE);
    // Transparent newtypes serialize as bare numbers.
    assert_eq!(serde_json::to_string(&DocId::new(5)).unwrap(), "5");
    assert_eq!(serde_json::to_string(&Bytes::new(10)).unwrap(), "10");
}

#[test]
fn trace_config_roundtrips() {
    let cfg = TraceConfig::bu_www(123);
    let back = roundtrip(&cfg);
    assert_eq!(back.seed, cfg.seed);
    assert_eq!(back.n_servers, cfg.n_servers);
    assert_eq!(back.duration_days, cfg.duration_days);
    assert_eq!(back.site.n_pages, cfg.site.n_pages);
    assert_eq!(back.clients.n_clients, cfg.clients.n_clients);
    // And the round-tripped config generates the identical trace.
    let topo = Topology::two_level(3, 4);
    let mut small = TraceConfig::small(9);
    small.duration_days = 3;
    let small_back = roundtrip(&small);
    let a = TraceGenerator::new(small).unwrap().generate(&topo).unwrap();
    let b = TraceGenerator::new(small_back)
        .unwrap()
        .generate(&topo)
        .unwrap();
    assert_eq!(a.accesses, b.accesses);
}

#[test]
fn spec_config_roundtrips() {
    let mut cfg = SpecConfig::baseline(0.35);
    cfg.policy = Policy::Hybrid {
        push_tp: 0.9,
        hint_tp: 0.2,
    };
    cfg.cache = CacheModel::Session {
        timeout: Duration::from_secs(3_600),
    };
    cfg.max_size = Bytes::from_kib(29);
    cfg.cooperative = true;
    let back = roundtrip(&cfg);
    assert_eq!(back.policy, cfg.policy);
    assert_eq!(back.cache, cfg.cache);
    assert_eq!(back.max_size, cfg.max_size);
    assert_eq!(back.cooperative, cfg.cooperative);
    assert_eq!(back.estimator.history_days, cfg.estimator.history_days);
}

#[test]
fn dissemination_config_roundtrips() {
    let cfg = DisseminationConfig {
        fraction: 0.04,
        n_proxies: 9,
        tailored: true,
        count_dissemination_traffic: true,
        count_update_traffic: false,
        proxy_daily_request_cap: Some(500),
        rank_for_traffic: false,
        remote_only: true,
        explicit_proxies: Some(vec![NodeId::new(3), NodeId::new(4)]),
        latency: LatencyModel::default(),
    };
    let json = serde_json::to_string(&cfg).unwrap();
    let back: DisseminationConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.fraction, cfg.fraction);
    assert_eq!(back.n_proxies, cfg.n_proxies);
    assert_eq!(back.proxy_daily_request_cap, Some(500));
    assert_eq!(back.explicit_proxies, cfg.explicit_proxies);
}

#[test]
fn outcomes_roundtrip() {
    // Run a tiny simulation and round-trip its outcome.
    let topo = Topology::two_level(3, 4);
    let mut tc = TraceConfig::small(11);
    tc.duration_days = 4;
    tc.sessions_per_day = 20;
    let trace = TraceGenerator::new(tc).unwrap().generate(&topo).unwrap();

    let mut cfg = SpecConfig::baseline(0.4);
    cfg.estimator.history_days = 3;
    cfg.warmup_days = 1;
    let out = SpecSim::new(&trace, &topo).run(&cfg).unwrap();
    let back: SpecOutcome = roundtrip(&out);
    assert_eq!(back.speculative, out.speculative);
    assert_eq!(back.baseline, out.baseline);
    assert_eq!(back.pushes, out.pushes);

    let d = DisseminationSim::new(&trace, &topo)
        .unwrap()
        .run(&DisseminationConfig::default(), &[])
        .unwrap();
    let dback: DisseminationOutcome = roundtrip(&d);
    assert_eq!(dback.proxy_hits, d.proxy_hits);
    assert!((dback.reduction - d.reduction).abs() < 1e-15);
}

#[test]
fn ratios_and_totals_roundtrip() {
    let t = RunTotals {
        bytes_sent: Bytes::new(123),
        server_requests: 4,
        latency_ms: 567,
        accesses: 8,
        miss_bytes: Bytes::new(90),
        accessed_bytes: Bytes::new(1_000),
    };
    assert_eq!(roundtrip(&t), t);
    let r = Ratios::between(&t, &t);
    let back = roundtrip(&r);
    assert_eq!(back, r);
}

#[test]
fn topology_roundtrips() {
    let topo = Topology::balanced(2, 3, 4);
    let back: Topology = roundtrip(&topo);
    assert_eq!(back.len(), topo.len());
    for &l in topo.leaves() {
        assert_eq!(back.depth(l), topo.depth(l));
        assert_eq!(back.parent(l), topo.parent(l));
    }
}

#[test]
fn dep_matrix_roundtrips() {
    use specweb::trace::clients::Locality;
    let accesses: Vec<Access> = (0..20u32)
        .flat_map(|k| {
            let t = u64::from(k) * 1_000_000;
            [
                Access {
                    time: SimTime::from_millis(t),
                    client: ClientId::new(k),
                    doc: DocId::new(1),
                    server: ServerId::new(0),
                    locality: Locality::Remote,
                    session: 0,
                },
                Access {
                    time: SimTime::from_millis(t + 100),
                    client: ClientId::new(k),
                    doc: DocId::new(2 + k % 2),
                    server: ServerId::new(0),
                    locality: Locality::Remote,
                    session: 0,
                },
            ]
        })
        .collect();
    let m = DepMatrixBuilder::estimate(&accesses, Duration::from_secs(5), 1);
    let back: DepMatrix = roundtrip(&m);
    assert_eq!(back.n_entries(), m.n_entries());
    for (i, j, p) in m.entries() {
        assert_eq!(back.get(i, j), p);
    }
}
