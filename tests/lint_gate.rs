//! Tier-1 hook for the determinism & safety lint: a plain `cargo test`
//! at the workspace root fails on any rule violation or stale
//! `lint:allow`, exactly like CI's
//! `cargo run -p specweb-lint -- --deny-all`.
//!
//! The full rule-by-rule behavior is specified by the fixture tests in
//! `crates/lint/tests/`; this test only asserts the tree is clean.

#[test]
fn workspace_passes_the_determinism_lint() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = specweb_lint::lint_workspace(root).expect("walking the workspace");

    let mut msgs: Vec<String> = report.violations.iter().map(|d| d.to_string()).collect();
    msgs.extend(
        report
            .unused_allows
            .iter()
            .map(|d| format!("(unused allow) {d}")),
    );
    assert!(
        msgs.is_empty(),
        "determinism lint failed (see DESIGN.md §8):\n{}",
        msgs.join("\n")
    );
}
