//! Robustness tests: degenerate topologies, pathological configurations
//! and hostile inputs must produce errors or graceful no-ops — never
//! panics or nonsense metrics.

use proptest::prelude::*;
use specweb::prelude::*;
use specweb::spec::policy::Policy;
use specweb::trace::cleaning::{clean, CleaningConfig};
use specweb::trace::import::{trace_from_records, ImportConfig};
use specweb::trace::logfmt;

/// A topology with no interior nodes at all: root + leaves.
fn flat_topology() -> Topology {
    Topology::balanced(0, 1, 6)
}

#[test]
fn dissemination_without_proxy_candidates_is_a_no_op() {
    let topo = flat_topology();
    let mut tc = TraceConfig::small(700);
    tc.duration_days = 4;
    tc.sessions_per_day = 30;
    let trace = TraceGenerator::new(tc).unwrap().generate(&topo).unwrap();
    let sim = DisseminationSim::new(&trace, &topo).unwrap();
    let out = sim.run(&DisseminationConfig::default(), &[]).unwrap();
    // No interior nodes → nowhere to put proxies → exactly the baseline.
    assert_eq!(out.proxy_hits, 0);
    assert!(out.reduction.abs() < 1e-12);
}

#[test]
fn speculation_on_flat_topology_works() {
    // Clients one hop from the server: speculation is about caching, not
    // distance, so it must still function.
    let topo = flat_topology();
    let mut tc = TraceConfig::small(701);
    tc.duration_days = 8;
    tc.sessions_per_day = 40;
    let trace = TraceGenerator::new(tc).unwrap().generate(&topo).unwrap();
    let mut cfg = SpecConfig::baseline(0.3);
    cfg.estimator.history_days = 6;
    cfg.warmup_days = 2;
    let out = SpecSim::new(&trace, &topo).run(&cfg).unwrap();
    assert!(out.ratios.server_load < 1.0);
}

#[test]
fn single_client_trace_is_fine() {
    let topo = Topology::two_level(2, 2);
    let mut tc = TraceConfig::small(702);
    tc.clients.n_clients = 1;
    tc.clients.local_fraction = 0.0;
    tc.duration_days = 4;
    tc.sessions_per_day = 10;
    let trace = TraceGenerator::new(tc).unwrap().generate(&topo).unwrap();
    assert!(trace.active_clients() <= 1);
    let mut cfg = SpecConfig::baseline(0.5);
    cfg.estimator.history_days = 3;
    cfg.warmup_days = 1;
    let out = SpecSim::new(&trace, &topo).run(&cfg).unwrap();
    assert!(out.ratios.bandwidth.is_finite());
}

#[test]
fn hostile_log_lines_never_panic() {
    let hostile = [
        "client4294967295 - - [18446744073709551615] \"GET /doc/4294967295 HTTP/1.0\" 65535 18446744073709551615",
        "client1 - - [0] \"GET  HTTP/1.0\" 200 5",
        "client1 - - [[0]] \"GET / HTTP/1.0\" 200 5",
        "client1 - - [0] \"\" 200 5",
        "client-1 - - [0] \"GET / HTTP/1.0\" 200 5",
        "client1 - - [0] \"GET / HTTP/1.0\" 200 -5",
        "\u{0}\u{1}\u{2}",
        "client1 - - [0] \"GET /../../etc/passwd HTTP/1.0\" 200 5",
    ];
    for line in hostile {
        // Must return Ok or Err, never panic.
        let _ = logfmt::LogRecord::parse(line, 1);
    }
    // The bulk parser reports, not dies.
    let text = hostile.join("\n");
    let (records, bad) = logfmt::parse_log(&text);
    assert_eq!(records.len() + bad.len(), hostile.len());
}

#[test]
fn import_survives_a_cleaned_hostile_log() {
    let text = "client1 - - [0] \"GET /a HTTP/1.0\" 200 10\n\
                garbage line\n\
                client2 - - [500] \"GET /cgi-bin/x HTTP/1.0\" 200 10\n\
                client1 - - [1000] \"GET /missing HTTP/1.0\" 404 0\n\
                client3 - - [2000] \"GET /a HTTP/1.0\" 200 10\n";
    let (records, bad) = logfmt::parse_log(text);
    assert_eq!(bad.len(), 1);
    let (cleaned, _) = clean(records, &CleaningConfig::typical());
    let topo = Topology::two_level(2, 3);
    let trace = trace_from_records(&cleaned, &topo, &ImportConfig::default(), |_| false).unwrap();
    assert_eq!(trace.len(), 2); // the two good, non-script, 200 lines
    assert_eq!(trace.catalog.len(), 1); // both hit /a
}

#[test]
fn imported_trace_runs_both_simulators() {
    // Full external-data path: synthetic → log text → parse → clean →
    // import → simulate. This is the workflow for real logs.
    let topo = Topology::balanced(2, 3, 4);
    let mut tc = TraceConfig::small(703);
    tc.duration_days = 8;
    tc.sessions_per_day = 50;
    let orig = TraceGenerator::new(tc).unwrap().generate(&topo).unwrap();
    let text = logfmt::write_log(&orig);
    let (records, _) = logfmt::parse_log(&text);
    let (cleaned, _) = clean(records, &CleaningConfig::typical());
    let trace = trace_from_records(&cleaned, &topo, &ImportConfig::default(), |raw| {
        orig.clients.get(raw).locality == specweb::trace::clients::Locality::Local
    })
    .unwrap();

    let mut cfg = SpecConfig::baseline(0.3);
    cfg.estimator.history_days = 6;
    cfg.warmup_days = 2;
    let s = SpecSim::new(&trace, &topo).run(&cfg).unwrap();
    assert!(s.ratios.server_load < 1.0, "{:?}", s.ratios);

    let d = DisseminationSim::new(&trace, &topo)
        .unwrap()
        .run(&DisseminationConfig::default(), &[])
        .unwrap();
    assert!(d.reduction > 0.0);
}

#[test]
fn extreme_policies_stay_sane() {
    let topo = Topology::two_level(3, 4);
    let mut tc = TraceConfig::small(704);
    tc.duration_days = 6;
    tc.sessions_per_day = 30;
    let trace = TraceGenerator::new(tc).unwrap().generate(&topo).unwrap();
    let sim = SpecSim::new(&trace, &topo);

    // MaxSize = 1 byte: nothing can be pushed.
    let mut cfg = SpecConfig::baseline(0.1);
    cfg.estimator.history_days = 4;
    cfg.warmup_days = 2;
    cfg.max_size = Bytes::new(1);
    let out = sim.run(&cfg).unwrap();
    assert_eq!(out.pushes, 0);
    assert!((out.ratios.bandwidth - 1.0).abs() < 1e-12);

    // TopK with an enormous k: bounded by the closure rows.
    let mut cfg = SpecConfig::baseline(0.1);
    cfg.estimator.history_days = 4;
    cfg.warmup_days = 2;
    cfg.policy = Policy::TopK {
        k: usize::MAX,
        floor: 0.05,
    };
    let out = sim.run(&cfg).unwrap();
    assert!(out.ratios.bandwidth.is_finite());
}

/// Arbitrary (possibly control-character-ridden) text lines.
fn arbitrary_line() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..=255u8, 0..160)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The whole external-log pipeline — single-line parse, bulk
    /// reader, cleaning — digests arbitrary bytes without panicking,
    /// and the bulk reader accounts for every line it saw.
    #[test]
    fn arbitrary_bytes_never_panic_the_log_pipeline(
        lines in prop::collection::vec(arbitrary_line(), 0..8),
    ) {
        for (i, line) in lines.iter().enumerate() {
            let _ = logfmt::LogRecord::parse(line, i + 1);
        }
        let text = lines.join("\n");
        let (records, bad) = logfmt::parse_log(&text);
        prop_assert!(records.len() + bad.len() <= text.lines().count() + 1);
        let parsed = records.len();
        let (cleaned, report) = clean(records, &CleaningConfig::typical());
        prop_assert_eq!(report.kept, cleaned.len());
        prop_assert_eq!(
            report.kept + report.non_existent + report.scripts + report.live,
            parsed
        );
    }

    /// Near-valid lines — the right shape with arbitrary field values —
    /// parse to Ok or Err but never panic, and whatever parses survives
    /// cleaning without a panic.
    #[test]
    fn near_valid_log_lines_never_panic(
        client in 0u64..1u64 << 40,
        stamp in prop::collection::vec(0u8..=255u8, 0..24),
        path in prop::collection::vec(0u8..=127u8, 0..32),
        status in 0u32..1200,
        size in 0u64..u64::MAX,
    ) {
        let stamp = String::from_utf8_lossy(&stamp).into_owned();
        let path = String::from_utf8_lossy(&path).into_owned();
        let line = format!(
            "client{client} - - [{stamp}] \"GET {path} HTTP/1.0\" {status} {size}"
        );
        let single = logfmt::LogRecord::parse(&line, 1);
        let (records, bad) = logfmt::parse_log(&line);
        // The bulk reader and the single-line parser must agree.
        prop_assert_eq!(single.is_ok(), records.len() == 1 && bad.is_empty());
        let _ = clean(records, &CleaningConfig::typical());
    }
}

/// Server knowledge for the connection-state-machine proptests, built
/// once — the estimation pipeline is deterministic, so sharing it
/// across cases is sound and keeps the proptest fast.
fn conn_knowledge() -> &'static ServerKnowledge {
    use std::sync::OnceLock;
    static KNOWLEDGE: OnceLock<ServerKnowledge> = OnceLock::new();
    KNOWLEDGE.get_or_init(|| {
        specweb::serve::session::KnowledgeSpec::demo(77)
            .build(1)
            .expect("demo knowledge builds")
    })
}

/// One request-stream line: valid GETs (with and without HAVE digests),
/// QUITs, and garbage.
fn request_line() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u64..200).prop_map(|d| format!("GET {d}\n")),
        (0u64..50, prop::collection::vec(0u64..50, 1..5)).prop_map(|(d, have)| {
            let ids: Vec<String> = have.iter().map(u64::to_string).collect();
            format!("GET {d} HAVE {}\n", ids.join(","))
        }),
        Just("QUIT\n".to_string()),
        arbitrary_line().prop_map(|mut s| {
            s.push('\n');
            s
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The incremental frame decoder is fragmentation-invariant over
    /// arbitrary bytes: feeding the whole input at once and feeding it
    /// split at arbitrary boundaries produce identical frames (and
    /// identical violations), and neither path panics.
    #[test]
    fn frame_decoder_is_fragmentation_invariant(
        bytes in prop::collection::vec(0u8..=255u8, 0..300),
        raw_cuts in prop::collection::vec(0usize..512, 0..8),
        cap in 1usize..64,
    ) {
        use specweb::serve::conn::FrameDecoder;

        let mut whole = Vec::new();
        let _ = FrameDecoder::new(cap).feed(&bytes, &mut whole);

        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
        cuts.sort_unstable();
        let mut fragmented = Vec::new();
        let mut decoder = FrameDecoder::new(cap);
        let mut start = 0;
        // The caller contract: stop feeding after a violation.
        let mut ok = true;
        for cut in cuts.into_iter().chain(std::iter::once(bytes.len())) {
            if ok && cut > start {
                ok = decoder.feed(&bytes[start..cut], &mut fragmented);
            }
            start = start.max(cut);
        }
        prop_assert_eq!(whole, fragmented);
    }

    /// The whole connection state machine is fragmentation-invariant:
    /// the same request stream split at arbitrary byte boundaries
    /// yields byte-identical responses, the same digest, and the same
    /// counters — the invariant that makes record/replay exact. And it
    /// never panics, whatever the stream contains.
    #[test]
    fn conn_core_output_is_fragmentation_invariant(
        lines in prop::collection::vec(request_line(), 0..6),
        raw_cuts in prop::collection::vec(0usize..512, 0..10),
    ) {
        use specweb::serve::conn::ConnCore;
        use specweb::serve::{ProtocolLimits, ServiceLevel};

        let input: Vec<u8> = lines.concat().into_bytes();
        let k = conn_knowledge();
        let limits = ProtocolLimits::default();

        let mut whole = ConnCore::new(0, limits);
        whole.on_bytes(&input, ServiceLevel::Full, k);
        whole.on_eof();

        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (input.len() + 1)).collect();
        cuts.sort_unstable();
        let mut frag = ConnCore::new(0, limits);
        let mut start = 0;
        for cut in cuts.into_iter().chain(std::iter::once(input.len())) {
            if cut > start {
                frag.on_bytes(&input[start..cut], ServiceLevel::Full, k);
            }
            start = start.max(cut);
        }
        frag.on_eof();

        prop_assert_eq!(whole.output(), frag.output());
        prop_assert_eq!(whole.digest_hex(), frag.digest_hex());
        prop_assert_eq!(whole.counters(), frag.counters());
    }
}

#[test]
fn zero_budget_allocation_is_all_zero() {
    let servers = [
        ServerModel {
            lambda: 1e-6,
            demand: 100.0,
        },
        ServerModel {
            lambda: 1e-6,
            demand: 200.0,
        },
    ];
    let a = optimize(&servers, Bytes::ZERO).unwrap();
    assert!(a.bytes.iter().all(|&b| b == Bytes::ZERO));
    assert_eq!(a.alpha, 0.0);
}
