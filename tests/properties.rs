//! Workspace-level property-based tests (proptest): invariants that
//! must hold for *any* configuration, not just the hand-picked ones in
//! the unit suites.

use proptest::prelude::*;
use specweb::prelude::*;

// ---------------------------------------------------------------------
// Allocation optimizer invariants
// ---------------------------------------------------------------------

fn server_models() -> impl Strategy<Value = Vec<ServerModel>> {
    prop::collection::vec(
        (1e-8f64..1e-4, 0.0f64..1e7).prop_map(|(lambda, demand)| ServerModel { lambda, demand }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocation_is_feasible_and_nonnegative(
        servers in server_models(),
        b0_kib in 1u64..100_000,
    ) {
        let b0 = Bytes::from_kib(b0_kib);
        let alloc = optimize(&servers, b0).unwrap();
        let total: u64 = alloc.bytes.iter().map(|b| b.get()).sum();
        prop_assert!(total <= b0.get(), "allocated {total} > budget {}", b0.get());
        // Nonnegativity is structural (Bytes is unsigned); check alpha.
        prop_assert!((0.0..=1.0).contains(&alloc.alpha));
        // Full budget is used whenever any server has positive demand
        // (H is strictly increasing, so never allocating is suboptimal).
        if servers.iter().any(|s| s.demand > 0.0) {
            prop_assert_eq!(total, b0.get());
        }
    }

    #[test]
    fn optimizer_never_beaten_by_baselines(
        servers in server_models(),
        b0_kib in 1u64..50_000,
    ) {
        let b0 = Bytes::from_kib(b0_kib);
        let opt = optimize(&servers, b0).unwrap();
        let uni = allocate_uniform(&servers, b0).unwrap();
        let pro = allocate_proportional(&servers, b0).unwrap();
        // Tolerance covers whole-byte rounding of the closed form.
        prop_assert!(opt.alpha >= uni.alpha - 1e-6,
            "uniform beat the optimum: {} > {}", uni.alpha, opt.alpha);
        prop_assert!(opt.alpha >= pro.alpha - 1e-6,
            "proportional beat the optimum: {} > {}", pro.alpha, opt.alpha);
    }

    #[test]
    fn alpha_is_monotone_in_budget(
        servers in server_models(),
        b0_kib in 1u64..10_000,
    ) {
        let small = optimize(&servers, Bytes::from_kib(b0_kib)).unwrap();
        let large = optimize(&servers, Bytes::from_kib(b0_kib * 2)).unwrap();
        prop_assert!(large.alpha >= small.alpha - 1e-9);
    }
}

// ---------------------------------------------------------------------
// Exponential popularity model invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hit_probability_is_monotone_cdf(
        lambda in 1e-9f64..1e-3,
        b1 in 0u64..1_000_000_000,
        b2 in 0u64..1_000_000_000,
    ) {
        let m = ExponentialPopularity::new(lambda).unwrap();
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let h_lo = m.hit_probability(Bytes::new(lo));
        let h_hi = m.hit_probability(Bytes::new(hi));
        prop_assert!((0.0..=1.0).contains(&h_lo));
        prop_assert!((0.0..=1.0).contains(&h_hi));
        prop_assert!(h_lo <= h_hi + 1e-15);
    }

    #[test]
    fn sizing_roundtrips(
        lambda in 1e-8f64..1e-4,
        alpha in 0.01f64..0.99,
    ) {
        let m = ExponentialPopularity::new(lambda).unwrap();
        let b = m.bytes_for_fraction(alpha).unwrap();
        let back = m.hit_probability(b);
        // Ceil-to-byte only ever overshoots, and by at most λ.
        prop_assert!(back >= alpha - 1e-9);
        prop_assert!(back <= alpha + lambda + 1e-9);
    }
}

// ---------------------------------------------------------------------
// Dependency matrix invariants
// ---------------------------------------------------------------------

/// Random (client, doc, gap) access streams.
fn access_stream() -> impl Strategy<Value = Vec<(u8, u8, u16)>> {
    prop::collection::vec((0u8..4, 0u8..12, 0u16..8_000), 2..200)
}

fn build_accesses(raw: &[(u8, u8, u16)]) -> Vec<Access> {
    use specweb::trace::clients::Locality;
    let mut t = 0u64;
    raw.iter()
        .map(|&(c, d, gap)| {
            t += u64::from(gap);
            Access {
                time: SimTime::from_millis(t),
                client: ClientId::new(u32::from(c)),
                doc: DocId::new(u32::from(d)),
                server: ServerId::new(0),
                locality: Locality::Remote,
                session: 0,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dep_matrix_probabilities_are_valid(raw in access_stream()) {
        let accesses = build_accesses(&raw);
        let m = DepMatrixBuilder::estimate(&accesses, Duration::from_secs(5), 1);
        for (i, j, p) in m.entries() {
            prop_assert!((0.0..=1.0).contains(&p), "p[{i},{j}] = {p}");
            prop_assert!(i != j, "self-dependency stored");
        }
    }

    #[test]
    fn closure_dominates_and_stays_valid(raw in access_stream()) {
        let accesses = build_accesses(&raw);
        let m = DepMatrixBuilder::estimate(&accesses, Duration::from_secs(5), 1);
        let c = m.closure(0.01, 64).unwrap();
        for (i, j, p) in m.entries() {
            if p >= 0.01 {
                prop_assert!(c.get(i, j) >= p - 1e-12,
                    "closure lost direct edge ({i},{j},{p})");
            }
        }
        for (_, _, p) in c.entries() {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn wider_windows_never_lose_pairs(raw in access_stream()) {
        let accesses = build_accesses(&raw);
        let narrow = DepMatrixBuilder::estimate(&accesses, Duration::from_secs(2), 1);
        let wide = DepMatrixBuilder::estimate(&accesses, Duration::from_secs(20), 1);
        for (i, j, _) in narrow.entries() {
            prop_assert!(wide.get(i, j) > 0.0,
                "pair ({i},{j}) vanished when the window grew");
        }
    }
}

// ---------------------------------------------------------------------
// Simulator invariants over random configurations
// ---------------------------------------------------------------------

proptest! {
    // Each case runs two full replays; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulator_invariants_hold_for_any_threshold(
        tp in 0.05f64..1.0,
        seed in 0u64..4,
        max_kib in prop::option::of(1u64..64),
    ) {
        let topo = Topology::balanced(2, 3, 4);
        let mut tc = TraceConfig::small(3_000 + seed);
        tc.duration_days = 8;
        tc.sessions_per_day = 30;
        let trace = TraceGenerator::new(tc).unwrap().generate(&topo).unwrap();

        let mut cfg = SpecConfig::baseline(tp);
        cfg.estimator.history_days = 6;
        // Measure the whole trace: with a warmup window, unmeasured
        // pushes prepopulate caches and the measured bandwidth ratio
        // can legitimately dip below 1. At warmup 0 every pushed byte
        // is counted, so the ≥ 1 bound is exact.
        cfg.warmup_days = 0;
        if let Some(k) = max_kib {
            cfg.max_size = Bytes::from_kib(k);
        }
        let out = SpecSim::new(&trace, &topo).run(&cfg).unwrap();

        // Speculation can only add traffic…
        prop_assert!(out.ratios.bandwidth >= 1.0 - 1e-12);
        // …and only remove load / time / misses.
        prop_assert!(out.ratios.server_load <= 1.0 + 1e-12);
        prop_assert!(out.ratios.service_time <= 1.0 + 1e-12);
        prop_assert!(out.ratios.miss_rate <= 1.0 + 1e-12);
        // Demand is identical across replays.
        prop_assert_eq!(out.speculative.accesses, out.baseline.accesses);
        prop_assert_eq!(out.speculative.accessed_bytes, out.baseline.accessed_bytes);
        // Conservation.
        prop_assert!(out.speculative.bytes_sent >= out.speculative.miss_bytes);
        prop_assert!(out.wasted_pushes <= out.pushes);
    }
}
