//! Cross-crate integration tests: full pipelines from trace generation
//! through both protocols, exercising the public API exactly as the
//! examples and the benchmark harness do.

use specweb::prelude::*;

fn topo() -> Topology {
    Topology::balanced(2, 3, 5)
}

fn small_trace(seed: u64, days: u64) -> Trace {
    let mut tc = TraceConfig::small(seed);
    tc.duration_days = days;
    tc.sessions_per_day = 80;
    TraceGenerator::new(tc)
        .expect("valid config")
        .generate(&topo())
        .expect("generation succeeds")
}

#[test]
fn full_speculation_pipeline() {
    let topo = topo();
    let trace = small_trace(1000, 14);
    let mut cfg = SpecConfig::baseline(0.3);
    cfg.estimator.history_days = 10;
    cfg.warmup_days = 4;
    let out = SpecSim::new(&trace, &topo).run(&cfg).unwrap();

    // The headline shape: traffic up a little, everything else down.
    assert!(out.ratios.bandwidth >= 1.0);
    assert!(out.ratios.server_load < 1.0);
    assert!(out.ratios.service_time < 1.0);
    assert!(out.ratios.miss_rate < 1.0);
    assert!(out.pushes > 0);
    // Weighted cost must drop: ServCost dominates at 10,000 : 1.
    assert!(
        out.cost_speculative < out.cost_baseline,
        "speculation should pay off under the paper's cost model: {} vs {}",
        out.cost_speculative,
        out.cost_baseline
    );
}

#[test]
fn full_dissemination_pipeline() {
    let topo = topo();
    let trace = small_trace(1001, 10);
    let sim = DisseminationSim::new(&trace, &topo).unwrap();
    let out = sim.run(&DisseminationConfig::default(), &[]).unwrap();
    assert!(out.reduction > 0.0);
    assert!(out.intercepted_fraction > 0.0);
    // The default config replays remote accesses only (the paper's R_i
    // is remote demand).
    let remote = trace
        .accesses
        .iter()
        .filter(|a| a.locality == specweb::trace::clients::Locality::Remote)
        .count() as u64;
    assert_eq!(out.proxy_hits + out.origin_hits, remote);
}

#[test]
fn both_protocols_compose_on_one_trace() {
    // The protocols are orthogonal: dissemination shields the server
    // from remote requests; speculation shortens sessions. Running both
    // analyses over one trace must be consistent.
    let topo = topo();
    let trace = small_trace(1002, 12);

    let dissem = DisseminationSim::new(&trace, &topo).unwrap();
    let d = dissem.run(&DisseminationConfig::default(), &[]).unwrap();

    let mut cfg = SpecConfig::baseline(0.4);
    cfg.estimator.history_days = 8;
    cfg.warmup_days = 4;
    let s = SpecSim::new(&trace, &topo).run(&cfg).unwrap();

    assert!(d.reduction > 0.0);
    assert!(s.ratios.server_load < 1.0);
}

#[test]
fn trace_to_log_to_analysis_roundtrip() {
    use specweb::trace::cleaning::{clean, CleaningConfig};
    use specweb::trace::logfmt;

    let trace = small_trace(1003, 8);
    let text = logfmt::write_log(&trace);
    let (records, bad) = logfmt::parse_log(&text);
    assert!(bad.is_empty());
    let (cleaned, report) = clean(records, &CleaningConfig::typical());
    assert_eq!(report.kept, trace.len());
    assert_eq!(cleaned.len(), trace.len());

    // The parsed log carries enough to rebuild per-doc counts.
    let mut counts = vec![0u64; trace.catalog.len()];
    for r in &cleaned {
        let doc = logfmt::LogRecord::doc_from_path(&r.path).unwrap();
        counts[doc.index()] += 1;
    }
    assert_eq!(counts, trace.request_counts());
}

#[test]
fn profile_lambda_feeds_allocator() {
    // trace → profile → ServerModel → optimizer, across 3 servers.
    let topo = topo();
    let mut tc = TraceConfig::small(1004);
    tc.n_servers = 3;
    tc.server_theta = 0.9;
    tc.duration_days = 10;
    tc.sessions_per_day = 100;
    let trace = TraceGenerator::new(tc).unwrap().generate(&topo).unwrap();

    let models: Vec<ServerModel> = (0..3)
        .map(|s| {
            let p = ServerProfile::from_trace(&trace, ServerId::new(s), 10).unwrap();
            ServerModel {
                lambda: p.lambda,
                demand: p.remote_bytes_per_day,
            }
        })
        .collect();
    let b0 = Bytes::from_kib(128);
    let opt = optimize(&models, b0).unwrap();
    let uni = allocate_uniform(&models, b0).unwrap();
    assert!(opt.alpha >= uni.alpha - 1e-9);
    let total: u64 = opt.bytes.iter().map(|b| b.get()).sum();
    assert!(total <= b0.get());
}

#[test]
fn estimator_matrices_drive_policy_end_to_end() {
    use specweb::spec::deps::DepMatrixBuilder;
    use specweb::spec::policy;

    let trace = small_trace(1005, 10);
    let direct = DepMatrixBuilder::estimate(&trace.accesses, Duration::from_secs(5), 2);
    assert!(direct.n_entries() > 0);
    let closure = direct.closure(0.01, 64).unwrap();

    // Find a doc with candidates and check decide() honours MaxSize.
    let (doc, _, _) = closure.entries().next().expect("closure has entries");
    let unlimited = policy::decide(
        &Policy::Threshold { tp: 0.05 },
        &closure,
        &direct,
        doc,
        &trace.catalog,
        Bytes::INFINITE,
        |_| false,
    );
    let capped = policy::decide(
        &Policy::Threshold { tp: 0.05 },
        &closure,
        &direct,
        doc,
        &trace.catalog,
        Bytes::new(1),
        |_| false,
    );
    assert!(capped.push.len() <= unlimited.push.len());
    for &(j, _) in &capped.push {
        assert!(trace.catalog.size(j) <= Bytes::new(1));
    }
}

#[test]
fn deterministic_end_to_end() {
    let topo = topo();
    let t1 = small_trace(1006, 8);
    let t2 = small_trace(1006, 8);
    assert_eq!(t1.accesses, t2.accesses);

    let mut cfg = SpecConfig::baseline(0.3);
    cfg.estimator.history_days = 6;
    cfg.warmup_days = 3;
    let a = SpecSim::new(&t1, &topo).run(&cfg).unwrap();
    let b = SpecSim::new(&t2, &topo).run(&cfg).unwrap();
    assert_eq!(a.speculative, b.speculative);
    assert_eq!(a.baseline, b.baseline);

    let d1 = DisseminationSim::new(&t1, &topo)
        .unwrap()
        .run(&DisseminationConfig::default(), &[])
        .unwrap();
    let d2 = DisseminationSim::new(&t2, &topo)
        .unwrap()
        .run(&DisseminationConfig::default(), &[])
        .unwrap();
    assert_eq!(d1.baseline, d2.baseline);
    assert!((d1.reduction - d2.reduction).abs() < 1e-15);
}

#[test]
fn update_events_flow_into_both_protocols() {
    use specweb::trace::updates::UpdateEvent;
    let topo = topo();
    let trace = small_trace(1007, 10);

    // Deterministically update the most popular disseminated document.
    let sim = DisseminationSim::new(&trace, &topo).unwrap();
    let cfg = DisseminationConfig {
        count_update_traffic: true,
        ..DisseminationConfig::default()
    };
    let profile = &sim.profiles()[0];
    let budget = Bytes::new((profile.remotely_accessed_bytes().as_f64() * cfg.fraction) as u64);
    let hot = profile.top_docs_for_traffic(budget)[0].0;
    let updates = vec![UpdateEvent { day: 1, doc: hot }];
    let out = sim.run(&cfg, &updates).unwrap();
    assert!(out.push_traffic.get() > 0);

    // Classification flags frequently-updated docs from a real history.
    let history = UpdateProcess::default().generate(&SeedTree::new(1007), &trace.catalog, 120);
    let classified = Classifier::default().classify(&trace, &history, 120);
    assert_eq!(classified.len(), trace.catalog.len());
}
