//! The `specweb` command-line tool: generate workloads, analyze logs,
//! and run both of the paper's protocols from a shell.
//!
//! ```text
//! specweb generate  --preset bu --seed 42 --out access.log
//! specweb analyze   --log access.log
//! specweb speculate --log access.log --tp 0.3
//! specweb speculate --preset bu --seed 42 --tp 0.3 --max-size 29K
//! specweb disseminate --preset bu --seed 42 --fraction 0.10 --proxies 9
//! ```
//!
//! Synthetic presets (`bu`, `media`, `cluster`) generate in-memory; the
//! `--log` forms parse + clean a CLF-style log and import it.

use std::process::ExitCode;

use specweb::dissem::simulate::{DisseminationConfig, DisseminationSim};
use specweb::prelude::*;
use specweb::trace::cleaning::{clean, CleaningConfig};
use specweb::trace::import::{trace_from_records, ImportConfig};
use specweb::trace::logfmt;

fn main() -> ExitCode {
    // Progress/diagnostic lines (level Info) print by default for the
    // interactive binary; SPECWEB_LOG still overrides either way.
    specweb::core::obs::set_default_level(specweb::core::obs::Level::Info);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let opts = Opts::parse(&args[1..]);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "analyze" => cmd_analyze(&opts),
        "speculate" => cmd_speculate(&opts),
        "disseminate" => cmd_disseminate(&opts),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(CoreError::invalid_config(
            "command",
            format!("unknown command `{other}`"),
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            specweb::core::log!(Error, "specweb", "error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: specweb <command> [options]\n\
         \n\
         commands:\n\
         \x20 generate     write a synthetic workload as a CLF-style log\n\
         \x20 analyze      clean a log, classify documents, fit the popularity model\n\
         \x20 speculate    run the speculative-service simulator (§3)\n\
         \x20 disseminate  run the dissemination simulator (§2)\n\
         \n\
         options:\n\
         \x20 --preset bu|media|cluster   synthetic workload preset (default bu)\n\
         \x20 --seed N                    master seed (default 1996)\n\
         \x20 --log FILE                  drive from a CLF-style log instead\n\
         \x20 --out FILE                  output file (generate)\n\
         \x20 --days N                    trace length in days (generate)\n\
         \x20 --tp X                      speculation threshold T_p (default 0.3)\n\
         \x20 --max-size BYTES[K|M]       MaxSize cap (default ∞)\n\
         \x20 --session-timeout SECS      client cache session timeout (default ∞)\n\
         \x20 --cooperative               enable cooperative clients\n\
         \x20 --fraction X                fraction of bytes to disseminate (default 0.10)\n\
         \x20 --proxies N                 number of proxies (default 4)\n"
    );
}

/// Minimal flag parser (no clap in the offline dependency set).
struct Opts {
    kv: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut kv = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        kv.push((name.to_string(), it.next().expect("peeked").clone()));
                    }
                    _ => flags.push(name.to_string()),
                }
            }
        }
        Opts { kv, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.kv
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn seed(&self) -> u64 {
        self.get("seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1996)
    }

    fn f64_or(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    fn bytes(&self, name: &str) -> Option<Bytes> {
        let raw = self.get(name)?;
        let (num, mult) = match raw.chars().last() {
            Some('K') | Some('k') => (&raw[..raw.len() - 1], 1024u64),
            Some('M') | Some('m') => (&raw[..raw.len() - 1], 1024 * 1024),
            _ => (raw, 1),
        };
        num.parse::<u64>().ok().map(|n| Bytes::new(n * mult))
    }
}

fn topology() -> Topology {
    Topology::balanced(3, 3, 6)
}

fn build_trace(opts: &Opts) -> Result<Trace, CoreError> {
    if let Some(path) = opts.get("log") {
        let text = std::fs::read_to_string(path)?;
        let (records, bad) = logfmt::parse_log(&text);
        if !bad.is_empty() {
            specweb::core::log!(Warn, "specweb", "skipped {} malformed line(s)", bad.len());
        }
        let (records, report) = clean(records, &CleaningConfig::typical());
        specweb::core::log!(
            Info,
            "specweb",
            "cleaned log: kept {} (dropped {} non-existent, {} scripts, {} live)",
            report.kept,
            report.non_existent,
            report.scripts,
            report.live
        );
        // Without an address list every client is remote; pass a
        // campus predicate via future flags if needed.
        trace_from_records(&records, &topology(), &ImportConfig::default(), |_| false)
    } else {
        let preset = opts.get("preset").unwrap_or("bu");
        let mut cfg = match preset {
            "bu" => TraceConfig::bu_www(opts.seed()),
            "media" => TraceConfig::media_site(opts.seed()),
            "cluster" => TraceConfig::cluster(opts.seed(), 8),
            other => {
                return Err(CoreError::invalid_config(
                    "preset",
                    format!("unknown preset `{other}` (bu|media|cluster)"),
                ))
            }
        };
        if let Some(days) = opts.get("days").and_then(|s| s.parse().ok()) {
            cfg.duration_days = days;
        }
        TraceGenerator::new(cfg)?.generate(&topology())
    }
}

fn cmd_generate(opts: &Opts) -> Result<(), CoreError> {
    let trace = build_trace(opts)?;
    let text = logfmt::write_log(&trace);
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &text)?;
            specweb::core::log!(
                Info,
                "specweb",
                "wrote {} accesses ({} clients, {} sessions) to {path}",
                trace.len(),
                trace.active_clients(),
                trace.n_sessions
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_analyze(opts: &Opts) -> Result<(), CoreError> {
    let trace = build_trace(opts)?;
    let days = (trace.duration.as_millis() / 86_400_000).max(1);
    println!(
        "trace: {} accesses, {} documents, {} clients, {} sessions, {days} day(s)",
        trace.len(),
        trace.catalog.len(),
        trace.active_clients(),
        trace.n_sessions
    );

    let profile = ServerProfile::from_trace(&trace, ServerId::new(0), days)?;
    println!("\npopularity (server S0):");
    println!(
        "  remote demand R : {:.1} KB/day",
        profile.remote_bytes_per_day / 1e3
    );
    println!("  fitted λ        : {:.3e} per byte", profile.lambda);
    for frac in [0.005, 0.04, 0.10] {
        let b = Bytes::new((profile.remotely_accessed_bytes().as_f64() * frac) as u64);
        println!(
            "  top {:4.1}% of bytes covers {:4.1}% of remote requests",
            frac * 100.0,
            profile.hit_curve.hit_fraction(b) * 100.0
        );
    }

    let counts = trace.request_counts();
    if let Ok(theta) = specweb::core::dist::fit_zipf_theta(&counts) {
        println!("  Zipf exponent θ : {theta:.2} (rank/frequency fit)");
    }

    let classified = Classifier::default().classify(&trace, &[], days);
    let (r, l, g, u) = Classifier::class_summary(&classified);
    println!("\nclassification: {r} remote / {l} local / {g} global / {u} unaccessed");
    Ok(())
}

fn cmd_speculate(opts: &Opts) -> Result<(), CoreError> {
    let trace = build_trace(opts)?;
    let topo = topology();
    let total_days = (trace.duration.as_millis() / 86_400_000).max(1);

    let mut cfg = SpecConfig::baseline(opts.f64_or("tp", 0.3));
    cfg.estimator.history_days = (total_days.saturating_mul(2) / 3).max(1);
    cfg.warmup_days = (total_days / 3).min(30);
    if let Some(ms) = opts.bytes("max-size") {
        cfg.max_size = ms;
    }
    if let Some(secs) = opts.get("session-timeout").and_then(|s| s.parse().ok()) {
        cfg.cache = CacheModel::Session {
            timeout: Duration::from_secs(secs),
        };
    }
    cfg.cooperative = opts.flag("cooperative");

    let out = SpecSim::new(&trace, &topo).run(&cfg)?;
    println!("speculative service (T_p = {:.2}):", opts.f64_or("tp", 0.3));
    println!("  traffic     : {:+.1}%", out.ratios.traffic_increase_pct());
    println!(
        "  server load : -{:.1}%",
        out.ratios.server_load_reduction_pct()
    );
    println!(
        "  service time: -{:.1}%",
        out.ratios.service_time_reduction_pct()
    );
    println!(
        "  miss rate   : -{:.1}%",
        out.ratios.miss_rate_reduction_pct()
    );
    println!(
        "  pushes {} (wasted {}), prefetches {}",
        out.pushes, out.wasted_pushes, out.prefetches
    );
    println!(
        "  weighted cost (CommCost/ServCost): {:.3e} → {:.3e}",
        out.cost_baseline, out.cost_speculative
    );
    Ok(())
}

fn cmd_disseminate(opts: &Opts) -> Result<(), CoreError> {
    let trace = build_trace(opts)?;
    let topo = topology();
    let sim = DisseminationSim::new(&trace, &topo)?;
    let cfg = DisseminationConfig {
        fraction: opts.f64_or("fraction", 0.10),
        n_proxies: opts.f64_or("proxies", 4.0) as usize,
        ..DisseminationConfig::default()
    };
    let out = sim.run(&cfg, &[])?;
    println!(
        "dissemination (top {:.0}% of bytes, {} proxies):",
        cfg.fraction * 100.0,
        cfg.n_proxies
    );
    println!(
        "  requests intercepted : {:.1}%",
        out.intercepted_fraction * 100.0
    );
    println!("  traffic (bytes×hops) : -{:.1}%", out.reduction * 100.0);
    println!("  proxy storage        : {}", out.total_proxy_storage);
    Ok(())
}
