//! # specweb
//!
//! A production-quality Rust reproduction of:
//!
//! > Azer Bestavros. *Speculative Data Dissemination and Service to
//! > Reduce Server Load, Network Traffic and Service Time in Distributed
//! > Information Systems.* ICDE 1996.
//!
//! The paper proposes two **server-initiated** protocols for
//! distributed information systems (the 1995 WWW):
//!
//! 1. **Demand-based data dissemination** (§2) — popular documents
//!    propagate from home servers to *service proxies* closer to their
//!    consumers, with proxy storage rationed optimally across servers
//!    (exploits temporal + geographical locality). See [`dissem`].
//! 2. **Speculative service** (§3) — a server answering a request also
//!    pushes documents the client is likely to need within seconds
//!    (exploits spatial locality). See [`spec`].
//!
//! Everything is built on four substrates:
//!
//! * [`core`] — ids, simulated time, byte/hop units, statistics,
//!   distributions (including the paper's exponential popularity
//!   model), deterministic RNG, and the four evaluation metrics;
//! * [`trace`] — a synthetic WWW workload generator calibrated to the
//!   trace statistics the paper reports, plus a log format and the
//!   paper's log-cleaning pipeline;
//! * [`netsim`] — the clientele tree, clusters, routing, cost/latency
//!   models, proxy stores, and deterministic fault-injection plans;
//! * [`dissem`] / [`spec`] — the two protocols and their trace-driven
//!   simulators (each with a degraded-mode `run_with_faults` replay);
//! * [`serve`] — a hardened multi-threaded TCP prototype of the §3/§4
//!   speculative-service protocol, with bounded parsing, deadlines,
//!   graceful overload degradation, and a retrying client.
//!
//! ## Quickstart
//!
//! ```
//! use specweb::prelude::*;
//!
//! // A two-level Internet: 6 edge networks × 8 client leaves.
//! let topo = Topology::two_level(6, 8);
//!
//! // A small cs-www.bu.edu-flavored workload.
//! let trace = TraceGenerator::new(TraceConfig::small(42))
//!     .expect("valid config")
//!     .generate(&topo)
//!     .expect("generation succeeds");
//!
//! // Speculative service at T_p = 0.4 under baseline parameters.
//! let mut cfg = SpecConfig::baseline(0.4);
//! cfg.estimator.history_days = 8;
//! cfg.warmup_days = 3;
//! let outcome = SpecSim::new(&trace, &topo).run(&cfg).expect("simulation runs");
//! assert!(outcome.ratios.server_load <= 1.0);
//!
//! // Dissemination of the top 10% of bytes to 4 proxies.
//! let sim = DisseminationSim::new(&trace, &topo).expect("profiles mined");
//! let out = sim
//!     .run(&DisseminationConfig::default(), &[])
//!     .expect("simulation runs");
//! assert!(out.reduction > 0.0);
//! ```

pub use specweb_core as core;
pub use specweb_dissem as dissem;
pub use specweb_netsim as netsim;
pub use specweb_serve as serve;
pub use specweb_spec as spec;
pub use specweb_trace as trace;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use specweb_core::dist::{ExponentialPopularity, HitCurve, Zipf};
    pub use specweb_core::metrics::{CostWeights, Ratios, RunTotals};
    pub use specweb_core::rng::SeedTree;
    pub use specweb_core::{
        Bytes, ClientId, CoreError, DocId, Duration, NodeId, ServerId, SimTime,
    };
    pub use specweb_dissem::alloc::{
        allocate_proportional, allocate_uniform, optimize, optimize_empirical, ServerModel,
    };
    pub use specweb_dissem::analysis::{BlockPopularity, ServerProfile};
    pub use specweb_dissem::classify::Classifier;
    pub use specweb_dissem::simulate::{
        DisseminationConfig, DisseminationOutcome, DisseminationSim,
    };
    pub use specweb_netsim::cost::{CostModel, LatencyModel};
    pub use specweb_netsim::fault::{FaultConfig, FaultPlan, RetrySchedule};
    pub use specweb_netsim::topology::Topology;
    pub use specweb_serve::client::{ClientConfig, SpecClient};
    pub use specweb_serve::overload::{OverloadPolicy, ServiceLevel};
    pub use specweb_serve::server::{ServerConfig, ServerKnowledge, SpecServer};
    pub use specweb_spec::cache::CacheModel;
    pub use specweb_spec::deps::{DepMatrix, DepMatrixBuilder};
    pub use specweb_spec::estimator::EstimatorConfig;
    pub use specweb_spec::policy::Policy;
    pub use specweb_spec::prefetch::HintPolicy;
    pub use specweb_spec::simulate::{SpecConfig, SpecOutcome, SpecSim};
    pub use specweb_trace::generator::{Access, Trace, TraceConfig, TraceGenerator};
    pub use specweb_trace::updates::UpdateProcess;
}
