//! Fixture-driven rule tests: each file under `tests/fixtures/` is a
//! minimal Rust source exercising one rule (or one suppression
//! behavior). Fixtures are plain text to the lint — they are never
//! compiled — and the workspace walker skips any `fixtures/` directory,
//! so the deliberate violations below cannot fail the tree-wide gate.

use specweb_lint::{lint_source, FileKind, Report};

/// Reads a fixture and lints it under the given path/kind.
fn lint_fixture(name: &str, rel: &str, kind: FileKind) -> Report {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {path}: {e}"));
    lint_source(rel, kind, &src)
}

/// The sorted rule ids of a report's violations.
fn rules_of(report: &Report) -> Vec<String> {
    let mut v: Vec<String> = report.violations.iter().map(|d| d.rule.clone()).collect();
    v.sort();
    v
}

/// Lints `name` as ordinary library code (`crates/demo/src/lib.rs`).
fn as_lib(name: &str) -> Report {
    lint_fixture(name, "crates/demo/src/lib.rs", FileKind::Lib)
}

#[test]
fn d1_flags_partial_cmp_comparator() {
    assert_eq!(rules_of(&as_lib("d1_bad.rs")), ["D1"]);
}

#[test]
fn d1_accepts_total_cmp_and_partial_ord_impls() {
    assert_eq!(rules_of(&as_lib("d1_good.rs")), [] as [&str; 0]);
}

#[test]
fn d2_flags_hash_collections() {
    // The `use` line and both body mentions: one hit per line.
    assert_eq!(rules_of(&as_lib("d2_bad.rs")), ["D2", "D2", "D2"]);
}

#[test]
fn d2_ignores_btreemap_and_literals() {
    // `HashMap` inside comments and string literals must not count.
    assert_eq!(rules_of(&as_lib("d2_good.rs")), [] as [&str; 0]);
}

#[test]
fn d3_flags_wall_clock_outside_obs() {
    // Only the `Instant::now()` call trips — naming the type is fine.
    assert_eq!(rules_of(&as_lib("d3_bad.rs")), ["D3"]);
}

#[test]
fn d3_exempts_the_obs_wall_modules() {
    let r = lint_fixture("d3_bad.rs", "crates/core/src/obs/wall.rs", FileKind::Lib);
    assert_eq!(rules_of(&r), [] as [&str; 0]);
}

#[test]
fn d4_flags_unseeded_rng_in_lib() {
    assert_eq!(rules_of(&as_lib("d4_bad.rs")), ["D4"]);
}

#[test]
fn d4_relaxed_for_bin_targets() {
    let r = lint_fixture("d4_bad.rs", "crates/demo/src/bin/cli.rs", FileKind::Bin);
    assert_eq!(rules_of(&r), [] as [&str; 0]);
}

#[test]
fn d5_flags_adhoc_threads() {
    assert_eq!(rules_of(&as_lib("d5_bad.rs")), ["D5"]);
}

#[test]
fn d5_exempts_the_serve_crate() {
    let r = lint_fixture("d5_bad.rs", "crates/serve/src/server.rs", FileKind::Lib);
    assert_eq!(rules_of(&r), [] as [&str; 0]);
}

#[test]
fn s1_flags_unsafe_outside_allowlist() {
    assert_eq!(rules_of(&as_lib("s1_bad.rs")), ["S1"]);
}

#[test]
fn s2_flags_unwrap_and_expect_in_lib() {
    assert_eq!(rules_of(&as_lib("s2_bad.rs")), ["S2", "S2"]);
}

#[test]
fn s2_relaxed_for_bin_targets() {
    let r = lint_fixture("s2_bad.rs", "crates/demo/src/bin/cli.rs", FileKind::Bin);
    assert_eq!(rules_of(&r), [] as [&str; 0]);
}

#[test]
fn well_formed_allows_suppress_and_are_counted() {
    let r = as_lib("allow_good.rs");
    assert_eq!(rules_of(&r), [] as [&str; 0], "{:#?}", r.violations);
    assert_eq!(r.unused_allows.len(), 0, "{:#?}", r.unused_allows);
    let suppressed: Vec<&str> = r.allowed.iter().map(|(rule, _, _)| rule.as_str()).collect();
    assert_eq!(suppressed, ["D2", "D2"]);
}

#[test]
fn malformed_allows_are_violations_and_do_not_suppress() {
    let r = as_lib("allow_bad.rs");
    // Empty reason + unknown rule each produce an `allow` diagnostic,
    // and the underlying D2 hits survive because neither allow is valid.
    assert_eq!(rules_of(&r), ["D2", "D2", "allow", "allow"]);
}

#[test]
fn stale_allows_are_reported_unused() {
    let r = as_lib("allow_unused.rs");
    assert_eq!(rules_of(&r), [] as [&str; 0]);
    assert_eq!(r.unused_allows.len(), 1);
    assert_eq!(r.unused_allows[0].rule, "allow");
}

#[test]
fn cfg_test_regions_are_exempt() {
    assert_eq!(rules_of(&as_lib("cfg_test.rs")), [] as [&str; 0]);
}

#[test]
fn bytestring_bodies_are_opaque_to_every_rule() {
    // b"..." / br#"..."# bodies mention HashMap, unwrap, thread::spawn
    // and unbalanced braces — all of it must be masked by the lexer.
    assert_eq!(rules_of(&as_lib("lex_bytestr.rs")), [] as [&str; 0]);
}

#[test]
fn char_literals_with_quotes_and_braces_do_not_derail_the_lexer() {
    // '"' must not open a string (which would swallow the rest of the
    // file, including a real string containing "HashMap").
    assert_eq!(rules_of(&as_lib("lex_charlit.rs")), [] as [&str; 0]);
}

#[test]
fn lifetime_ticks_are_not_char_literals() {
    // If `'a` opened a char literal the lexer would blank real code;
    // the trailing genuine `use std::collections::HashMap;` proves the
    // lexer is still reading code after the lifetimes.
    assert_eq!(rules_of(&as_lib("lex_lifetime.rs")), ["D2"]);
}

#[test]
fn fixtures_all_have_a_test() {
    // Every fixture file must be exercised above or in tests/graph.rs
    // or tests/width.rs; a fixture nobody reads is dead weight. Keep
    // this list in sync when adding one.
    let used = [
        "allow_bad.rs",
        "allow_good.rs",
        "allow_unused.rs",
        "cfg_test.rs",
        "d1_bad.rs",
        "d1_good.rs",
        "d2_bad.rs",
        "d2_good.rs",
        "d3_bad.rs",
        "d4_bad.rs",
        "d5_bad.rs",
        "graph_leak.rs",
        "graph_lock_cycle.rs",
        "graph_lookup_only.rs",
        "graph_panic.rs",
        "lex_bytestr.rs",
        "lex_charlit.rs",
        "lex_lifetime.rs",
        "s1_bad.rs",
        "s2_bad.rs",
        "width_bounded_cast.rs",
        "width_helper_chain.rs",
        "width_tainted_capacity.rs",
        "width_tainted_mul.rs",
        "width_unbounded_cast.rs",
    ];
    let dir = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    assert_eq!(on_disk, used);
}
