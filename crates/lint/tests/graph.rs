//! Graph-engine tests: fixture-driven G-rule checks and the golden
//! determinism test for the serialized call graph.

use specweb_lint::{
    analyze_sources, analyze_workspace, graph, lint_source, load_crate_deps, purity, taint,
    workspace_extracts, FileKind,
};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {path}: {e}"))
}

fn workspace_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// The acceptance case for "rule tightened": under the line engine this
/// fixture needs two D2 allows; the reachability engine accepts it
/// without any, even when the lookup IS called from a root.
#[test]
fn lookup_only_hashmap_needs_no_allow_under_reachability() {
    let src = fixture("graph_lookup_only.rs");
    // Line engine: the `use` and the signature each trip D2.
    let line = lint_source("crates/dissem/src/profile.rs", FileKind::Lib, &src);
    let d2: Vec<_> = line.violations.iter().filter(|d| d.rule == "D2").collect();
    assert_eq!(d2.len(), 2, "{:#?}", line.violations);

    // Graph engine, with the fn reachable from a deterministic root.
    let files = vec![
        (
            "crates/dissem/src/profile.rs".to_string(),
            FileKind::Lib,
            src,
        ),
        (
            "crates/dissem/src/simulate.rs".to_string(),
            FileKind::Lib,
            "pub fn run(t: &std::collections::HashMap<u32, f64>) -> f64 {\n    \
             crate::profile::lookup(t, 7)\n}\n"
                .to_string(),
        ),
    ];
    let a = analyze_sources(&files);
    assert!(
        a.report.violations.is_empty(),
        "lookup-only map must pass without allows: {:#?}",
        a.report.violations
    );
    // Sanity: the root really is wired to the lookup.
    assert!(a.roots.contains(&"dissem::simulate::run".to_string()));
    assert!(a.graph.nodes["dissem::simulate::run"]
        .calls
        .contains("dissem::profile::lookup"));
}

/// The acceptance case for "leak the old engine missed": the fixture's
/// only HashMap line hides behind a wrong lint:allow, so the line
/// engine reports nothing — the graph engine catches the iteration with
/// a root→site evidence chain.
#[test]
fn cross_function_hash_leak_is_caught_with_evidence_chain() {
    let src = fixture("graph_leak.rs");
    let line = lint_source("crates/dissem/src/profile.rs", FileKind::Lib, &src);
    assert!(
        line.violations.is_empty(),
        "line engine misses the leak entirely: {:#?}",
        line.violations
    );

    let files = vec![
        (
            "crates/dissem/src/profile.rs".to_string(),
            FileKind::Lib,
            src,
        ),
        (
            "crates/dissem/src/simulate.rs".to_string(),
            FileKind::Lib,
            "pub fn run(p: &Profile) -> Vec<u32> {\n    p.predict()\n}\n".to_string(),
        ),
    ];
    let a = analyze_sources(&files);
    let g1: Vec<_> = a
        .report
        .violations
        .iter()
        .filter(|d| d.rule == "G1")
        .collect();
    assert_eq!(g1.len(), 1, "{:#?}", a.report.violations);
    let msg = &g1[0].message;
    assert!(msg.contains("dissem::simulate::run"), "{msg}");
    assert!(msg.contains("dissem::profile::Profile::predict"), "{msg}");
    assert!(msg.contains(" -> "), "chain rendering: {msg}");
    assert!(msg.contains("crates/dissem/src/profile.rs:"), "{msg}");
    // The wrong D2 allow is now dead weight and reported as unused.
    assert_eq!(
        a.report.unused_allows.len(),
        1,
        "{:#?}",
        a.report.unused_allows
    );
}

#[test]
fn lock_order_cycle_fixture_is_g2() {
    let files = vec![(
        "crates/core/src/pair.rs".to_string(),
        FileKind::Lib,
        fixture("graph_lock_cycle.rs"),
    )];
    let a = analyze_sources(&files);
    let g2: Vec<_> = a
        .report
        .violations
        .iter()
        .filter(|d| d.rule == "G2")
        .collect();
    assert!(!g2.is_empty(), "{:#?}", a.report.violations);
    assert!(g2[0].message.contains("both orders"), "{}", g2[0].message);
}

#[test]
fn panic_in_hot_loop_is_g3_cold_panic_is_not() {
    let src = fixture("graph_panic.rs");
    // Line engine: blanket S2 on both unwrap and expect.
    let line = lint_source("crates/spec/src/util.rs", FileKind::Lib, &src);
    let s2 = line.violations.iter().filter(|d| d.rule == "S2").count();
    assert_eq!(s2, 2, "{:#?}", line.violations);

    let files = vec![
        ("crates/spec/src/util.rs".to_string(), FileKind::Lib, src),
        (
            "crates/spec/src/simulate.rs".to_string(),
            FileKind::Lib,
            "pub fn run(x: Option<u64>) -> u64 {\n    crate::util::hot_step(x)\n}\n".to_string(),
        ),
    ];
    let a = analyze_sources(&files);
    let g3: Vec<_> = a
        .report
        .violations
        .iter()
        .filter(|d| d.rule == "G3")
        .collect();
    assert_eq!(g3.len(), 1, "{:#?}", a.report.violations);
    assert!(g3[0].message.contains("hot_step"), "{}", g3[0].message);
    assert!(
        !g3.iter().any(|d| d.message.contains("cold_report")),
        "cold panic must not be G3: {:#?}",
        g3
    );
}

/// Golden determinism test (DESIGN §6a applied to the lint itself): the
/// serialized call graph of the real workspace must be byte-identical
/// whether the per-file pass ran serially or on four workers.
#[test]
fn callgraph_json_is_byte_identical_across_jobs() {
    let root = workspace_root();
    let a1 = analyze_workspace(&root, 1).expect("serial analysis");
    let a4 = analyze_workspace(&root, 4).expect("parallel analysis");
    let json1 = a1.graph.to_json(&a1.roots, &a1.hot_roots, &a1.stats);
    let json4 = a4.graph.to_json(&a4.roots, &a4.hot_roots, &a4.stats);
    assert_eq!(json1, json4, "callgraph.json must not depend on --jobs");
    assert_eq!(a1.report.violations.len(), a4.report.violations.len());
    assert_eq!(a1.report.allowed.len(), a4.report.allowed.len());
    assert_eq!(a1.report.to_json(), a4.report.to_json());
    assert_eq!(
        a1.purity.to_json(&a1.graph),
        a4.purity.to_json(&a4.graph),
        "purity.json must not depend on --jobs"
    );
}

/// The committed artifact must match what the engine produces at HEAD —
/// the same drift gate CI applies, kept here so plain `cargo test`
/// catches a stale `results/callgraph.json` before CI does.
#[test]
fn committed_callgraph_matches_head() {
    let root = workspace_root();
    let committed = match std::fs::read_to_string(root.join("results/callgraph.json")) {
        Ok(s) => s,
        // A fresh checkout without results/ is not an error.
        Err(_) => return,
    };
    let a = analyze_workspace(&root, 1).expect("analysis");
    let fresh = a.graph.to_json(&a.roots, &a.hot_roots, &a.stats);
    assert_eq!(
        committed, fresh,
        "results/callgraph.json is stale — regenerate with \
         `cargo run -p specweb-lint -- --graph`"
    );
}

/// The precision acceptance criterion: on the real workspace, the
/// import/glob rungs must shrink the any-name fallback edge set by at
/// least half versus the same graph built name-matching-only (the v1
/// resolver the committed artifact used to record). The opaque-method
/// fallback is counted separately — imports cannot type a method
/// receiver, so it is not part of this criterion.
#[test]
fn import_rungs_shrink_the_fallback_by_at_least_half() {
    let root = workspace_root();
    let extracts = workspace_extracts(&root).expect("extracts");
    let deps = load_crate_deps(&root);
    let (_, with) = graph::CallGraph::build_with_opts(&extracts, &deps, true);
    let (_, without) = graph::CallGraph::build_with_opts(&extracts, &deps, false);
    assert!(
        with.fallback_edges * 2 <= without.fallback_edges,
        "import rungs must halve the fallback: {} with imports vs {} without",
        with.fallback_edges,
        without.fallback_edges
    );
    // The named-import rungs decide real work: both fire. (The glob
    // rung is pinned by unit fixtures — the workspace itself has no
    // glob imports.)
    for rung in ["import", "import_foreign"] {
        assert!(
            with.per_rung[rung] > 0,
            "rung {rung} never fired: {:#?}",
            with.per_rung
        );
    }
    assert_eq!(with.calls, without.calls, "same call sites either way");
}

/// Workspace purity spot-checks: the G4 contract fns really are
/// effect-free at HEAD, and a known process-exiting fn classifies as
/// effectful — so a regression in either direction fails loudly.
#[test]
fn workspace_purity_classification_holds() {
    let root = workspace_root();
    let a = analyze_workspace(&root, 1).expect("analysis");
    let class = &a.purity.class;
    for q in [
        "core::stats::StreamingStats::merge",
        "core::stats::Histogram::merge",
        "core::stats::ServiceTimeDist::merge",
        "serve::session::replay",
    ] {
        let p = class
            .get(q)
            .unwrap_or_else(|| panic!("{q} missing from purity map"));
        assert!(
            matches!(p, purity::Purity::Pure | purity::Purity::LocalMut),
            "{q} must be effect-free, got {p:?}"
        );
    }
    assert_eq!(
        class.get("bench::bin::figures::die"),
        Some(&purity::Purity::Effectful),
        "process::exit must classify as effectful"
    );
    let counts = a.purity.counts();
    assert!(counts["pure"] > 0 && counts["effectful"] > 0, "{counts:#?}");
}

/// Root resolution on the real workspace: the deterministic entry
/// points the ISSUE names must all be present.
#[test]
fn workspace_roots_resolve() {
    let root = workspace_root();
    let a = analyze_workspace(&root, 1).expect("analysis");
    for expected in [
        "dissem::simulate::DisseminationSim::run",
        "spec::simulate::SpecSim::run",
        "trace::generator::TraceGenerator::generate",
        "spec::deps::DepMatrix::closure",
        "spec::deps::DepMatrix::closure_jobs",
    ] {
        assert!(
            a.roots.iter().any(|r| r == expected),
            "missing root {expected}; roots = {:#?}",
            a.roots
        );
    }
    assert!(
        a.roots
            .iter()
            .filter(|r| r.starts_with("bench::exps::"))
            .count()
            >= 8,
        "bench::exps experiments must be roots: {:#?}",
        a.roots
    );
    assert!(
        a.roots
            .iter()
            .filter(|r| r.starts_with("dissem::alloc::"))
            .count()
            >= 5,
        "dissem::alloc fns must be roots: {:#?}",
        a.roots
    );
    // Hot roots are the strict subset G3 uses.
    assert!(a.hot_roots.len() < a.roots.len());
    assert!(a.hot_roots.iter().all(|h| a.roots.contains(h)));
    let _ = taint::resolve_roots(&a.graph); // public API stays callable
}
