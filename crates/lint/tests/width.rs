//! Width-engine tests: fixture-driven W-rule checks, the jobs
//! determinism gate for `widthflow.json`, the committed-artifact
//! staleness gate, and the pinned any-name fallback-edge ceiling.

use specweb_lint::{
    analyze_sources, analyze_workspace, graph, load_crate_deps, workspace_extracts, FileKind,
};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {path}: {e}"))
}

fn workspace_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn analyze_fixture(name: &str) -> specweb_lint::Analysis {
    analyze_sources(&[(
        "crates/core/src/widthfix.rs".to_string(),
        FileKind::Lib,
        fixture(name),
    )])
}

#[test]
fn tainted_multiply_is_w1_with_seed_chain() {
    let a = analyze_fixture("width_tainted_mul.rs");
    let w1: Vec<_> = a
        .report
        .violations
        .iter()
        .filter(|d| d.rule == "W1")
        .collect();
    assert_eq!(w1.len(), 1, "{:#?}", a.report.violations);
    assert!(w1[0].message.contains("scale seed"), "{}", w1[0].message);
    assert!(w1[0].message.contains("days"), "{}", w1[0].message);
}

#[test]
fn bound_checked_cast_is_clean_unbounded_is_w2() {
    let clean = analyze_fixture("width_bounded_cast.rs");
    assert!(
        clean.report.violations.is_empty(),
        "dominating bound check must silence W2: {:#?}",
        clean.report.violations
    );
    let dirty = analyze_fixture("width_unbounded_cast.rs");
    let w2: Vec<_> = dirty
        .report
        .violations
        .iter()
        .filter(|d| d.rule == "W2")
        .collect();
    assert_eq!(w2.len(), 1, "{:#?}", dirty.report.violations);
    assert!(w2[0].message.contains("duration_days"), "{}", w2[0].message);
}

#[test]
fn tainted_capacity_is_w3() {
    let a = analyze_fixture("width_tainted_capacity.rs");
    let w3: Vec<_> = a
        .report
        .violations
        .iter()
        .filter(|d| d.rule == "W3")
        .collect();
    assert_eq!(w3.len(), 1, "{:#?}", a.report.violations);
    assert!(w3[0].message.contains("n_clients"), "{}", w3[0].message);
}

#[test]
fn taint_crosses_the_call_into_a_helper() {
    let a = analyze_fixture("width_helper_chain.rs");
    let w1: Vec<_> = a
        .report
        .violations
        .iter()
        .filter(|d| d.rule == "W1")
        .collect();
    assert_eq!(w1.len(), 1, "{:#?}", a.report.violations);
    // The finding sits in the helper, with the evidence chain walking
    // back through the call argument to the seed in the caller.
    let msg = &w1[0].message;
    assert!(msg.contains('n'), "{msg}");
    assert!(msg.contains("arg"), "chain must cross the call: {msg}");
    assert!(msg.contains("sessions_per_day"), "{msg}");
    assert!(msg.contains("scale seed"), "{msg}");
}

/// DESIGN §6a applied to the width artifact: `widthflow.json` for the
/// real workspace must be byte-identical whether the per-file pass ran
/// serially or on four workers.
#[test]
fn widthflow_json_is_byte_identical_across_jobs() {
    let root = workspace_root();
    let a1 = analyze_workspace(&root, 1).expect("serial analysis");
    let a4 = analyze_workspace(&root, 4).expect("parallel analysis");
    assert_eq!(
        a1.width.to_json(&a1.graph),
        a4.width.to_json(&a4.graph),
        "widthflow.json must not depend on --jobs"
    );
}

/// The committed artifact must match what the engine produces at HEAD —
/// the same drift gate CI applies, kept here so plain `cargo test`
/// catches a stale `results/widthflow.json` before CI does.
#[test]
fn committed_widthflow_matches_head() {
    let root = workspace_root();
    let committed = match std::fs::read_to_string(root.join("results/widthflow.json")) {
        Ok(s) => s,
        // A fresh checkout without results/ is not an error.
        Err(_) => return,
    };
    let a = analyze_workspace(&root, 1).expect("analysis");
    assert_eq!(
        committed,
        a.width.to_json(&a.graph),
        "results/widthflow.json is stale — regenerate with \
         `cargo run -p specweb-lint -- --width`"
    );
}

/// The any-name fallback edge set is pinned: resolver changes may
/// shrink it, never grow it past the audited ceiling. The pairs are
/// emitted into `callgraph.json` so a diff shows exactly which edge
/// appeared.
#[test]
fn fallback_pairs_stay_under_the_audited_ceiling() {
    let root = workspace_root();
    let extracts = workspace_extracts(&root).expect("extracts");
    let deps = load_crate_deps(&root);
    let (_, stats) = graph::CallGraph::build_with_opts(&extracts, &deps, true);
    assert!(
        stats.fallback_pairs.len() <= 44,
        "any-name fallback edge list grew past the audited ceiling of 44: \
         {} pairs now — resolve the new edges or re-audit:\n{:#?}",
        stats.fallback_pairs.len(),
        stats.fallback_pairs
    );
    // Every pair is caller != callee and sorted/deduped.
    let mut sorted = stats.fallback_pairs.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted, stats.fallback_pairs, "pairs must be sorted+deduped");
}

/// The workspace itself is the last fixture: zero W findings and every
/// W allow in active use (the sweep this engine shipped with stays
/// swept).
#[test]
fn workspace_is_width_clean() {
    let root = workspace_root();
    let a = analyze_workspace(&root, 1).expect("analysis");
    let w: Vec<_> = a
        .report
        .violations
        .iter()
        .filter(|d| d.rule.starts_with('W'))
        .collect();
    assert!(w.is_empty(), "workspace must stay width-clean: {w:#?}");
    assert!(
        a.report.unused_allows.is_empty(),
        "{:#?}",
        a.report.unused_allows
    );
    let counts = a.width.counts(&a.graph);
    assert!(counts["tainted_fns"] > 0, "{counts:#?}");
    assert!(counts["arith_sites"] > 0, "{counts:#?}");
}
