//! The tree-wide gate: `cargo test` fails if any workspace source
//! violates the determinism & safety rules, or if a `lint:allow` has
//! gone stale. This is the same check CI runs via
//! `cargo run -p specweb-lint -- --deny-all`.

use std::path::Path;

#[test]
fn workspace_has_no_lint_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = specweb_lint::lint_workspace(&root).expect("walking the workspace");

    assert!(
        report.files_scanned > 50,
        "walked only {} files — workspace root misdetected?",
        report.files_scanned
    );

    let mut msgs: Vec<String> = report.violations.iter().map(|d| d.to_string()).collect();
    msgs.extend(
        report
            .unused_allows
            .iter()
            .map(|d| format!("(unused allow) {d}")),
    );
    assert!(
        msgs.is_empty(),
        "workspace lint failed:\n{}",
        msgs.join("\n")
    );
}
