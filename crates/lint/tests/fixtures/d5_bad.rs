//! D5 fixture: ad-hoc thread creation outside core::par / serve.

pub fn fan_out() {
    let h = std::thread::spawn(move || 1 + 1);
    let _ = h.join();
}
