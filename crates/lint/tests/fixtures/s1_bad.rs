//! S1 fixture: unsafe outside the (empty) allowlist.

pub fn peek(p: *const u32) -> u32 {
    // SAFETY: a comment alone does not help — the file must be on the
    // allowlist first.
    unsafe { *p }
}
