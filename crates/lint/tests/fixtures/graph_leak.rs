// Graph-engine fixture: a cross-function hash-order leak the line
// engine MISSES. The one HashMap-mentioning line carries a
// plausible-sounding (but wrong) lint:allow, and the iteration line
// never mentions `HashMap`, so the line engine reports nothing — while
// `predict()` pushes ids in hash order into a vec that flows back into
// the simulator root.
pub struct Profile {
    // lint:allow(D2): keyed lookups only; never iterated. (Wrong —
    // predict() below iterates it; exactly the claim the graph engine
    // exists to check.)
    scores: std::collections::HashMap<u32, f64>,
}

impl Profile {
    pub fn predict(&self) -> Vec<u32> {
        let mut hot = Vec::new();
        for (id, score) in &self.scores {
            if *score > 0.5 {
                hot.push(*id);
            }
        }
        hot
    }
}
