//! D4 fixture: unseeded RNG construction.

pub fn roll() -> f64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}
