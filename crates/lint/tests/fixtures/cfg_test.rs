//! Test-region fixture: everything under `#[cfg(test)]` is exempt
//! from every rule, while code outside it is not.

pub fn double(x: u32) -> u32 {
    x * 2
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn doubles() {
        let mut seen: HashMap<u32, u32> = HashMap::new();
        seen.insert(2, super::double(1));
        assert_eq!(*seen.get(&2).unwrap(), 2);
    }
}
