//! W1 fixture: a widening multiply of two scale-seeded values with no
//! checked/saturating guard anywhere in the flow.
pub struct TraceConfig {
    pub duration_days: u64,
    pub sessions_per_day: u64,
}

pub fn total_sessions(cfg: &TraceConfig) -> u64 {
    let days = cfg.duration_days;
    days * cfg.sessions_per_day
}
