// Graph-engine fixture: a hash map used for keyed lookups only. The
// line engine flags the two HashMap tokens (needing allows); the
// reachability engine accepts the file as-is because no iteration of
// the map is reachable from any root.
use std::collections::HashMap;

pub fn lookup(table: &HashMap<u32, f64>, id: u32) -> f64 {
    *table.get(&id).unwrap_or(&0.0)
}
