//! D2 fixture: hash collections named in library code.

use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut out = HashMap::new();
    for &x in xs {
        *out.entry(x).or_insert(0) += 1;
    }
    out
}
