//! Interprocedural fixture: the hazard lives in a helper that never
//! mentions a seed by name — taint arrives through the call argument.
fn scale(n: u64) -> u64 {
    n * 4
}

pub fn run(sessions_per_day: u64) -> u64 {
    scale(sessions_per_day)
}
