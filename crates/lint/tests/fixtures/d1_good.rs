//! D1 fixture: total_cmp comparators and a PartialOrd impl are fine.

pub fn rank(xs: &mut [(u32, f64)]) {
    xs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
}

pub struct Score(f64);

impl PartialOrd for Score {
    // Defining `fn partial_cmp` is the one sanctioned appearance.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}
