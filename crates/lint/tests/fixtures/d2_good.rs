//! D2 fixture: BTreeMap is deterministic by construction, and the
//! words HashMap / HashSet inside comments or string literals must
//! not trip the rule (they are not code).

use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut out = BTreeMap::new();
    for &x in xs {
        *out.entry(x).or_insert(0) += 1;
    }
    out
}

pub fn describe() -> &'static str {
    "a HashMap would be nondeterministic here; HashSet too"
}
