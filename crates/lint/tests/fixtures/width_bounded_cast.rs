//! W2 clean fixture: the narrowing cast is dominated by an explicit
//! bound check in the same function, so no finding fires.
pub fn clamp_days(duration_days: u64) -> usize {
    if duration_days > 4096 {
        return 4096;
    }
    duration_days as usize
}
