// Lexer pin: byte strings and raw byte strings are literals — their
// bodies must be blanked, so the rule-looking tokens inside them must
// not produce hits.
pub fn byte_strings() -> usize {
    let a = b"HashMap::new() and .unwrap() live here";
    let b = br#"thread::spawn("Instant::now") } { "#;
    let c = br##"nested "# close attempt, still one literal"##;
    a.len() + b.len() + c.len()
}
