// Lexer pin: char literals containing a quote or a brace must not
// derail string/brace tracking. If `'"'` opened a string, the next
// real string would flip to code and leak `HashMap` into the code
// channel; if `'{'` counted as a brace, test-region tracking would
// swallow the rest of the file.
pub fn chars() -> (char, char, char, usize) {
    let quote = '"';
    let open = '{';
    let escaped = '\u{10FFFF}';
    let s = "HashMap inside a literal, not code";
    (quote, open, escaped, s.len())
}
