// Lexer pin: lifetime ticks are not char-literal openers. If `'a`
// started a literal, everything up to the next apostrophe would blank
// and the genuine violation at the bottom would be hidden.
pub struct Holder<'a> {
    name: &'a str,
}

pub fn pick<'a, 'b: 'a>(x: &'a str, _y: &'b str) -> &'a str {
    x
}

// A real D2 hit after heavy lifetime use proves the lexer is still
// reading code here.
use std::collections::HashMap;
