//! D1 fixture: a float comparator built on `partial_cmp`.

pub fn rank(xs: &mut [(u32, f64)]) {
    xs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
}
