//! Suppression fixture: malformed allows are themselves violations.

// lint:allow(D2):
use std::collections::HashMap;

// lint:allow(D9): no such rule exists.
pub type Index = HashMap<u32, usize>;
