//! W3 fixture: a capacity reservation sized directly by a scale seed.
pub fn preallocate(n_clients: usize) -> Vec<u64> {
    let mut v = Vec::with_capacity(n_clients);
    v.push(0);
    v
}
