//! Suppression fixture: an allow whose covered line no longer trips
//! the named rule must be reported as unused.

// lint:allow(D2): stale — the map below was converted to BTreeMap.
pub fn tally() -> std::collections::BTreeMap<u32, u32> {
    std::collections::BTreeMap::new()
}
