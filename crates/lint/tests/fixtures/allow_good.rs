//! Suppression fixture: both placements of a well-formed
//! `lint:allow`, each with a written reason.

use std::collections::HashMap; // lint:allow(D2): fixture — trailing marker covers its own line.

// lint:allow(D2): fixture — a preceding comment-only marker covers the
// next line that contains code, even across this second comment line.
pub fn index(xs: &[u32]) -> HashMap<u32, usize> {
    xs.iter().enumerate().map(|(i, &x)| (x, i)).collect()
}
