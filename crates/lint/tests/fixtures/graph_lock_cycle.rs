// Graph-engine fixture: two locks acquired in both orders across two
// fns — a classic AB/BA deadlock shape (G2). Each guard is `let`-bound
// and therefore held across the second acquisition.
pub struct Pair {
    alpha: std::sync::Mutex<u64>,
    beta: std::sync::Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    pub fn backward(&self) -> u64 {
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        *a - *b
    }
}
