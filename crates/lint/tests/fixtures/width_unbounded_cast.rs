//! W2 fixture: the same narrowing cast with the bound check removed.
pub fn clamp_days(duration_days: u64) -> usize {
    duration_days as usize
}
