// Graph-engine fixture: one panic-capable op reachable from a
// simulator hot loop (G3) and one in a cold reporting path (no G3).
// The line engine's blanket S2 flags both; reachability distinguishes
// them.
pub fn hot_step(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn cold_report(y: Option<u64>) -> u64 {
    y.expect("report values are always present")
}
