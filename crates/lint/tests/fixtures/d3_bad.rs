//! D3 fixture: wall-clock reads in deterministic-path code.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
