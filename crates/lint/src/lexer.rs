//! A minimal Rust lexer that separates code from comments and blanks
//! out literal bodies.
//!
//! The rule engine in this crate matches identifiers and method names
//! textually. Doing that on raw source would trip over the words
//! "HashMap" or ".unwrap()" appearing inside a doc comment or an error
//! message string, so every file is first passed through [`sanitize`]:
//!
//! * line comments (`//`), nested block comments (`/* /* */ */`) and
//!   doc comments are removed from the code channel and captured in a
//!   per-line comment channel (the comment channel is what the
//!   `lint:allow` suppression parser reads);
//! * string literals (`"…"`, `b"…"`), raw strings (`r"…"`, `r#"…"#`
//!   with any number of hashes, `br#"…"#`) and char/byte-char literals
//!   (`'a'`, `b'\n'`) keep their delimiters but have their bodies
//!   replaced with spaces;
//! * lifetimes (`'a`, `'static`, `'_`) are recognized and left in the
//!   code channel so they are not mistaken for unterminated chars.
//!
//! The output preserves the physical line structure: `sanitize`
//! returns one [`Line`] per input line, so every diagnostic can carry
//! an exact 1-based line number.

/// One physical source line after sanitization.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code with comments removed and literal bodies blanked.
    pub code: String,
    /// Concatenated comment text on this line, without delimiters.
    pub comment: String,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// True when `code` contains `ident` as a standalone identifier (not as
/// a substring of a longer identifier). `ident` must be ASCII.
pub fn has_ident(code: &str, ident: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(ident) {
        let p = start + pos;
        let before_ok = p == 0 || !is_ident_byte(bytes[p - 1]);
        let after = p + ident.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        start = p + ident.len();
    }
    false
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment at the given depth.
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string; closes on `"` followed by this many `#`s.
    RawStr(usize),
}

/// Split `src` into per-line code and comment channels.
pub fn sanitize(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'b' && next == Some('"') && (i == 0 || !is_ident_char(chars[i - 1]))
                {
                    // b"…" byte string: escapes behave like a plain string.
                    code.push('b');
                    code.push('"');
                    state = State::Str;
                    i += 2;
                } else if let Some((prefix, hashes)) = raw_string_start(&chars, i) {
                    for _ in 0..prefix {
                        code.push(chars[i]);
                        i += 1;
                    }
                    state = State::RawStr(hashes);
                } else if c == '\'' {
                    i = consume_quote(&chars, i, &mut code);
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if i + 1 < n && chars[i + 1] != '\n' {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Final line without a trailing newline.
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line { code, comment });
    }
    lines
}

/// At `chars[i]`, detect the start of a raw or byte string literal.
/// Returns `(prefix_len, hashes)` where `prefix_len` covers everything
/// through the opening quote. A preceding identifier character rules
/// the match out (`var"` is not a literal prefix).
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    if i > 0 && is_ident_char(chars[i - 1]) {
        return None;
    }
    let mut j = i;
    match chars.get(j) {
        Some('b') => {
            j += 1;
            if chars.get(j) == Some(&'r') {
                j += 1;
            } else {
                // b"…" is handled by the caller as a plain string.
                return None;
            }
        }
        Some('r') => j += 1,
        _ => return None,
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j + 1 - i, hashes))
    } else {
        None
    }
}

/// True when the `"` at `chars[i]` is followed by `hashes` `#`s,
/// closing the raw string.
fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Handle a `'` at position `i`: either a char literal (blank its body)
/// or a lifetime (copy through). Returns the next index to process.
fn consume_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    let n = chars.len();
    // Escaped char literal: '\n', '\\', '\'', '\u{7fff}' …
    if i + 1 < n && chars[i + 1] == '\\' {
        let mut j = i + 2;
        // Skip the escaped character, then scan (bounded) for the close.
        if j < n {
            j += 1;
        }
        let limit = (i + 12).min(n);
        while j < limit && chars[j] != '\'' {
            j += 1;
        }
        if j < n && chars[j] == '\'' {
            code.push('\'');
            for _ in i + 1..j {
                code.push(' ');
            }
            code.push('\'');
            return j + 1;
        }
        code.push('\'');
        return i + 1;
    }
    // Plain char literal: 'a' (but not the lifetime in `&'a ()`).
    if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
        code.push('\'');
        code.push(' ');
        code.push('\'');
        return i + 3;
    }
    // Lifetime or stray quote: copy through.
    code.push('\'');
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        sanitize(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_move_to_comment_channel() {
        let lines = sanitize("let x = 1; // uses HashMap\nlet y = 2;");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " uses HashMap");
        assert_eq!(lines[1].code, "let y = 2;");
        assert!(!has_ident(&lines[0].code, "HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let lines = sanitize(src);
        assert_eq!(lines[0].code, "a  b");
        assert!(lines[0].comment.contains("inner"));
        assert!(lines[0].comment.contains("still comment"));
    }

    #[test]
    fn multiline_block_comment_keeps_line_count() {
        let src = "a\n/* one\ntwo HashMap\nthree */\nb";
        let lines = sanitize(src);
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0].code, "a");
        assert_eq!(lines[2].code, "");
        assert!(lines[2].comment.contains("HashMap"));
        assert_eq!(lines[4].code, "b");
    }

    #[test]
    fn string_bodies_are_blanked() {
        let c = code_of(r#"let s = "call .unwrap() on HashMap";"#);
        assert!(!c[0].contains("unwrap"));
        assert!(!has_ident(&c[0], "HashMap"));
        assert!(c[0].starts_with("let s = \""));
        assert!(c[0].ends_with("\";"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let c = code_of(r#"let s = "a\"b unwrap"; let t = x.unwrap();"#);
        assert!(!c[0].contains("unwrap\""));
        assert!(c[0].contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"contains \"quotes\" and HashMap\"#; use x;";
        let c = code_of(src);
        assert!(!has_ident(&c[0], "HashMap"));
        assert!(c[0].contains("use x;"));
    }

    #[test]
    fn raw_string_double_hash_and_comment_lookalike() {
        let src = "let s = r##\"// not a comment\"##;\nlet y = 1; // real";
        let lines = sanitize(src);
        assert!(lines[0].comment.is_empty());
        assert_eq!(lines[1].comment, " real");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let c = code_of(r#"let b = b"HashMap"; let c = b'x';"#);
        assert!(!has_ident(&c[0], "HashMap"));
        assert!(c[0].contains("let c = b' ';"));
    }

    #[test]
    fn char_literal_with_slash_is_not_a_comment() {
        let src = "if c == '/' { x() } // trailing";
        let lines = sanitize(src);
        assert_eq!(lines[0].code, "if c == ' ' { x() } ");
        assert_eq!(lines[0].comment, " trailing");
    }

    #[test]
    fn char_literal_with_quote_escape() {
        let c = code_of(r"let q = '\''; let n = '\n'; let u = '\u{7f}';");
        assert!(!c[0].contains('u') || !c[0].contains("'u"));
        // All literal bodies blanked; statement structure intact.
        assert_eq!(c[0].matches('\'').count(), 6);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { y }";
        let c = code_of(src);
        assert_eq!(c[0], src);
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let src = r#"let var = compar("x");"#;
        let c = code_of(src);
        assert!(c[0].contains("compar(\""));
    }

    #[test]
    fn has_ident_respects_boundaries() {
        assert!(has_ident("use std::collections::HashMap;", "HashMap"));
        assert!(!has_ident("let my_hashmap_like = 1;", "HashMap"));
        assert!(!has_ident("forbid(unsafe_code)", "unsafe"));
        assert!(has_ident("unsafe { x }", "unsafe"));
        assert!(has_ident("HashMap", "HashMap"));
        assert!(!has_ident("XHashMap", "HashMap"));
        assert!(!has_ident("HashMapX", "HashMap"));
    }

    #[test]
    fn no_trailing_newline_still_emits_last_line() {
        let lines = sanitize("let a = 1;");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].code, "let a = 1;");
    }
}
