//! Workspace call graph: resolution of the extractor's raw call sites
//! into edges, plus a deterministic JSON serialization.
//!
//! Name resolution is deliberately **over-approximate** (DESIGN §9): an
//! edge we cannot rule out is an edge we keep. The ladder, most to
//! least precise:
//!
//! 1. `self.m(..)` where the enclosing `impl`/`trait` type defines `m`
//!    → exactly those candidates;
//! 2. `Type::f(..)` where `Type` is a known impl/trait type → that
//!    type's `f`;
//! 3. `module::f(..)` where the qualifier suffix-matches a known module
//!    path → that module's `f`;
//! 4. unqualified `f(..)` → same-module `f` when one exists;
//! 5. everything else (method calls on unknown receivers, foreign-path
//!    calls, unresolved free calls) → **every** workspace fn named `f`.
//!
//! Rung 5 is the conservative fallback the ISSUE calls for: `x.get(..)`
//! on an opaque receiver edges to every `get` in the workspace. That
//! can only create false reachability (handled by `lint:allow` at the
//! source site), never hide a real path — the soundness direction the
//! whole pass is built around.

use std::collections::{BTreeMap, BTreeSet};

use crate::extract::{FileExtract, LockSite, SourceKind, SourceSite};

/// The workspace crate-dependency DAG, used to prune infeasible edges:
/// a fn in crate A cannot call a fn in crate B unless A (transitively)
/// depends on B — `rustc` would not even resolve the name. This is the
/// one *under*-approximation-free filter layered on the conservative
/// name fallback: it removes edges that are impossible by construction,
/// never edges that are merely unlikely.
#[derive(Debug, Clone, Default)]
pub struct CrateDeps {
    /// crate → transitive dependency closure (crate names as they
    /// appear as the first qname segment, e.g. `spec`, `core`).
    deps: BTreeMap<String, BTreeSet<String>>,
}

impl CrateDeps {
    /// No pruning: every cross-crate edge is feasible. Used by
    /// in-memory fixture analyses that have no Cargo metadata.
    pub fn permissive() -> CrateDeps {
        CrateDeps::default()
    }

    /// Builds from direct-dependency pairs `(crate, dep)`, computing
    /// the transitive closure.
    pub fn from_pairs(pairs: &[(String, String)]) -> CrateDeps {
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (a, b) in pairs {
            deps.entry(a.clone()).or_default().insert(b.clone());
            deps.entry(b.clone()).or_default();
        }
        // Closure: iterate to fixpoint (the workspace DAG is tiny).
        loop {
            let mut grew = false;
            let snapshot = deps.clone();
            for set in deps.values_mut() {
                let extra: BTreeSet<String> = set
                    .iter()
                    .filter_map(|d| snapshot.get(d))
                    .flatten()
                    .filter(|d| !set.contains(*d))
                    .cloned()
                    .collect();
                if !extra.is_empty() {
                    set.extend(extra);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        CrateDeps { deps }
    }

    /// Whether a call edge from crate `a` to crate `b` is feasible.
    /// Crates absent from the map (fixtures, the root package) are
    /// treated permissively — pruning must never under-approximate.
    pub fn edge_ok(&self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        match self.deps.get(a) {
            Some(set) => !self.deps.contains_key(b) || set.contains(b),
            None => true,
        }
    }
}

/// First qname segment = crate.
fn crate_of(qname: &str) -> &str {
    qname.split("::").next().unwrap_or(qname)
}

/// Std / foreign type and path qualifiers whose associated fns never
/// reenter workspace code directly (callbacks they take are closures,
/// whose bodies the extractor already attributes to the defining fn).
/// Resolving `Vec::new(..)` to every workspace `new` would only add
/// noise, so these short-circuit to "no candidates".
const STD_QUALIFIERS: &[&str] = &[
    "Arc",
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Box",
    "Cell",
    "Command",
    "Condvar",
    "Cow",
    "Duration",
    "File",
    "HashMap",
    "HashSet",
    "Instant",
    "Ipv4Addr",
    "Mutex",
    "NonZeroU32",
    "NonZeroUsize",
    "Option",
    "OsStr",
    "OsString",
    "Ordering",
    "Path",
    "PathBuf",
    "Rc",
    "RefCell",
    "Reverse",
    "RwLock",
    "SocketAddr",
    "String",
    "SystemTime",
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "Vec",
    "VecDeque",
    "char",
    "f32",
    "f64",
    "i32",
    "i64",
    "str",
    "u16",
    "u32",
    "u64",
    "u8",
    "usize",
];

fn is_std_qualifier(q: &str) -> bool {
    let first = q.split("::").next().unwrap_or(q);
    let last = q.rsplit("::").next().unwrap_or(q);
    matches!(first, "std" | "alloc") || STD_QUALIFIERS.contains(&last)
}

/// One resolved function node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Module path (no type/fn segments).
    pub module: String,
    /// Simple name.
    pub name: String,
    /// Enclosing impl/trait type, when any.
    pub self_type: Option<String>,
    /// Resolved callees (qnames).
    pub calls: BTreeSet<String>,
    /// Nondeterminism / hazard sources, deduped by (line, kind).
    pub sources: Vec<SourceSite>,
    /// Raw index expressions (recorded, not enforced).
    pub index_sites: usize,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
}

/// The resolved workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// qname → node. BTreeMap so every traversal and the JSON dump are
    /// order-deterministic.
    pub nodes: BTreeMap<String, Node>,
}

impl CallGraph {
    /// Builds the graph from per-file extraction results, with
    /// permissive (no) crate-dependency pruning.
    pub fn build(files: &[FileExtract]) -> CallGraph {
        CallGraph::build_with_deps(files, &CrateDeps::permissive())
    }

    /// Builds the graph, pruning candidate edges that contradict the
    /// crate-dependency DAG (see [`CrateDeps`]).
    pub fn build_with_deps(files: &[FileExtract], deps: &CrateDeps) -> CallGraph {
        // Index pass: name → qnames, (type, name) → qnames,
        // module → set of fn names, known module paths.
        let mut by_name: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut by_type_name: BTreeMap<(&str, &str), Vec<&str>> = BTreeMap::new();
        let mut by_module_name: BTreeMap<(&str, &str), Vec<&str>> = BTreeMap::new();
        let mut modules: BTreeSet<&str> = BTreeSet::new();
        for fx in files {
            for f in &fx.fns {
                by_name.entry(&f.name).or_default().push(&f.qname);
                if let Some(t) = &f.self_type {
                    by_type_name
                        .entry((t.as_str(), f.name.as_str()))
                        .or_default()
                        .push(&f.qname);
                }
                by_module_name
                    .entry((f.module.as_str(), f.name.as_str()))
                    .or_default()
                    .push(&f.qname);
                modules.insert(&f.module);
            }
        }
        let known_types: BTreeSet<&str> = files
            .iter()
            .flat_map(|fx| fx.impl_types.iter().map(String::as_str))
            .collect();
        let method_qnames: BTreeSet<&str> = files
            .iter()
            .flat_map(|fx| fx.fns.iter())
            .filter(|f| f.self_type.is_some())
            .map(|f| f.qname.as_str())
            .collect();

        let mut nodes: BTreeMap<String, Node> = BTreeMap::new();
        for fx in files {
            for f in &fx.fns {
                let mut calls: BTreeSet<String> = BTreeSet::new();
                for c in &f.calls {
                    let cands: Vec<&str> = if c.is_method {
                        if c.on_self {
                            if let Some(t) = &f.self_type {
                                match by_type_name.get(&(t.as_str(), c.name.as_str())) {
                                    Some(v) => v.clone(),
                                    // Unknown on this type (trait method
                                    // via blanket impl, deref…): fall
                                    // back to any same-named fn.
                                    None => {
                                        by_name.get(c.name.as_str()).cloned().unwrap_or_default()
                                    }
                                }
                            } else {
                                by_name.get(c.name.as_str()).cloned().unwrap_or_default()
                            }
                        } else {
                            // Opaque receiver: every method named `m`
                            // (free fns can't be method targets).
                            by_name
                                .get(c.name.as_str())
                                .map(|v| {
                                    v.iter()
                                        .filter(|q| method_qnames.contains(*q))
                                        .copied()
                                        .collect::<Vec<_>>()
                                })
                                .unwrap_or_default()
                        }
                    } else if !c.qualifier.is_empty() {
                        let last = c.qualifier.rsplit("::").next().unwrap_or(&c.qualifier);
                        if known_types.contains(last) {
                            by_type_name
                                .get(&(last, c.name.as_str()))
                                .cloned()
                                .unwrap_or_else(|| {
                                    by_name.get(c.name.as_str()).cloned().unwrap_or_default()
                                })
                        } else if let Some(m) = match_module(&modules, &c.qualifier, &f.module) {
                            by_module_name
                                .get(&(m, c.name.as_str()))
                                .cloned()
                                .unwrap_or_default()
                        } else if is_std_qualifier(&c.qualifier) {
                            // Std/foreign type: never reenters
                            // workspace code directly (closures it is
                            // handed are attributed to the defining fn
                            // already).
                            Vec::new()
                        } else {
                            // Unknown foreign path: conservative
                            // any-name fallback.
                            by_name.get(c.name.as_str()).cloned().unwrap_or_default()
                        }
                    } else {
                        // Unqualified free call: same module wins.
                        match by_module_name.get(&(f.module.as_str(), c.name.as_str())) {
                            Some(v) => v.clone(),
                            None => by_name.get(c.name.as_str()).cloned().unwrap_or_default(),
                        }
                    };
                    let from_crate = crate_of(&f.qname);
                    for q in cands {
                        if q != f.qname && deps.edge_ok(from_crate, crate_of(q)) {
                            calls.insert(q.to_string());
                        }
                    }
                }

                // Dedup sources by (line, kind) — `SystemTime::now()`
                // trips both the ident and the call-path pattern.
                let mut seen: BTreeSet<(usize, SourceKind)> = BTreeSet::new();
                let sources: Vec<SourceSite> = f
                    .sources
                    .iter()
                    .filter(|s| seen.insert((s.line, s.kind)))
                    .cloned()
                    .collect();

                let node = Node {
                    file: fx.rel.clone(),
                    line: f.line,
                    module: f.module.clone(),
                    name: f.name.clone(),
                    self_type: f.self_type.clone(),
                    calls,
                    sources,
                    index_sites: f.index_sites,
                    locks: f.locks.clone(),
                };
                match nodes.entry(f.qname.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(node);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        // Same qname twice (e.g. cfg-gated twins):
                        // merge conservatively.
                        let n = e.get_mut();
                        n.calls.extend(node.calls);
                        n.sources.extend(node.sources);
                        n.index_sites += node.index_sites;
                        n.locks.extend(node.locks);
                    }
                }
            }
        }
        CallGraph { nodes }
    }

    /// Serializes the graph as stable, key-sorted JSON (schema
    /// `specweb-callgraph/v1`). Byte-identical for identical inputs —
    /// the golden test diffs this across `--jobs` counts.
    pub fn to_json(&self, roots: &[String], hot_roots: &[String]) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"specweb-callgraph/v1\",\n");
        s.push_str(&format!("  \"fn_count\": {},\n", self.nodes.len()));
        let edge_count: usize = self.nodes.values().map(|n| n.calls.len()).sum();
        s.push_str(&format!("  \"edge_count\": {edge_count},\n"));
        s.push_str("  \"roots\": [");
        s.push_str(
            &roots
                .iter()
                .map(|r| format!("\"{}\"", esc(r)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("],\n  \"hot_roots\": [");
        s.push_str(
            &hot_roots
                .iter()
                .map(|r| format!("\"{}\"", esc(r)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("],\n  \"nodes\": {\n");
        let mut first = true;
        for (q, n) in &self.nodes {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!("    \"{}\": {{", esc(q)));
            s.push_str(&format!("\"file\": \"{}\", ", esc(&n.file)));
            s.push_str(&format!("\"line\": {}, ", n.line));
            s.push_str("\"calls\": [");
            s.push_str(
                &n.calls
                    .iter()
                    .map(|c| format!("\"{}\"", esc(c)))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push_str("], \"sources\": [");
            s.push_str(
                &n.sources
                    .iter()
                    .map(|src| {
                        format!(
                            "{{\"kind\": \"{}\", \"line\": {}, \"what\": \"{}\"}}",
                            src.kind.id(),
                            src.line,
                            esc(&src.what)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push_str("], \"locks\": [");
            s.push_str(
                &n.locks
                    .iter()
                    .map(|l| {
                        format!(
                            "{{\"name\": \"{}\", \"line\": {}, \"held\": {}}}",
                            esc(&l.name),
                            l.line,
                            l.held
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push_str(&format!("], \"index_sites\": {}}}", n.index_sites));
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

/// Matches a call-site qualifier against the known module set:
/// an exact module path, a suffix of one (`deps::helper(..)` inside
/// `spec` matches `spec::deps`), or a `crate::`-prefixed path rooted at
/// the caller's crate.
fn match_module<'m>(
    modules: &BTreeSet<&'m str>,
    qualifier: &str,
    caller_module: &str,
) -> Option<&'m str> {
    let q = qualifier.strip_prefix("crate::").map(|rest| {
        let krate = caller_module.split("::").next().unwrap_or(caller_module);
        format!("{krate}::{rest}")
    });
    let q = q.as_deref().unwrap_or(qualifier);
    if qualifier == "crate" {
        let krate = caller_module.split("::").next().unwrap_or(caller_module);
        return modules.get(krate).copied();
    }
    if let Some(m) = modules.get(q) {
        return Some(m);
    }
    // Suffix match: prefer the caller's own crate on ties.
    let mut hits: Vec<&str> = modules
        .iter()
        .filter(|m| m.ends_with(&format!("::{q}")))
        .copied()
        .collect();
    if hits.len() > 1 {
        let krate = caller_module.split("::").next().unwrap_or(caller_module);
        if let Some(own) = hits
            .iter()
            .find(|m| m.split("::").next() == Some(krate))
            .copied()
        {
            return Some(own);
        }
    }
    hits.pop()
}

/// Minimal JSON string escape.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::lexer::sanitize;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let fx: Vec<FileExtract> = files
            .iter()
            .map(|(rel, src)| {
                let lines = sanitize(src);
                let skip = vec![false; lines.len()];
                extract(rel, &lines, &skip)
            })
            .collect();
        CallGraph::build(&fx)
    }

    #[test]
    fn cross_module_path_calls_resolve() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper::go(); }"),
            ("crates/a/src/helper.rs", "pub fn go() {}"),
        ]);
        let entry = &g.nodes["a::entry"];
        assert!(entry.calls.contains("a::helper::go"), "{entry:#?}");
    }

    #[test]
    fn self_calls_resolve_to_the_impl() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
struct T;
impl T {
    fn outer(&self) { self.inner(); }
    fn inner(&self) {}
}
struct U;
impl U {
    fn inner(&self) {}
}
",
        )]);
        let outer = &g.nodes["a::T::outer"];
        assert_eq!(
            outer.calls.iter().collect::<Vec<_>>(),
            ["a::T::inner"],
            "self.inner() must not edge to U::inner"
        );
    }

    #[test]
    fn opaque_method_calls_fall_back_to_all_same_named_methods() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
struct T;
impl T { fn step(&self) {} }
struct U;
impl U { fn step(&self) {} }
fn drive(x: &T) { x.step(); }
",
        )]);
        let drive = &g.nodes["a::drive"];
        assert!(drive.calls.contains("a::T::step"));
        assert!(
            drive.calls.contains("a::U::step"),
            "conservative fallback keeps both"
        );
    }

    #[test]
    fn type_qualified_calls_resolve_to_the_type() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
struct T;
impl T { fn new() -> T { T } }
fn make() -> T { T::new() }
",
        )]);
        let make = &g.nodes["a::make"];
        assert_eq!(make.calls.iter().collect::<Vec<_>>(), ["a::T::new"]);
    }

    #[test]
    fn json_is_stable_under_input_permutation() {
        let files = [
            ("crates/a/src/lib.rs", "pub fn f() { g(); }\npub fn g() {}"),
            ("crates/b/src/lib.rs", "pub fn h() {}"),
        ];
        let mut rev = files;
        rev.reverse();
        let a = graph(&files).to_json(&[], &[]);
        let b = graph(&rev).to_json(&[], &[]);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"specweb-callgraph/v1\""));
    }

    #[test]
    fn self_edges_are_dropped() {
        let g = graph(&[("crates/a/src/lib.rs", "pub fn rec(n: u32) { rec(n); }")]);
        assert!(g.nodes["a::rec"].calls.is_empty());
    }
}
