//! Workspace call graph: resolution of the extractor's raw call sites
//! into edges, plus a deterministic JSON serialization.
//!
//! Name resolution is deliberately **over-approximate** (DESIGN §9): an
//! edge we cannot rule out is an edge we keep. The import-aware ladder,
//! most to least precise (per-rung counts are reported by `--stats` and
//! serialized in the graph's `resolution` section):
//!
//! 1. `self.m(..)` / `Self::f(..)` where the enclosing `impl`/`trait`
//!    type defines the name → exactly those candidates;
//! 2. the first path segment (or the bare name, for unqualified calls)
//!    is bound by a **named `use` import** in the calling module → the
//!    import's target scope, with `as`-renames followed to the original
//!    name. Imports of `std`/foreign paths resolve to *zero* workspace
//!    candidates — the import tells us exactly where the name comes
//!    from, and it is not workspace code;
//! 3. `Type::f(..)` where `Type` is a known impl/trait type → that
//!    type's `f`;
//! 4. `module::f(..)` where the qualifier suffix-matches a known module
//!    path (`crate::`/`specweb_*::` prefixes normalized) → that
//!    module's `f`; unqualified `f(..)` → same-module `f` when one
//!    exists (checked before rung 2 — module items shadow imports in
//!    practice and the union would be unsound in neither direction);
//! 5. a **glob import** (`use m::*;`) in the calling module whose
//!    target scope defines the name → those candidates;
//! 6. a std/foreign qualifier from the denylist → zero candidates
//!    (`Vec::new(..)` never reenters workspace code directly; closures
//!    it is handed are already attributed to the defining fn);
//! 7. a type-shaped qualifier (`T::f` with an UpperCamelCase `T`) that
//!    survived the rungs above: (a) `T` is a declared workspace type or
//!    a std trait in UFCS position (`Default::default()`) → the **assoc
//!    fallback**: every workspace fn declared inside some `impl`/`trait`
//!    block and named `f` — `T::f` can only name an associated item, so
//!    free fns are provably not candidates; (b) `T` is declared nowhere
//!    visible (macro-generated id types, unlisted foreign types) → zero
//!    candidates — no visible fn can be its associated item;
//! 8. everything else → the **any-name fallback**: every workspace fn
//!    named `f` for free/path calls; for method calls on opaque
//!    receivers, every workspace method named `m` that takes `self` (a
//!    `recv.m(..)` call cannot dispatch to a self-less constructor).
//!
//! Rung 8 is the conservative floor: it can only create false
//! reachability (handled by `lint:allow` at the source site), never
//! hide a real path — the soundness direction the whole pass is built
//! around. The precision rungs exist to shrink it: `--stats` reports
//! `fallback_edges` (free/path any-name edges) and
//! `method_fallback_edges` (opaque-method edges) separately, and the
//! golden test asserts the former shrinks ≥ 50% versus the v1
//! name-matching resolver on the same workspace.

use std::collections::{BTreeMap, BTreeSet};

use crate::extract::{
    ArithSite, CapacitySite, CastSite, EffectSite, FileExtract, FlowBind, LockSite, SourceKind,
    SourceSite,
};

/// The workspace crate-dependency DAG, used to prune infeasible edges:
/// a fn in crate A cannot call a fn in crate B unless A (transitively)
/// depends on B — `rustc` would not even resolve the name. This is the
/// one *under*-approximation-free filter layered on the conservative
/// name fallback: it removes edges that are impossible by construction,
/// never edges that are merely unlikely.
#[derive(Debug, Clone, Default)]
pub struct CrateDeps {
    /// crate → transitive dependency closure (crate names as they
    /// appear as the first qname segment, e.g. `spec`, `core`).
    deps: BTreeMap<String, BTreeSet<String>>,
}

impl CrateDeps {
    /// No pruning: every cross-crate edge is feasible. Used by
    /// in-memory fixture analyses that have no Cargo metadata.
    pub fn permissive() -> CrateDeps {
        CrateDeps::default()
    }

    /// Builds from direct-dependency pairs `(crate, dep)`, computing
    /// the transitive closure.
    pub fn from_pairs(pairs: &[(String, String)]) -> CrateDeps {
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (a, b) in pairs {
            deps.entry(a.clone()).or_default().insert(b.clone());
            deps.entry(b.clone()).or_default();
        }
        // Closure: iterate to fixpoint (the workspace DAG is tiny).
        loop {
            let mut grew = false;
            let snapshot = deps.clone();
            for set in deps.values_mut() {
                let extra: BTreeSet<String> = set
                    .iter()
                    .filter_map(|d| snapshot.get(d))
                    .flatten()
                    .filter(|d| !set.contains(*d))
                    .cloned()
                    .collect();
                if !extra.is_empty() {
                    set.extend(extra);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        CrateDeps { deps }
    }

    /// Whether a call edge from crate `a` to crate `b` is feasible.
    /// Crates absent from the map (fixtures, the root package) are
    /// treated permissively — pruning must never under-approximate.
    pub fn edge_ok(&self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        match self.deps.get(a) {
            Some(set) => !self.deps.contains_key(b) || set.contains(b),
            None => true,
        }
    }
}

/// First qname segment = crate.
fn crate_of(qname: &str) -> &str {
    qname.split("::").next().unwrap_or(qname)
}

/// Std / foreign type and path qualifiers whose associated fns never
/// reenter workspace code directly (callbacks they take are closures,
/// whose bodies the extractor already attributes to the defining fn).
/// Resolving `Vec::new(..)` to every workspace `new` would only add
/// noise, so these short-circuit to "no candidates".
const STD_QUALIFIERS: &[&str] = &[
    "Arc",
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Box",
    "Cell",
    "Command",
    "Condvar",
    "Cow",
    "Duration",
    "File",
    "HashMap",
    "HashSet",
    "Instant",
    "Ipv4Addr",
    "Mutex",
    "NonZeroU32",
    "NonZeroUsize",
    "Option",
    "OsStr",
    "OsString",
    "Ordering",
    "Path",
    "PathBuf",
    "Rc",
    "RefCell",
    "Reverse",
    "RwLock",
    "SocketAddr",
    "String",
    "SystemTime",
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "Vec",
    "VecDeque",
    "char",
    "f32",
    "f64",
    "i32",
    "i64",
    "str",
    "u16",
    "u32",
    "u64",
    "u8",
    "usize",
];

fn is_std_qualifier(q: &str) -> bool {
    let first = q.split("::").next().unwrap_or(q);
    let last = q.rsplit("::").next().unwrap_or(q);
    matches!(first, "std" | "alloc") || STD_QUALIFIERS.contains(&last)
}

/// Std traits whose UFCS form (`Default::default()`, `From::from(..)`)
/// can dispatch into a manual workspace impl. Qualified calls through
/// these keep the assoc-restricted fallback instead of resolving to
/// zero, even though the trait itself is declared nowhere visible.
const STD_TRAITS: &[&str] = &[
    "AsMut",
    "AsRef",
    "Borrow",
    "BorrowMut",
    "Clone",
    "Debug",
    "Default",
    "Deref",
    "DerefMut",
    "Display",
    "Eq",
    "Extend",
    "From",
    "FromIterator",
    "FromStr",
    "Hash",
    "Into",
    "IntoIterator",
    "Iterator",
    "Ord",
    "PartialEq",
    "PartialOrd",
    "Read",
    "ToOwned",
    "ToString",
    "TryFrom",
    "TryInto",
    "Write",
];

/// Whether a path segment is type-shaped by Rust naming convention
/// (UpperCamelCase initial). Like the rest of the std-only engine this
/// leans on convention; a lowercase-named type would fall through to
/// the conservative any-name fallback, which is the sound direction.
fn type_shaped(seg: &str) -> bool {
    seg.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// The resolution rungs, in ladder order. Every call site is attributed
/// to exactly one (the rung that decided its candidate set).
pub const RUNGS: &[&str] = &[
    "self_method",
    "self_type",
    "module_local",
    "import",
    "import_foreign",
    "type_qualified",
    "module_qualified",
    "glob",
    "std_foreign",
    "assoc_fallback",
    "type_unknown",
    "fallback",
    "method_fallback",
];

/// Per-build resolution telemetry: how precise the ladder was on this
/// workspace. Serialized into the graph JSON (`resolution` section) and
/// summarized by `--stats`; the precision acceptance test asserts
/// `fallback_edges` shrinks when the import rungs are enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolutionStats {
    /// Total call sites resolved.
    pub calls: usize,
    /// Call sites decided per rung (all [`RUNGS`] keys present).
    pub per_rung: BTreeMap<&'static str, usize>,
    /// Distinct edges inserted by the free/path any-name fallback.
    pub fallback_edges: usize,
    /// Distinct edges inserted by the opaque-method fallback.
    pub method_fallback_edges: usize,
    /// The any-name fallback edges themselves, as sorted
    /// `caller → callee` qname pairs. Pinned by a golden test so new
    /// code cannot silently lean on the imprecise rung; serialized into
    /// `callgraph.json` and printed by `--stats` (the opaque-method
    /// list is elided — thousands of entries, same information as the
    /// count).
    pub fallback_pairs: Vec<(String, String)>,
}

impl ResolutionStats {
    fn new() -> ResolutionStats {
        let mut s = ResolutionStats::default();
        for r in RUNGS {
            s.per_rung.insert(r, 0);
        }
        s
    }

    fn bump(&mut self, rung: &'static str) {
        self.calls += 1;
        *self.per_rung.entry(rung).or_insert(0) += 1;
    }

    /// Renders the stats as a single-line JSON object, shared between
    /// the graph JSON's `resolution` section and the lint report (so CI
    /// can diff the two for free).
    pub fn to_json_obj(&self) -> String {
        let rungs = RUNGS
            .iter()
            .map(|r| format!("\"{r}\": {}", self.per_rung.get(r).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"calls\": {}, \"fallback_edges\": {}, \
             \"method_fallback_edges\": {}, \"rungs\": {{{rungs}}}}}",
            self.calls, self.fallback_edges, self.method_fallback_edges
        )
    }

    /// The pinned fallback-edge list as a JSON array of
    /// `{"from": .., "to": ..}` objects (sorted; see
    /// [`Self::fallback_pairs`]). Emitted into `callgraph.json` only —
    /// the lint report keeps the compact counts-only `resolution`.
    pub fn fallback_pairs_json(&self) -> String {
        let items = self
            .fallback_pairs
            .iter()
            .map(|(a, b)| format!("    {{\"from\": \"{}\", \"to\": \"{}\"}}", esc(a), esc(b)))
            .collect::<Vec<_>>()
            .join(",\n");
        if items.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{items}\n  ]")
        }
    }
}

/// A normalized `use` target: either a path into the workspace
/// (segments rebased onto qname space: `crate::deps` in crate `spec`
/// becomes `["spec", "deps"]`) or a foreign (std / external) path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ImportTarget {
    Workspace(Vec<String>),
    Foreign,
}

/// Rebases an import path onto qname space. `crate::` roots at the
/// caller's crate, `self::`/`super::` walk the module path, and
/// `specweb_x::` maps to workspace crate `x` (the package-name idiom
/// for cross-crate deps). Anything else is foreign.
fn normalize_import(
    path: &[String],
    module: &str,
    workspace_crates: &BTreeSet<&str>,
) -> ImportTarget {
    let Some(first) = path.first() else {
        return ImportTarget::Foreign;
    };
    let mut segs: Vec<String> = match first.as_str() {
        "crate" => vec![crate_of(module).to_string()],
        "self" => module.split("::").map(str::to_string).collect(),
        "super" => {
            let mut parts: Vec<String> = module.split("::").map(str::to_string).collect();
            parts.pop();
            parts
        }
        w => {
            if let Some(stripped) = w.strip_prefix("specweb_") {
                if workspace_crates.contains(stripped) {
                    vec![stripped.to_string()]
                } else {
                    return ImportTarget::Foreign;
                }
            } else if w == "specweb" && workspace_crates.contains("specweb") {
                vec![w.to_string()]
            } else {
                return ImportTarget::Foreign;
            }
        }
    };
    for s in &path[1..] {
        if s == "super" {
            segs.pop();
        } else {
            segs.push(s.clone());
        }
    }
    ImportTarget::Workspace(segs)
}

/// One resolved function node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Module path (no type/fn segments).
    pub module: String,
    /// Simple name.
    pub name: String,
    /// Enclosing impl/trait type, when any.
    pub self_type: Option<String>,
    /// True when the signature takes `&mut` (locally-mutating).
    pub sig_mut: bool,
    /// Resolved callees (qnames).
    pub calls: BTreeSet<String>,
    /// Callees resolved from call sites inside a `core::par` worker
    /// closure (always a subset of `calls`), with the first such call
    /// line — G5's edge set.
    pub par_calls: BTreeMap<String, usize>,
    /// Nondeterminism / hazard sources, deduped by (line, kind).
    pub sources: Vec<SourceSite>,
    /// Direct effect sites (IO / globals), deduped by (line, kind).
    pub effects: Vec<EffectSite>,
    /// Raw index expressions (recorded, not enforced).
    pub index_sites: usize,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
    /// Parameter names in declaration order (`self` excluded).
    pub params: Vec<String>,
    /// Dataflow binding edges (`let` / `for` / assignment).
    pub binds: Vec<FlowBind>,
    /// Unchecked integer arithmetic sites (W1).
    pub arith: Vec<ArithSite>,
    /// `as`-casts to primitive numeric types (W2).
    pub casts: Vec<CastSite>,
    /// Capacity allocations (W3).
    pub caps: Vec<CapacitySite>,
    /// `checked_*` / `saturating_*` call sites.
    pub checked_sites: usize,
    /// Identifiers that may flow into the return value.
    pub ret_idents: BTreeSet<String>,
    /// Identifiers with a visible dominating bound.
    pub bounded: BTreeSet<String>,
    /// Call sites with their *precisely* resolved callees, for width
    /// propagation. Only edges decided by a precise rung appear in
    /// `callees` — propagating scale taint through the any-name /
    /// opaque-method fallbacks (thousands of edges) would taint the
    /// whole graph, so the width engine deliberately trades that
    /// soundness margin for precision (DESIGN §14).
    pub call_sites: Vec<ResolvedCall>,
}

/// One call site with its precise-rung callee set (see
/// [`Node::call_sites`]).
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    /// Callee as written (method or final path segment).
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Identifier roots per argument position.
    pub args: Vec<Vec<String>>,
    /// Precisely resolved callee qnames (empty for fallback-decided or
    /// foreign calls).
    pub callees: BTreeSet<String>,
}

/// Rungs whose candidate sets are trusted for width propagation: the
/// caller demonstrably names this callee (receiver type, import, module
/// path, or glob scope) rather than matching on a bare name.
const PRECISE_RUNGS: &[&str] = &[
    "self_method",
    "self_type",
    "module_local",
    "import",
    "type_qualified",
    "module_qualified",
    "glob",
];

/// Per-module import scope, indexed for the resolver.
struct ImportScopes {
    /// (module, alias) → normalized targets (unioned over cfg twins /
    /// duplicate imports — the sound direction).
    named: BTreeMap<(String, String), BTreeSet<ImportTarget>>,
    /// module → workspace glob-target scopes.
    globs: BTreeMap<String, BTreeSet<Vec<String>>>,
}

impl ImportScopes {
    fn build(files: &[FileExtract], workspace_crates: &BTreeSet<&str>) -> ImportScopes {
        let mut named: BTreeMap<(String, String), BTreeSet<ImportTarget>> = BTreeMap::new();
        let mut globs: BTreeMap<String, BTreeSet<Vec<String>>> = BTreeMap::new();
        for fx in files {
            for u in &fx.imports {
                let target = normalize_import(&u.path, &u.module, workspace_crates);
                if u.glob {
                    // Foreign globs add no workspace candidates and
                    // must not short-circuit anything: drop them.
                    if let ImportTarget::Workspace(segs) = target {
                        globs.entry(u.module.clone()).or_default().insert(segs);
                    }
                } else {
                    named
                        .entry((u.module.clone(), u.alias.clone()))
                        .or_default()
                        .insert(target);
                }
            }
        }
        ImportScopes { named, globs }
    }
}

/// What an import-scope lookup decided.
enum ImportHit<'a> {
    /// The alias is imported and yields these candidates (possibly
    /// empty-but-confident: the target scope is fully visible).
    Resolved(Vec<&'a str>),
    /// The alias is imported, every target is foreign: zero candidates.
    Foreign,
    /// The alias is imported but the target scope is not one the
    /// extractor can enumerate (e.g. a type with out-of-module impls):
    /// keep climbing the ladder.
    Inconclusive,
    /// No such import in this module's scope.
    None,
}

/// The resolved workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// qname → node. BTreeMap so every traversal and the JSON dump are
    /// order-deterministic.
    pub nodes: BTreeMap<String, Node>,
    /// Union of every file's float-declared names (see
    /// [`FileExtract::float_names`]) — the width engine's type oracle.
    pub float_names: BTreeSet<String>,
}

impl CallGraph {
    /// Builds the graph from per-file extraction results, with
    /// permissive (no) crate-dependency pruning.
    pub fn build(files: &[FileExtract]) -> CallGraph {
        CallGraph::build_with_deps(files, &CrateDeps::permissive())
    }

    /// Builds the graph, pruning candidate edges that contradict the
    /// crate-dependency DAG (see [`CrateDeps`]).
    pub fn build_with_deps(files: &[FileExtract], deps: &CrateDeps) -> CallGraph {
        CallGraph::build_with_opts(files, deps, true).0
    }

    /// Full build: `use_imports` toggles every precision rung this
    /// engine added over the v1 name-matching resolver — the import,
    /// glob, assoc-restriction and type-unknown rungs — so the
    /// precision test can measure the fallback shrink they buy on the
    /// same workspace.
    pub fn build_with_opts(
        files: &[FileExtract],
        deps: &CrateDeps,
        use_imports: bool,
    ) -> (CallGraph, ResolutionStats) {
        // Index pass.
        let mut by_name: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut by_type_name: BTreeMap<(&str, &str), Vec<&str>> = BTreeMap::new();
        let mut by_module_name: BTreeMap<(&str, &str), Vec<&str>> = BTreeMap::new();
        // Full scope prefix (module + type/fn segments) → fns directly
        // inside it; the lookup space for import targets.
        let mut by_scope_name: BTreeMap<(&str, &str), Vec<&str>> = BTreeMap::new();
        let mut modules: BTreeSet<&str> = BTreeSet::new();
        for fx in files {
            for f in &fx.fns {
                by_name.entry(&f.name).or_default().push(&f.qname);
                if let Some(t) = &f.self_type {
                    by_type_name
                        .entry((t.as_str(), f.name.as_str()))
                        .or_default()
                        .push(&f.qname);
                }
                by_module_name
                    .entry((f.module.as_str(), f.name.as_str()))
                    .or_default()
                    .push(&f.qname);
                if let Some((prefix, name)) = f.qname.rsplit_once("::") {
                    by_scope_name
                        .entry((prefix, name))
                        .or_default()
                        .push(&f.qname);
                }
                modules.insert(&f.module);
            }
        }
        let known_types: BTreeSet<&str> = files
            .iter()
            .flat_map(|fx| fx.impl_types.iter().map(String::as_str))
            .collect();
        // Every type name *visible* to the engine: impl'd, trait-decl'd,
        // or struct/enum-decl'd. A type-shaped qualifier matching none
        // of these (macro-generated id types, unlisted foreign types)
        // provably has no associated fns in visible source, so `T::f`
        // through it resolves to zero workspace candidates.
        let declared_types: BTreeSet<&str> = known_types
            .iter()
            .copied()
            .chain(
                files
                    .iter()
                    .flat_map(|fx| fx.decl_types.iter().map(String::as_str)),
            )
            .collect();
        // `T::f` can only resolve to an associated item of *some* type,
        // so the tight fallback for type-shaped qualifiers is the assoc
        // fns named `f` — never free fns.
        let mut assoc_by_name: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for fx in files {
            for f in &fx.fns {
                if f.self_type.is_some() {
                    assoc_by_name.entry(&f.name).or_default().push(&f.qname);
                }
            }
        }
        // A `recv.m(..)` call can only dispatch to a fn with a `self`
        // receiver; self-less associated fns (`Opts::parse()`-style
        // constructors) are excluded so e.g. a std `.parse()` cannot
        // fallback-edge into them.
        let method_qnames: BTreeSet<&str> = files
            .iter()
            .flat_map(|fx| fx.fns.iter())
            .filter(|f| f.self_type.is_some() && f.has_self)
            .map(|f| f.qname.as_str())
            .collect();
        let workspace_crates: BTreeSet<&str> = modules.iter().map(|m| crate_of(m)).collect();
        let scopes = ImportScopes::build(files, &workspace_crates);

        // Looks up `prefix::name` fns through a named-import binding.
        let import_lookup = |module: &str, alias: &str, rest: &[&str], call_name: Option<&str>| {
            if !use_imports {
                return ImportHit::None;
            }
            let Some(targets) = scopes.named.get(&(module.to_string(), alias.to_string())) else {
                return ImportHit::None;
            };
            let mut cands: Vec<&str> = Vec::new();
            let mut all_foreign = true;
            let mut confident = true;
            for t in targets {
                let ImportTarget::Workspace(segs) = t else {
                    continue;
                };
                all_foreign = false;
                // Qualified call: the target extends with the rest of
                // the written path and the call name. Unqualified call:
                // the target itself names the fn (its last segment is
                // the original name behind any `as`-rename).
                let (prefix, name) = match call_name {
                    Some(n) => {
                        let mut p = segs.clone();
                        p.extend(rest.iter().map(|s| s.to_string()));
                        (p.join("::"), n.to_string())
                    }
                    None => {
                        let Some((last, init)) = segs.split_last() else {
                            continue;
                        };
                        (init.join("::"), last.clone())
                    }
                };
                if let Some(v) = by_scope_name.get(&(prefix.as_str(), name.as_str())) {
                    cands.extend(v.iter().copied());
                } else if !modules.contains(prefix.as_str()) {
                    // The prefix is a type (or unknown scope): impls
                    // may live in sibling modules, so an empty lookup
                    // here is not proof of absence.
                    confident = false;
                }
            }
            if !cands.is_empty() {
                ImportHit::Resolved(cands)
            } else if all_foreign {
                ImportHit::Foreign
            } else if confident {
                ImportHit::Resolved(Vec::new())
            } else {
                ImportHit::Inconclusive
            }
        };

        // Glob-rung lookup: candidates for `q_segs::name` through any
        // glob-imported scope of `module`.
        let glob_lookup = |module: &str, q_segs: &[&str], name: &str| -> Vec<&str> {
            if !use_imports {
                return Vec::new();
            }
            let Some(targets) = scopes.globs.get(module) else {
                return Vec::new();
            };
            let mut cands: Vec<&str> = Vec::new();
            for segs in targets {
                let mut p = segs.clone();
                p.extend(q_segs.iter().map(|s| s.to_string()));
                if let Some(v) = by_scope_name.get(&(p.join("::").as_str(), name)) {
                    cands.extend(v.iter().copied());
                }
            }
            cands
        };

        let mut stats = ResolutionStats::new();
        let mut nodes: BTreeMap<String, Node> = BTreeMap::new();
        for fx in files {
            for f in &fx.fns {
                let mut calls: BTreeSet<String> = BTreeSet::new();
                let mut par_calls: BTreeMap<String, usize> = BTreeMap::new();
                let mut call_sites: Vec<ResolvedCall> = Vec::new();
                for c in &f.calls {
                    let (cands, rung): (Vec<&str>, &'static str) = if c.is_method {
                        let self_hit = if c.on_self {
                            f.self_type
                                .as_ref()
                                .and_then(|t| by_type_name.get(&(t.as_str(), c.name.as_str())))
                        } else {
                            None
                        };
                        match self_hit {
                            Some(v) => (v.clone(), "self_method"),
                            // Opaque receiver — or a self-method the
                            // enclosing type does not define (blanket
                            // trait impl, deref): every *method* named
                            // `m` (free fns can't be method targets).
                            None => (
                                by_name
                                    .get(c.name.as_str())
                                    .map(|v| {
                                        v.iter()
                                            .filter(|q| method_qnames.contains(*q))
                                            .copied()
                                            .collect::<Vec<_>>()
                                    })
                                    .unwrap_or_default(),
                                "method_fallback",
                            ),
                        }
                    } else if !c.qualifier.is_empty() {
                        let q_segs: Vec<&str> = c.qualifier.split("::").collect();
                        let last = *q_segs.last().unwrap_or(&"");
                        // Rung 1b: `Self::f` → the enclosing type.
                        let self_hit = if c.qualifier == "Self" {
                            f.self_type
                                .as_ref()
                                .and_then(|t| by_type_name.get(&(t.as_str(), c.name.as_str())))
                        } else {
                            None
                        };
                        if let Some(v) = self_hit {
                            (v.clone(), "self_type")
                        } else if c.qualifier == "Self" {
                            // `Self::f` the enclosing type does not
                            // visibly define: a derive-generated assoc
                            // fn. It can only dispatch onward to assoc
                            // fns (a derived `default` calls the field
                            // types' `default`s), never to free fns.
                            (
                                assoc_by_name
                                    .get(c.name.as_str())
                                    .cloned()
                                    .unwrap_or_default(),
                                "assoc_fallback",
                            )
                        } else {
                            // Rung 2: named import on the first path
                            // segment.
                            match import_lookup(&f.module, q_segs[0], &q_segs[1..], Some(&c.name)) {
                                ImportHit::Resolved(v) => (v, "import"),
                                ImportHit::Foreign => (Vec::new(), "import_foreign"),
                                ImportHit::Inconclusive | ImportHit::None => {
                                    if known_types.contains(last) {
                                        // Rung 3: known impl/trait type.
                                        match by_type_name.get(&(last, c.name.as_str())) {
                                            Some(v) => (v.clone(), "type_qualified"),
                                            // The type is visible but
                                            // `f` is not: a derived
                                            // assoc fn. Assoc-restrict.
                                            None => (
                                                assoc_by_name
                                                    .get(c.name.as_str())
                                                    .cloned()
                                                    .unwrap_or_default(),
                                                "assoc_fallback",
                                            ),
                                        }
                                    } else if let Some(m) =
                                        match_module(&modules, &c.qualifier, &f.module)
                                    {
                                        // Rung 4: known module path.
                                        (
                                            by_module_name
                                                .get(&(m, c.name.as_str()))
                                                .cloned()
                                                .unwrap_or_default(),
                                            "module_qualified",
                                        )
                                    } else {
                                        // Rung 5: glob scopes.
                                        let g = glob_lookup(&f.module, &q_segs, &c.name);
                                        if !g.is_empty() {
                                            (g, "glob")
                                        } else if is_std_qualifier(&c.qualifier) {
                                            // Rung 6: std/foreign.
                                            (Vec::new(), "std_foreign")
                                        } else if type_shaped(last) {
                                            if declared_types.contains(last)
                                                || STD_TRAITS.contains(&last)
                                            {
                                                // Rung 7a: `T::f` on a
                                                // declared type or a std
                                                // trait (UFCS) — only
                                                // assoc fns can match.
                                                (
                                                    assoc_by_name
                                                        .get(c.name.as_str())
                                                        .cloned()
                                                        .unwrap_or_default(),
                                                    "assoc_fallback",
                                                )
                                            } else {
                                                // Rung 7b: a type with
                                                // no visible decl at all
                                                // (macro-generated ids,
                                                // unlisted foreign
                                                // types): no visible fn
                                                // can be its assoc item.
                                                (Vec::new(), "type_unknown")
                                            }
                                        } else {
                                            // Rung 8: any-name fallback.
                                            (
                                                by_name
                                                    .get(c.name.as_str())
                                                    .cloned()
                                                    .unwrap_or_default(),
                                                "fallback",
                                            )
                                        }
                                    }
                                }
                            }
                        }
                    } else {
                        // Unqualified free call: same module first.
                        match by_module_name.get(&(f.module.as_str(), c.name.as_str())) {
                            Some(v) => (v.clone(), "module_local"),
                            None => match import_lookup(&f.module, &c.name, &[], None) {
                                ImportHit::Resolved(v) => (v, "import"),
                                ImportHit::Foreign => (Vec::new(), "import_foreign"),
                                ImportHit::Inconclusive | ImportHit::None => {
                                    let g = glob_lookup(&f.module, &[], &c.name);
                                    if !g.is_empty() {
                                        (g, "glob")
                                    } else {
                                        (
                                            by_name
                                                .get(c.name.as_str())
                                                .cloned()
                                                .unwrap_or_default(),
                                            "fallback",
                                        )
                                    }
                                }
                            },
                        }
                    };
                    // The `use_imports == false` baseline models the v1
                    // name-matching resolver this engine replaced; the
                    // assoc-restriction rungs are part of the same
                    // upgrade, so they degrade to the any-name fallback
                    // there too — that is what the shrink criterion
                    // measures against.
                    let (cands, rung) =
                        if !use_imports && matches!(rung, "assoc_fallback" | "type_unknown") {
                            (
                                by_name.get(c.name.as_str()).cloned().unwrap_or_default(),
                                "fallback",
                            )
                        } else {
                            (cands, rung)
                        };
                    stats.bump(rung);
                    let from_crate = crate_of(&f.qname);
                    let precise = PRECISE_RUNGS.contains(&rung);
                    let mut callees: BTreeSet<String> = BTreeSet::new();
                    for q in cands {
                        if q != f.qname && deps.edge_ok(from_crate, crate_of(q)) {
                            let inserted = calls.insert(q.to_string());
                            if inserted {
                                match rung {
                                    "fallback" => {
                                        stats.fallback_edges += 1;
                                        stats.fallback_pairs.push((f.qname.clone(), q.to_string()));
                                    }
                                    "method_fallback" => stats.method_fallback_edges += 1,
                                    _ => {}
                                }
                            }
                            if c.in_par {
                                par_calls.entry(q.to_string()).or_insert(c.line);
                            }
                            if precise {
                                callees.insert(q.to_string());
                            }
                        }
                    }
                    call_sites.push(ResolvedCall {
                        name: c.name.clone(),
                        line: c.line,
                        args: c.args.clone(),
                        callees,
                    });
                }

                // Dedup sources by (line, kind) — `SystemTime::now()`
                // trips both the ident and the call-path pattern.
                let mut seen: BTreeSet<(usize, SourceKind)> = BTreeSet::new();
                let sources: Vec<SourceSite> = f
                    .sources
                    .iter()
                    .filter(|s| seen.insert((s.line, s.kind)))
                    .cloned()
                    .collect();
                let mut eff_seen: BTreeSet<(usize, crate::extract::EffectKind)> = BTreeSet::new();
                let effects: Vec<EffectSite> = f
                    .effects
                    .iter()
                    .filter(|e| eff_seen.insert((e.line, e.kind)))
                    .cloned()
                    .collect();

                let node = Node {
                    file: fx.rel.clone(),
                    line: f.line,
                    module: f.module.clone(),
                    name: f.name.clone(),
                    self_type: f.self_type.clone(),
                    sig_mut: f.sig_mut,
                    calls,
                    par_calls,
                    sources,
                    effects,
                    index_sites: f.index_sites,
                    locks: f.locks.clone(),
                    params: f.params.clone(),
                    binds: f.binds.clone(),
                    arith: f.arith.clone(),
                    casts: f.casts.clone(),
                    caps: f.caps.clone(),
                    checked_sites: f.checked_sites,
                    ret_idents: f.ret_idents.clone(),
                    bounded: f.bounded.clone(),
                    call_sites,
                };
                match nodes.entry(f.qname.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(node);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        // Same qname twice (e.g. cfg-gated twins):
                        // merge conservatively.
                        let n = e.get_mut();
                        n.calls.extend(node.calls);
                        for (q, l) in node.par_calls {
                            n.par_calls.entry(q).or_insert(l);
                        }
                        n.sources.extend(node.sources);
                        n.effects.extend(node.effects);
                        n.sig_mut |= node.sig_mut;
                        n.index_sites += node.index_sites;
                        n.locks.extend(node.locks);
                        // Width data merges additively (extra sites and
                        // flows are the sound direction); the twin with
                        // more parameters wins the positional map.
                        if node.params.len() > n.params.len() {
                            n.params = node.params;
                        }
                        n.binds.extend(node.binds);
                        n.arith.extend(node.arith);
                        n.casts.extend(node.casts);
                        n.caps.extend(node.caps);
                        n.checked_sites += node.checked_sites;
                        n.ret_idents.extend(node.ret_idents);
                        n.bounded.extend(node.bounded);
                        n.call_sites.extend(node.call_sites);
                    }
                }
            }
        }
        stats.fallback_pairs.sort();
        stats.fallback_pairs.dedup();
        let mut float_names = BTreeSet::new();
        for fx in files {
            float_names.extend(fx.float_names.iter().cloned());
        }
        (CallGraph { nodes, float_names }, stats)
    }

    /// Serializes the graph as stable, key-sorted JSON (schema
    /// `specweb-callgraph/v2`). Byte-identical for identical inputs —
    /// the golden test diffs this across `--jobs` counts.
    pub fn to_json(
        &self,
        roots: &[String],
        hot_roots: &[String],
        stats: &ResolutionStats,
    ) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"specweb-callgraph/v2\",\n");
        s.push_str(&format!("  \"fn_count\": {},\n", self.nodes.len()));
        let edge_count: usize = self.nodes.values().map(|n| n.calls.len()).sum();
        s.push_str(&format!("  \"edge_count\": {edge_count},\n"));
        s.push_str(&format!("  \"resolution\": {},\n", stats.to_json_obj()));
        s.push_str(&format!(
            "  \"fallback_pairs\": {},\n",
            stats.fallback_pairs_json()
        ));
        s.push_str("  \"roots\": [");
        s.push_str(
            &roots
                .iter()
                .map(|r| format!("\"{}\"", esc(r)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("],\n  \"hot_roots\": [");
        s.push_str(
            &hot_roots
                .iter()
                .map(|r| format!("\"{}\"", esc(r)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("],\n  \"nodes\": {\n");
        let mut first = true;
        for (q, n) in &self.nodes {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!("    \"{}\": {{", esc(q)));
            s.push_str(&format!("\"file\": \"{}\", ", esc(&n.file)));
            s.push_str(&format!("\"line\": {}, ", n.line));
            s.push_str(&format!("\"sig_mut\": {}, ", n.sig_mut));
            s.push_str("\"calls\": [");
            s.push_str(
                &n.calls
                    .iter()
                    .map(|c| format!("\"{}\"", esc(c)))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push_str("], \"par_calls\": {");
            s.push_str(
                &n.par_calls
                    .iter()
                    .map(|(c, l)| format!("\"{}\": {l}", esc(c)))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push_str("}, \"sources\": [");
            s.push_str(
                &n.sources
                    .iter()
                    .map(|src| {
                        format!(
                            "{{\"kind\": \"{}\", \"line\": {}, \"what\": \"{}\"}}",
                            src.kind.id(),
                            src.line,
                            esc(&src.what)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push_str("], \"effects\": [");
            s.push_str(
                &n.effects
                    .iter()
                    .map(|e| {
                        format!(
                            "{{\"kind\": \"{}\", \"line\": {}, \"what\": \"{}\", \"in_par\": {}}}",
                            e.kind.id(),
                            e.line,
                            esc(&e.what),
                            e.in_par
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push_str("], \"locks\": [");
            s.push_str(
                &n.locks
                    .iter()
                    .map(|l| {
                        format!(
                            "{{\"name\": \"{}\", \"line\": {}, \"held\": {}}}",
                            esc(&l.name),
                            l.line,
                            l.held
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push_str(&format!("], \"index_sites\": {}}}", n.index_sites));
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

/// Matches a call-site qualifier against the known module set:
/// an exact module path, a suffix of one (`deps::helper(..)` inside
/// `spec` matches `spec::deps`), or a `crate::`- / `specweb_*::`-
/// prefixed path rebased onto qname space.
fn match_module<'m>(
    modules: &BTreeSet<&'m str>,
    qualifier: &str,
    caller_module: &str,
) -> Option<&'m str> {
    let krate = caller_module.split("::").next().unwrap_or(caller_module);
    let q = if let Some(rest) = qualifier.strip_prefix("crate::") {
        Some(format!("{krate}::{rest}"))
    } else {
        // `specweb_core::par::…` → `core::par::…` (package-name idiom).
        qualifier.split_once("::").and_then(|(first, rest)| {
            first
                .strip_prefix("specweb_")
                .map(|c| format!("{c}::{rest}"))
        })
    };
    let q = q.as_deref().unwrap_or(qualifier);
    if qualifier == "crate" {
        return modules.get(krate).copied();
    }
    if let Some(m) = modules.get(q) {
        return Some(m);
    }
    // Suffix match: prefer the caller's own crate on ties.
    let mut hits: Vec<&str> = modules
        .iter()
        .filter(|m| m.ends_with(&format!("::{q}")))
        .copied()
        .collect();
    if hits.len() > 1 {
        if let Some(own) = hits
            .iter()
            .find(|m| m.split("::").next() == Some(krate))
            .copied()
        {
            return Some(own);
        }
    }
    hits.pop()
}

/// Minimal JSON string escape.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::lexer::sanitize;

    fn extracts(files: &[(&str, &str)]) -> Vec<FileExtract> {
        files
            .iter()
            .map(|(rel, src)| {
                let lines = sanitize(src);
                let skip = vec![false; lines.len()];
                extract(rel, &lines, &skip)
            })
            .collect()
    }

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(&extracts(files))
    }

    fn graph_stats(files: &[(&str, &str)]) -> (CallGraph, ResolutionStats) {
        CallGraph::build_with_opts(&extracts(files), &CrateDeps::permissive(), true)
    }

    #[test]
    fn cross_module_path_calls_resolve() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper::go(); }"),
            ("crates/a/src/helper.rs", "pub fn go() {}"),
        ]);
        let entry = &g.nodes["a::entry"];
        assert!(entry.calls.contains("a::helper::go"), "{entry:#?}");
    }

    #[test]
    fn self_calls_resolve_to_the_impl() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
struct T;
impl T {
    fn outer(&self) { self.inner(); }
    fn inner(&self) {}
}
struct U;
impl U {
    fn inner(&self) {}
}
",
        )]);
        let outer = &g.nodes["a::T::outer"];
        assert_eq!(
            outer.calls.iter().collect::<Vec<_>>(),
            ["a::T::inner"],
            "self.inner() must not edge to U::inner"
        );
    }

    #[test]
    fn self_qualified_calls_resolve_to_the_enclosing_type() {
        let (g, stats) = graph_stats(&[(
            "crates/a/src/lib.rs",
            "
struct T;
impl T {
    fn outer() { Self::helper(); }
    fn helper() {}
}
struct U;
impl U {
    fn helper() {}
}
",
        )]);
        let outer = &g.nodes["a::T::outer"];
        assert_eq!(
            outer.calls.iter().collect::<Vec<_>>(),
            ["a::T::helper"],
            "Self::helper() must not leak into the any-name set"
        );
        assert_eq!(stats.per_rung["self_type"], 1);
        assert_eq!(stats.per_rung["fallback"], 0);
    }

    #[test]
    fn self_method_misses_stay_methods_only() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
struct T;
impl T { fn run(&self) { self.visit(); } }
struct U;
impl U { fn visit(&self) {} }
fn visit() {}
",
        )]);
        let run = &g.nodes["a::T::run"];
        assert!(run.calls.contains("a::U::visit"), "{run:#?}");
        assert!(
            !run.calls.contains("a::visit"),
            "a free fn can never be a method target: {run:#?}"
        );
    }

    #[test]
    fn opaque_method_calls_fall_back_to_all_same_named_methods() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
struct T;
impl T { fn step(&self) {} }
struct U;
impl U { fn step(&self) {} }
fn drive(x: &T) { x.step(); }
",
        )]);
        let drive = &g.nodes["a::drive"];
        assert!(drive.calls.contains("a::T::step"));
        assert!(
            drive.calls.contains("a::U::step"),
            "conservative fallback keeps both"
        );
    }

    #[test]
    fn type_qualified_calls_resolve_to_the_type() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
struct T;
impl T { fn new() -> T { T } }
fn make() -> T { T::new() }
",
        )]);
        let make = &g.nodes["a::make"];
        assert_eq!(make.calls.iter().collect::<Vec<_>>(), ["a::T::new"]);
    }

    #[test]
    fn named_imports_resolve_unqualified_calls() {
        let (g, stats) = graph_stats(&[
            (
                "crates/a/src/lib.rs",
                "
use crate::util::helper;
pub fn entry() { helper(); }
pub mod util { pub fn helper() {} }
",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let entry = &g.nodes["a::entry"];
        assert_eq!(
            entry.calls.iter().collect::<Vec<_>>(),
            ["a::util::helper"],
            "the import pins the origin; b::helper is not a candidate"
        );
        assert_eq!(stats.per_rung["import"], 1);
        assert_eq!(stats.fallback_edges, 0);
    }

    #[test]
    fn as_renamed_imports_follow_the_original_name() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
use crate::util::helper as h;
pub fn entry() { h(); }
pub mod util { pub fn helper() {} }
",
        )]);
        let entry = &g.nodes["a::entry"];
        // v1 resolved `h()` to *nothing* (a missed edge — the unsound
        // direction); the import rung recovers the real target.
        assert_eq!(entry.calls.iter().collect::<Vec<_>>(), ["a::util::helper"]);
    }

    #[test]
    fn foreign_imports_shortcircuit_to_zero() {
        let (g, stats) = graph_stats(&[(
            "crates/a/src/lib.rs",
            "
use std::mem::replace;
pub fn entry() { replace(a, b); }
pub fn replace() {}
pub mod inner { pub fn replace() {} }
",
        )]);
        // `replace` IS module-local here, so module_local wins; move
        // the import into a submodule scope to test the foreign rung.
        assert!(g.nodes["a::entry"].calls.contains("a::replace"));
        assert_eq!(stats.per_rung["module_local"], 1);

        let (g2, stats2) = graph_stats(&[(
            "crates/a/src/lib.rs",
            "
pub mod worker {
    use std::mem::replace;
    pub fn entry() { replace(a, b); }
}
pub fn replace() {}
",
        )]);
        assert!(
            g2.nodes["a::worker::entry"].calls.is_empty(),
            "std::mem::replace never reenters the workspace: {:#?}",
            g2.nodes["a::worker::entry"]
        );
        assert_eq!(stats2.per_rung["import_foreign"], 1);
        assert_eq!(stats2.fallback_edges, 0);
    }

    #[test]
    fn qualified_calls_resolve_through_module_imports() {
        let (g, stats) = graph_stats(&[
            (
                "crates/a/src/lib.rs",
                "
use specweb_b::util;
pub fn entry() { util::go(); }
",
            ),
            ("crates/b/src/util.rs", "pub fn go() {}"),
            ("crates/c/src/util.rs", "pub fn go() {}"),
        ]);
        let entry = &g.nodes["a::entry"];
        assert_eq!(
            entry.calls.iter().collect::<Vec<_>>(),
            ["b::util::go"],
            "the import disambiguates which util module is meant"
        );
        assert_eq!(stats.per_rung["import"], 1);
    }

    #[test]
    fn type_imports_resolve_assoc_calls_to_the_right_module() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "
use specweb_b::ids::ClientId;
pub fn entry() { ClientId::from(3); }
",
            ),
            (
                "crates/b/src/ids.rs",
                "pub struct ClientId; impl ClientId { pub fn from(x: usize) -> ClientId { ClientId } }",
            ),
            (
                "crates/c/src/lib.rs",
                "pub struct Wrap; impl Wrap { pub fn from(x: usize) -> Wrap { Wrap } }",
            ),
        ]);
        let entry = &g.nodes["a::entry"];
        assert_eq!(
            entry.calls.iter().collect::<Vec<_>>(),
            ["b::ids::ClientId::from"],
            "no conservative chain through every `from` in the workspace"
        );
    }

    #[test]
    fn glob_imports_resolve_when_the_scope_defines_the_name() {
        let (g, stats) = graph_stats(&[
            (
                "crates/a/src/lib.rs",
                "
use specweb_b::util::*;
pub fn entry() { go(); }
",
            ),
            ("crates/b/src/util.rs", "pub fn go() {}"),
            ("crates/c/src/lib.rs", "pub fn go() {}"),
        ]);
        let entry = &g.nodes["a::entry"];
        assert_eq!(
            entry.calls.iter().collect::<Vec<_>>(),
            ["b::util::go"],
            "the glob scope defines `go`, so c::go is not a candidate"
        );
        assert_eq!(stats.per_rung["glob"], 1);
    }

    #[test]
    fn unknown_names_still_fall_back_conservatively() {
        let (g, stats) = graph_stats(&[
            ("crates/a/src/lib.rs", "pub fn entry() { mystery(); }"),
            ("crates/b/src/lib.rs", "pub fn mystery() {}"),
        ]);
        let entry = &g.nodes["a::entry"];
        assert!(entry.calls.contains("b::mystery"));
        assert_eq!(stats.per_rung["fallback"], 1);
        assert_eq!(stats.fallback_edges, 1);
    }

    #[test]
    fn imports_off_reinflates_the_fallback() {
        let files = extracts(&[
            (
                "crates/a/src/lib.rs",
                "
use crate::util::helper;
pub fn entry() { helper(); }
pub mod util { pub fn helper() {} }
",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let (_, on) = CallGraph::build_with_opts(&files, &CrateDeps::permissive(), true);
        let (g_off, off) = CallGraph::build_with_opts(&files, &CrateDeps::permissive(), false);
        assert_eq!(on.fallback_edges, 0);
        assert_eq!(off.fallback_edges, 2);
        assert!(g_off.nodes["a::entry"].calls.contains("b::helper"));
    }

    #[test]
    fn json_is_stable_under_input_permutation() {
        let files = [
            ("crates/a/src/lib.rs", "pub fn f() { g(); }\npub fn g() {}"),
            ("crates/b/src/lib.rs", "pub fn h() {}"),
        ];
        let mut rev = files;
        rev.reverse();
        let (ga, sa) = graph_stats(&files);
        let (gb, sb) = graph_stats(&rev);
        let a = ga.to_json(&[], &[], &sa);
        let b = gb.to_json(&[], &[], &sb);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"specweb-callgraph/v2\""));
        assert!(a.contains("\"resolution\""));
    }

    #[test]
    fn self_edges_are_dropped() {
        let g = graph(&[("crates/a/src/lib.rs", "pub fn rec(n: u32) { rec(n); }")]);
        assert!(g.nodes["a::rec"].calls.is_empty());
    }

    #[test]
    fn par_closure_calls_are_tracked() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
pub fn drive(pool: &Pool) { pool.map_indexed(&xs, |_, x| work(x)); finish(); }
pub fn work(x: u32) -> u32 { x }
pub fn finish() {}
",
        )]);
        let drive = &g.nodes["a::drive"];
        assert!(drive.calls.contains("a::work"));
        assert!(drive.calls.contains("a::finish"));
        assert_eq!(
            drive.par_calls.keys().collect::<Vec<_>>(),
            ["a::work"],
            "{drive:#?}"
        );
    }
}
