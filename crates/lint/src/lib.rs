//! `specweb-lint` — a std-only static-analysis pass that mechanically
//! enforces the workspace's determinism & safety contract.
//!
//! # Why this exists
//!
//! The paper's evaluation rests on trace-driven simulation being
//! exactly repeatable, and `DESIGN.md` §6a promises byte-identical
//! output for any `--jobs` count. Two earlier PRs each shipped a fix
//! for a latent nondeterminism bug found only after it corrupted
//! results (a `partial_cmp` NaN sort; `HashMap` iteration order
//! breaking closure-truncation ties). Those invariants only hold when
//! checked mechanically — so this crate walks every workspace `.rs`
//! file and enforces the rules in [`rules::RULES`].
//!
//! # How it works
//!
//! The vendored-deps constraint rules out `syn`, so the pass is a small
//! hand-rolled lexer ([`lexer`]) that strips comments and blanks
//! literal bodies, plus a line-oriented rule engine over the sanitized
//! code. Violations are suppressible in place with
//! `// lint:allow(<rule>): <reason>` — the reason is mandatory, and an
//! allow that stops matching anything is reported so suppressions
//! cannot silently outlive the code they excused.
//!
//! Run it as `cargo run -p specweb-lint`; the `workspace_clean`
//! integration test runs the same engine so `cargo test` gates it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Classification of a `.rs` file, driving which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule applies.
    Lib,
    /// Binary / example targets: D4 (unseeded RNG) and S2 (unwrap) are
    /// relaxed — a CLI may seed from entropy and panic on bad input.
    Bin,
    /// Integration tests and benches: exempt. Tests legitimately use
    /// wall clocks, unwrap, and ad-hoc threads; golden tests are what
    /// *detect* nondeterminism rather than what must avoid it.
    Test,
}

/// One confirmed violation.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, or `"allow"` for suppression-syntax errors.
    pub rule: String,
    /// Explanation.
    pub message: String,
    /// Trimmed source line for context.
    pub snippet: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    > {}",
            self.file, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// Outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Hard violations (nonzero exit).
    pub violations: Vec<Diag>,
    /// Warnings: suppressions that no longer match any hit. Promoted to
    /// violations under `--deny-all`.
    pub unused_allows: Vec<Diag>,
    /// `(rule, file, line)` for every suppressed hit.
    pub allowed: Vec<(String, String, usize)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Fold another file's report into this one.
    fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
        self.unused_allows.extend(other.unused_allows);
        self.allowed.extend(other.allowed);
        self.files_scanned += other.files_scanned;
    }

    /// Per-rule `(violations, allowed)` counts, sorted by rule id.
    pub fn per_rule(&self) -> BTreeMap<String, (usize, usize)> {
        let mut m: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for r in rules::RULES {
            m.insert(r.id.to_string(), (0, 0));
        }
        for d in &self.violations {
            m.entry(d.rule.clone()).or_insert((0, 0)).0 += 1;
        }
        for (rule, _, _) in &self.allowed {
            m.entry(rule.clone()).or_insert((0, 0)).1 += 1;
        }
        m
    }

    /// Render the JSON summary written by `--stats`. Hand-rolled (the
    /// pass is std-only) and key-sorted, so diffs are stable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"rules\": {\n");
        let per_rule = self.per_rule();
        let total = per_rule.len();
        for (i, (rule, (viol, allowed))) in per_rule.iter().enumerate() {
            let comma = if i + 1 == total { "" } else { "," };
            out.push_str(&format!(
                "    \"{rule}\": {{ \"violations\": {viol}, \"allowed\": {allowed} }}{comma}\n"
            ));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"unused_allows\": {}\n",
            self.unused_allows.len()
        ));
        out.push_str("}\n");
        out
    }
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"tests") || parts.contains(&"benches") {
        return FileKind::Test;
    }
    if parts.contains(&"examples") || parts.contains(&"bin") {
        return FileKind::Bin;
    }
    match parts.last() {
        Some(&"main.rs") | Some(&"build.rs") => FileKind::Bin,
        _ => FileKind::Lib,
    }
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "results"];

/// Collect every `.rs` file under `root` in sorted order, skipping
/// vendored code, build output, and the lint fixtures (which are
/// deliberate violations).
pub fn collect_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            paths.push(entry.path());
        }
        paths.sort();
        for p in paths {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if SKIP_DIRS.contains(&name) || name == "fixtures" {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// A parsed `lint:allow` marker.
#[derive(Debug)]
struct Allow {
    line: usize,
    /// The line the marker excuses: its own line when it is a trailing
    /// comment, otherwise the next line containing code (intervening
    /// comment-only lines are skipped, so a marker may sit anywhere in
    /// a multi-line justification comment).
    covers: usize,
    rules: Vec<String>,
    used: bool,
}

/// Parse a comment channel for a suppression marker.
/// Returns `Ok(None)` when absent, `Ok(Some(ids))` for a well-formed
/// marker, `Err(why)` for a malformed one.
///
/// The marker must *start* the comment (after doc-comment sigils and
/// whitespace); prose that merely mentions the syntax mid-sentence is
/// not a suppression.
fn parse_allow(comment: &str) -> Result<Option<Vec<String>>, String> {
    let trimmed = comment.trim_start_matches(|c: char| c == '/' || c == '!' || c.is_whitespace());
    let Some(rest) = trimmed.strip_prefix("lint:allow") else {
        return Ok(None);
    };
    let Some(open) = rest.strip_prefix('(') else {
        return Err("lint:allow must be written `lint:allow(<rule>): <reason>`".into());
    };
    let Some(close) = open.find(')') else {
        return Err("lint:allow is missing a closing `)`".into());
    };
    let ids: Vec<String> = open[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if ids.is_empty() {
        return Err("lint:allow names no rule".into());
    }
    for id in &ids {
        if !rules::is_known_rule(id) {
            return Err(format!("lint:allow names unknown rule `{id}`"));
        }
    }
    let after = &open[close + 1..];
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(
            "lint:allow requires a non-empty reason: `lint:allow(<rule>): <reason>`".into(),
        );
    }
    Ok(Some(ids))
}

/// Mark the `#[cfg(test)]` / `#[test]` / `#[bench]` regions of a file:
/// from the attribute through the close of the item that follows.
fn test_regions(lines: &[lexer::Line]) -> Vec<bool> {
    let mut skip = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let c = &lines[i].code;
        let is_test_attr = (c.contains("cfg(test)") && !c.contains("not(test)"))
            || c.contains("#[test]")
            || c.contains("#[bench]");
        if !is_test_attr {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut started = false;
        let mut j = i;
        while j < lines.len() {
            skip[j] = true;
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => depth -= 1,
                    ';' if !started => {
                        // `#[cfg(test)] mod tests;` / attributed item
                        // without a body: the region ends here.
                        started = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if started && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    skip
}

/// Lint one file's source text. `rel` is the workspace-relative path
/// (forward slashes); `kind` usually comes from [`classify`] but is a
/// parameter so fixture tests can exercise Lib rules on arbitrary
/// sources.
pub fn lint_source(rel: &str, kind: FileKind, src: &str) -> Report {
    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };
    if kind == FileKind::Test {
        return report;
    }
    let lines = lexer::sanitize(src);
    let skip = test_regions(&lines);
    let raw: Vec<&str> = src.lines().collect();
    let snippet = |idx: usize| raw.get(idx).map(|s| s.trim()).unwrap_or("").to_string();

    // Pass 1: collect suppressions (and flag malformed ones).
    let mut allows: Vec<Allow> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if skip[idx] {
            continue;
        }
        match parse_allow(&line.comment) {
            Ok(None) => {}
            Ok(Some(ids)) => {
                let covers = if line.code.trim().is_empty() {
                    // Comment-only line: the marker excuses the next
                    // line that carries code.
                    (idx + 1..lines.len())
                        .find(|&j| !lines[j].code.trim().is_empty())
                        .unwrap_or(idx)
                } else {
                    idx
                };
                allows.push(Allow {
                    line: idx,
                    covers,
                    rules: ids,
                    used: false,
                });
            }
            Err(why) => report.violations.push(Diag {
                file: rel.to_string(),
                line: idx + 1,
                rule: "allow".into(),
                message: why,
                snippet: snippet(idx),
            }),
        }
    }

    // Pass 2: run the rules, consuming suppressions.
    for (idx, line) in lines.iter().enumerate() {
        if skip[idx] {
            continue;
        }
        let prev_comment = if idx > 0 {
            lines[idx - 1].comment.as_str()
        } else {
            ""
        };
        for hit in rules::check_line(rel, kind, &line.code, &line.comment, prev_comment) {
            let covered = allows
                .iter_mut()
                .find(|a| a.covers == idx && a.rules.iter().any(|r| r == hit.rule));
            match covered {
                Some(a) => {
                    a.used = true;
                    report
                        .allowed
                        .push((hit.rule.to_string(), rel.to_string(), idx + 1));
                }
                None => report.violations.push(Diag {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: hit.rule.to_string(),
                    message: hit.message,
                    snippet: snippet(idx),
                }),
            }
        }
    }

    for a in allows.iter().filter(|a| !a.used) {
        report.unused_allows.push(Diag {
            file: rel.to_string(),
            line: a.line + 1,
            rule: "allow".into(),
            message: format!(
                "unused lint:allow({}) — the code it excused is gone; remove it",
                a.rules.join(",")
            ),
            snippet: snippet(a.line),
        });
    }
    report
}

/// Lint every `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        report.merge(lint_source(&rel, classify(&rel), &src));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_kinds() {
        assert_eq!(classify("crates/core/src/stats.rs"), FileKind::Lib);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("src/bin/specweb.rs"), FileKind::Bin);
        assert_eq!(classify("crates/bench/src/bin/figures.rs"), FileKind::Bin);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Bin);
        assert_eq!(
            classify("crates/serve/tests/degradation.rs"),
            FileKind::Test
        );
        assert_eq!(
            classify("crates/bench/benches/simulators.rs"),
            FileKind::Test
        );
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "\
use std::collections::HashMap;

#[cfg(test)]
mod tests {
    use std::time::Instant;
    #[test]
    fn t() {
        let _ = Instant::now();
        let m: HashMap<u32, u32> = HashMap::new();
        let _ = m.get(&1).unwrap();
    }
}
";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        // Only the top-level HashMap import is flagged.
        assert_eq!(r.violations.len(), 1, "{:#?}", r.violations);
        assert_eq!(r.violations[0].rule, "D2");
        assert_eq!(r.violations[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "S2");
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "let m = HashMap::new(); // lint:allow(D2): lookup-only side table\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert!(r.violations.is_empty(), "{:#?}", r.violations);
        assert_eq!(r.allowed.len(), 1);
        assert_eq!(r.allowed[0].0, "D2");
    }

    #[test]
    fn allow_on_preceding_line_suppresses() {
        let src = "// lint:allow(S2): invariant: key inserted two lines up\nlet v = m.get(&k).unwrap();\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert!(r.violations.is_empty(), "{:#?}", r.violations);
        assert_eq!(r.allowed.len(), 1);
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "let m = HashMap::new(); // lint:allow(D2)\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert!(r.violations.iter().any(|d| d.rule == "allow"));
        // The malformed allow does not suppress the underlying hit.
        assert!(r.violations.iter().any(|d| d.rule == "D2"));
    }

    #[test]
    fn allow_unknown_rule_is_a_violation() {
        let src = "let x = 1; // lint:allow(D9): no such rule\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert!(r.violations.iter().any(|d| d.rule == "allow"));
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "let x = 1; // lint:allow(D2): stale excuse\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert!(r.violations.is_empty());
        assert_eq!(r.unused_allows.len(), 1);
    }

    #[test]
    fn json_summary_shape() {
        let r = lint_source(
            "crates/x/src/lib.rs",
            FileKind::Lib,
            "let m = HashMap::new(); // lint:allow(D2): side table, never iterated\n",
        );
        let json = r.to_json();
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"D2\": { \"violations\": 0, \"allowed\": 1 }"));
        assert!(json.contains("\"unused_allows\": 0"));
    }
}
