//! `specweb-lint` — a std-only static-analysis pass that mechanically
//! enforces the workspace's determinism & safety contract.
//!
//! # Why this exists
//!
//! The paper's evaluation rests on trace-driven simulation being
//! exactly repeatable, and `DESIGN.md` §6a promises byte-identical
//! output for any `--jobs` count. Two earlier PRs each shipped a fix
//! for a latent nondeterminism bug found only after it corrupted
//! results (a `partial_cmp` NaN sort; `HashMap` iteration order
//! breaking closure-truncation ties). Those invariants only hold when
//! checked mechanically — so this crate walks every workspace `.rs`
//! file and enforces the rules in [`rules::RULES`].
//!
//! # The two engines
//!
//! The vendored-deps constraint rules out `syn`, so everything is built
//! on a small hand-rolled lexer ([`lexer`]) that strips comments and
//! blanks literal bodies.
//!
//! * The **line engine** runs per-line pattern rules over the sanitized
//!   code (D1 float comparators, S1 unsafe hygiene, plus — in
//!   standalone/fixture mode — the path-heuristic rules D2–D5/S2).
//! * The **graph engine** ([`extract`] → [`graph`] → [`taint`])
//!   extracts `fn` items and call sites from the same token stream,
//!   builds a whole-workspace call graph, and proves determinism
//!   *transitively*: a nondeterminism source is only a violation when
//!   it is call-reachable from a deterministic root (G1/G3), and every
//!   finding carries a root→site evidence chain. Workspace runs use
//!   this engine in place of the D2/D3/D4/D5/S2 heuristics, so e.g. a
//!   lookup-only `HashMap` no longer needs an allow. See DESIGN §9.
//!
//! Violations from either engine are suppressible in place with
//! `// lint:allow(<rule>): <reason>` — the reason is mandatory, and an
//! allow that stops matching anything is reported so suppressions
//! cannot silently outlive the code they excused.
//!
//! Run it as `cargo run -p specweb-lint`; the `workspace_clean`
//! integration test runs the same engine so `cargo test` gates it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod graph;
pub mod lexer;
pub mod purity;
pub mod rules;
pub mod taint;
pub mod width;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Classification of a `.rs` file, driving which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule applies.
    Lib,
    /// Binary / example targets: D4 (unseeded RNG) and S2 (unwrap) are
    /// relaxed — a CLI may seed from entropy and panic on bad input.
    Bin,
    /// Integration tests and benches: exempt. Tests legitimately use
    /// wall clocks, unwrap, and ad-hoc threads; golden tests are what
    /// *detect* nondeterminism rather than what must avoid it.
    Test,
}

/// One confirmed violation.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, or `"allow"` for suppression-syntax errors.
    pub rule: String,
    /// Explanation.
    pub message: String,
    /// Trimmed source line for context.
    pub snippet: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    > {}",
            self.file, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// Outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Hard violations (nonzero exit).
    pub violations: Vec<Diag>,
    /// Warnings: suppressions that no longer match any hit. Promoted to
    /// violations under `--deny-all`.
    pub unused_allows: Vec<Diag>,
    /// `(rule, file, line)` for every suppressed hit.
    pub allowed: Vec<(String, String, usize)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Whether the call-graph engine ran (workspace mode) or only the
    /// line engine (standalone / fixture mode).
    pub graph_engine: bool,
    /// Resolution-ladder telemetry from the graph build (workspace /
    /// hybrid mode only) — the precision counters CI gates on.
    pub resolution: Option<graph::ResolutionStats>,
    /// Purity classification counts (workspace / hybrid mode only).
    pub purity_counts: Option<BTreeMap<&'static str, usize>>,
    /// Width/scale-taint counters (workspace / hybrid mode only).
    pub width_counts: Option<BTreeMap<&'static str, usize>>,
}

impl Report {
    /// Fold another file's report into this one.
    fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
        self.unused_allows.extend(other.unused_allows);
        self.allowed.extend(other.allowed);
        self.files_scanned += other.files_scanned;
        self.graph_engine |= other.graph_engine;
    }

    /// Per-rule `(violations, allowed)` counts, sorted by rule id.
    pub fn per_rule(&self) -> BTreeMap<String, (usize, usize)> {
        let mut m: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for r in rules::RULES {
            m.insert(r.id.to_string(), (0, 0));
        }
        for d in &self.violations {
            m.entry(d.rule.clone()).or_insert((0, 0)).0 += 1;
        }
        for (rule, _, _) in &self.allowed {
            m.entry(rule.clone()).or_insert((0, 0)).1 += 1;
        }
        m
    }

    /// Render the JSON summary written by `--stats`. Hand-rolled (the
    /// pass is std-only) and key-sorted, so diffs are stable. Per rule
    /// it reports current violations/allows plus `retired`: how many of
    /// that rule's line-engine-era allows (see [`rules::ALLOW_BASELINE`])
    /// the reachability analysis has since proven unnecessary.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"engines\": [{}],\n",
            if self.graph_engine {
                "\"line\", \"graph\""
            } else {
                "\"line\""
            }
        ));
        out.push_str("  \"rules\": {\n");
        let per_rule = self.per_rule();
        let total = per_rule.len();
        for (i, (rule, (viol, allowed))) in per_rule.iter().enumerate() {
            let comma = if i + 1 == total { "" } else { "," };
            let baseline = rules::allow_baseline(rule);
            let retired = baseline.saturating_sub(*allowed);
            out.push_str(&format!(
                "    \"{rule}\": {{ \"violations\": {viol}, \"allowed\": {allowed}, \
                 \"baseline_allows\": {baseline}, \"retired\": {retired} }}{comma}\n"
            ));
        }
        out.push_str("  },\n");
        if let Some(stats) = &self.resolution {
            out.push_str(&format!("  \"resolution\": {},\n", stats.to_json_obj()));
        }
        if let Some(counts) = &self.purity_counts {
            out.push_str("  \"purity\": {");
            out.push_str(
                &counts
                    .iter()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push_str("},\n");
        }
        if let Some(counts) = &self.width_counts {
            out.push_str("  \"width\": {");
            out.push_str(
                &counts
                    .iter()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push_str("},\n");
        }
        let remaining = self.allowed.len();
        let baseline_total: usize = rules::ALLOW_BASELINE.iter().map(|&(_, n)| n).sum();
        out.push_str(&format!("  \"allows_remaining\": {remaining},\n"));
        out.push_str(&format!(
            "  \"allows_retired\": {},\n",
            baseline_total.saturating_sub(
                self.allowed
                    .iter()
                    .filter(|(r, _, _)| rules::allow_baseline(r) > 0)
                    .count()
            )
        ));
        out.push_str(&format!(
            "  \"unused_allows\": {}\n",
            self.unused_allows.len()
        ));
        out.push_str("}\n");
        out
    }
}

/// A full two-engine analysis: the lint report plus the artifacts the
/// graph engine produced (for `--graph` serialization and tests).
#[derive(Debug)]
pub struct Analysis {
    /// Combined report (line + graph findings, suppression applied).
    pub report: Report,
    /// The resolved workspace call graph.
    pub graph: graph::CallGraph,
    /// Deterministic roots found in the graph (qnames, sorted).
    pub roots: Vec<String>,
    /// Simulator hot-loop roots (G3), subset of `roots`.
    pub hot_roots: Vec<String>,
    /// Resolution-ladder telemetry from the graph build.
    pub stats: graph::ResolutionStats,
    /// The interprocedural purity classification (for `--purity`).
    pub purity: purity::PurityMap,
    /// The interprocedural scale-taint width analysis (for `--width`).
    pub width: width::WidthMap,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"tests") || parts.contains(&"benches") {
        return FileKind::Test;
    }
    if parts.contains(&"examples") || parts.contains(&"bin") {
        return FileKind::Bin;
    }
    match parts.last() {
        Some(&"main.rs") | Some(&"build.rs") => FileKind::Bin,
        _ => FileKind::Lib,
    }
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "results"];

/// Collect every `.rs` file under `root` in sorted order, skipping
/// vendored code, build output, and the lint fixtures (which are
/// deliberate violations).
pub fn collect_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            paths.push(entry.path());
        }
        paths.sort();
        for p in paths {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if SKIP_DIRS.contains(&name) || name == "fixtures" {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// A parsed `lint:allow` marker.
#[derive(Debug)]
struct Allow {
    line: usize,
    /// The line the marker excuses: its own line when it is a trailing
    /// comment, otherwise the next line containing code (intervening
    /// comment-only lines are skipped, so a marker may sit anywhere in
    /// a multi-line justification comment).
    covers: usize,
    rules: Vec<String>,
    used: bool,
}

/// Parse a comment channel for a suppression marker.
/// Returns `Ok(None)` when absent, `Ok(Some(ids))` for a well-formed
/// marker, `Err(why)` for a malformed one.
///
/// The marker must *start* the comment (after doc-comment sigils and
/// whitespace); prose that merely mentions the syntax mid-sentence is
/// not a suppression.
fn parse_allow(comment: &str) -> Result<Option<Vec<String>>, String> {
    let trimmed = comment.trim_start_matches(|c: char| c == '/' || c == '!' || c.is_whitespace());
    let Some(rest) = trimmed.strip_prefix("lint:allow") else {
        return Ok(None);
    };
    let Some(open) = rest.strip_prefix('(') else {
        return Err("lint:allow must be written `lint:allow(<rule>): <reason>`".into());
    };
    let Some(close) = open.find(')') else {
        return Err("lint:allow is missing a closing `)`".into());
    };
    let ids: Vec<String> = open[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if ids.is_empty() {
        return Err("lint:allow names no rule".into());
    }
    for id in &ids {
        if !rules::is_known_rule(id) {
            return Err(format!("lint:allow names unknown rule `{id}`"));
        }
    }
    let after = &open[close + 1..];
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(
            "lint:allow requires a non-empty reason: `lint:allow(<rule>): <reason>`".into(),
        );
    }
    Ok(Some(ids))
}

/// Mark the `#[cfg(test)]` / `#[test]` / `#[bench]` regions of a file:
/// from the attribute through the close of the item that follows.
fn test_regions(lines: &[lexer::Line]) -> Vec<bool> {
    let mut skip = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let c = &lines[i].code;
        let is_test_attr = (c.contains("cfg(test)") && !c.contains("not(test)"))
            || c.contains("#[test]")
            || c.contains("#[bench]");
        if !is_test_attr {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut started = false;
        let mut j = i;
        while j < lines.len() {
            skip[j] = true;
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => depth -= 1,
                    ';' if !started => {
                        // `#[cfg(test)] mod tests;` / attributed item
                        // without a body: the region ends here.
                        started = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if started && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    skip
}

/// Which engine combination a file pass runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Full legacy line-rule set, no extraction (fixtures, `lint_source`).
    LineOnly,
    /// Line rules minus the path heuristics, plus extraction for the
    /// graph engine (workspace runs).
    Hybrid,
}

/// Per-file intermediate result: everything a worker can compute
/// without seeing other files. Pure function of `(rel, kind, src)`, so
/// the parallel workspace pass is deterministic by construction.
#[derive(Debug)]
struct FilePass {
    rel: String,
    /// Malformed-allow diagnostics (always violations).
    malformed: Vec<Diag>,
    allows: Vec<Allow>,
    /// Line-rule hits: (0-based line idx, rule, message).
    line_hits: Vec<(usize, &'static str, String)>,
    /// Trimmed raw source lines, for diagnostics.
    snippets: Vec<String>,
    /// Extraction result (Hybrid mode, non-test files).
    extract: Option<extract::FileExtract>,
}

/// Run the lexer, allow collection, line rules, and (in Hybrid mode)
/// the extractor over one file.
fn file_pass(rel: &str, kind: FileKind, src: &str, engine: Engine) -> FilePass {
    let snippets: Vec<String> = src.lines().map(|s| s.trim().to_string()).collect();
    let mut pass = FilePass {
        rel: rel.to_string(),
        malformed: Vec::new(),
        allows: Vec::new(),
        line_hits: Vec::new(),
        snippets,
        extract: None,
    };
    if kind == FileKind::Test {
        return pass;
    }
    let lines = lexer::sanitize(src);
    let skip = test_regions(&lines);

    for (idx, line) in lines.iter().enumerate() {
        if skip[idx] {
            continue;
        }
        match parse_allow(&line.comment) {
            Ok(None) => {}
            Ok(Some(ids)) => {
                let covers = if line.code.trim().is_empty() {
                    // Comment-only line: the marker excuses the next
                    // line that carries code.
                    (idx + 1..lines.len())
                        .find(|&j| !lines[j].code.trim().is_empty())
                        .unwrap_or(idx)
                } else {
                    idx
                };
                pass.allows.push(Allow {
                    line: idx,
                    covers,
                    rules: ids,
                    used: false,
                });
            }
            Err(why) => pass.malformed.push(Diag {
                file: rel.to_string(),
                line: idx + 1,
                rule: "allow".into(),
                message: why,
                snippet: pass.snippets.get(idx).cloned().unwrap_or_default(),
            }),
        }
    }

    let legacy = engine == Engine::LineOnly;
    for (idx, line) in lines.iter().enumerate() {
        if skip[idx] {
            continue;
        }
        let prev_comment = if idx > 0 {
            lines[idx - 1].comment.as_str()
        } else {
            ""
        };
        for hit in
            rules::check_line_with(rel, kind, &line.code, &line.comment, prev_comment, legacy)
        {
            pass.line_hits.push((idx, hit.rule, hit.message));
        }
    }

    if engine == Engine::Hybrid {
        pass.extract = Some(extract::extract(rel, &lines, &skip));
    }
    pass
}

/// Apply suppression to a file's combined line + graph hits and emit
/// its final report slice.
fn finish_file(mut pass: FilePass, graph_hits: &[taint::GraphHit], graph_engine: bool) -> Report {
    let mut report = Report {
        files_scanned: 1,
        graph_engine,
        ..Report::default()
    };
    report.violations.append(&mut pass.malformed);
    let snippet = |idx: usize| pass.snippets.get(idx).cloned().unwrap_or_default();

    for (idx, rule, message) in &pass.line_hits {
        let covered = pass
            .allows
            .iter_mut()
            .find(|a| a.covers == *idx && a.rules.iter().any(|r| r == rule));
        match covered {
            Some(a) => {
                a.used = true;
                report
                    .allowed
                    .push((rule.to_string(), pass.rel.clone(), idx + 1));
            }
            None => report.violations.push(Diag {
                file: pass.rel.clone(),
                line: idx + 1,
                rule: rule.to_string(),
                message: message.clone(),
                snippet: snippet(*idx),
            }),
        }
    }

    for h in graph_hits {
        let idx = h.line.saturating_sub(1);
        let covered = pass
            .allows
            .iter_mut()
            .find(|a| a.covers == idx && a.rules.iter().any(|r| r == h.rule));
        match covered {
            Some(a) => {
                a.used = true;
                report
                    .allowed
                    .push((h.rule.to_string(), pass.rel.clone(), h.line));
            }
            None => report.violations.push(Diag {
                file: pass.rel.clone(),
                line: h.line,
                rule: h.rule.to_string(),
                message: h.message.clone(),
                snippet: snippet(idx),
            }),
        }
    }

    for a in pass.allows.iter().filter(|a| !a.used) {
        report.unused_allows.push(Diag {
            file: pass.rel.clone(),
            line: a.line + 1,
            rule: "allow".into(),
            message: format!(
                "unused lint:allow({}) — the code it excused is gone; remove it",
                a.rules.join(",")
            ),
            snippet: snippet(a.line),
        });
    }
    report
}

/// Lint one file's source text with the full legacy line-rule set (no
/// call graph — a single file has no callers to prove reachability
/// from). `rel` is the workspace-relative path (forward slashes);
/// `kind` usually comes from [`classify`] but is a parameter so fixture
/// tests can exercise Lib rules on arbitrary sources.
pub fn lint_source(rel: &str, kind: FileKind, src: &str) -> Report {
    let pass = file_pass(rel, kind, src, Engine::LineOnly);
    finish_file(pass, &[], false)
}

/// Run the two-engine analysis over an in-memory file set — the
/// multi-file counterpart of [`lint_source`], used by graph fixture
/// tests. Files are `(rel, kind, src)`.
pub fn analyze_sources(files: &[(String, FileKind, String)]) -> Analysis {
    let passes: Vec<FilePass> = files
        .iter()
        .map(|(rel, kind, src)| file_pass(rel, *kind, src, Engine::Hybrid))
        .collect();
    finish_analysis(passes, &graph::CrateDeps::permissive())
}

/// Read the workspace crate-dependency DAG from `crates/*/Cargo.toml`
/// (intra-workspace `specweb-*` dependencies only), for pruning
/// infeasible cross-crate call edges. A root that has no `crates/`
/// directory yields an empty (permissive) DAG.
pub fn load_crate_deps(root: &Path) -> graph::CrateDeps {
    let mut pairs: Vec<(String, String)> = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return graph::CrateDeps::permissive();
    };
    let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    dirs.sort();
    for dir in dirs {
        let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Ok(manifest) = fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        // The dep crate name (`specweb-spec`) maps to the qname crate
        // segment (`spec`) — crate directories and package suffixes
        // agree by workspace convention.
        pairs.push((name.to_string(), name.to_string()));
        for line in manifest.lines() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("specweb-") {
                let dep: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !dep.is_empty() && dep != name {
                    pairs.push((name.to_string(), dep));
                }
            }
        }
    }
    graph::CrateDeps::from_pairs(&pairs)
}

/// Extract every workspace file (same pipeline as
/// [`analyze_workspace`], minus the rules) so precision tests can
/// rebuild the graph with the import rungs toggled and measure the
/// fallback shrink they buy.
pub fn workspace_extracts(root: &Path) -> Result<Vec<extract::FileExtract>, String> {
    let mut out = Vec::new();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let pass = file_pass(&rel, classify(&rel), &src, Engine::Hybrid);
        if let Some(fx) = pass.extract {
            out.push(fx);
        }
    }
    Ok(out)
}

/// Shared tail of the workspace / in-memory analyses: build the graph,
/// run the taint checks, apply suppression per file.
fn finish_analysis(passes: Vec<FilePass>, deps: &graph::CrateDeps) -> Analysis {
    let extracts: Vec<extract::FileExtract> =
        passes.iter().filter_map(|p| p.extract.clone()).collect();
    let (g, stats) = graph::CallGraph::build_with_opts(&extracts, deps, true);
    let (roots, hot_roots) = taint::resolve_roots(&g);
    let pm = purity::PurityMap::compute(&g);
    let wm = width::WidthMap::compute(&g);
    let mut ghits = taint::check_reachability(&g, &roots, &hot_roots);
    ghits.extend(taint::check_lock_order(&g));
    ghits.extend(purity::check_effect_free(&g, &pm));
    ghits.extend(purity::check_par_purity(&g, &pm));
    ghits.extend(width::check_width(&wm));

    let mut by_file: BTreeMap<&str, Vec<&taint::GraphHit>> = BTreeMap::new();
    for h in &ghits {
        by_file.entry(h.file.as_str()).or_default().push(h);
    }

    let mut report = Report::default();
    for pass in passes {
        let hits: Vec<taint::GraphHit> = by_file
            .get(pass.rel.as_str())
            .map(|v| v.iter().map(|h| (*h).clone()).collect())
            .unwrap_or_default();
        report.merge(finish_file(pass, &hits, true));
    }
    report.resolution = Some(stats.clone());
    report.purity_counts = Some(pm.counts());
    report.width_counts = Some(wm.counts(&g));
    Analysis {
        report,
        graph: g,
        roots,
        hot_roots,
        stats,
        purity: pm,
        width: wm,
    }
}

/// Run the two-engine analysis over every `.rs` file under `root`,
/// fanning the per-file pass over `jobs` workers. The per-file stage is
/// a pure function and results are merged in sorted file order, so the
/// output — including the serialized call graph — is byte-identical
/// for any `jobs` count (golden-tested).
pub fn analyze_workspace(root: &Path, jobs: usize) -> Result<Analysis, String> {
    let mut inputs: Vec<(String, FileKind, String)> = Vec::new();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let kind = classify(&rel);
        inputs.push((rel, kind, src));
    }
    let pool = specweb_core::par::Pool::new(jobs);
    let passes = pool.map_indexed(&inputs, |_, (rel, kind, src)| {
        file_pass(rel, *kind, src, Engine::Hybrid)
    });
    Ok(finish_analysis(passes, &load_crate_deps(root)))
}

/// Lint every `.rs` file under `root` with the two-engine analysis
/// (serial). Kept as the stable entry point for the tier-1 gates.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    analyze_workspace(root, 1).map(|a| a.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_kinds() {
        assert_eq!(classify("crates/core/src/stats.rs"), FileKind::Lib);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(classify("src/bin/specweb.rs"), FileKind::Bin);
        assert_eq!(classify("crates/bench/src/bin/figures.rs"), FileKind::Bin);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Bin);
        assert_eq!(
            classify("crates/serve/tests/degradation.rs"),
            FileKind::Test
        );
        assert_eq!(
            classify("crates/bench/benches/simulators.rs"),
            FileKind::Test
        );
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "\
use std::collections::HashMap;

#[cfg(test)]
mod tests {
    use std::time::Instant;
    #[test]
    fn t() {
        let _ = Instant::now();
        let m: HashMap<u32, u32> = HashMap::new();
        let _ = m.get(&1).unwrap();
    }
}
";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        // Only the top-level HashMap import is flagged.
        assert_eq!(r.violations.len(), 1, "{:#?}", r.violations);
        assert_eq!(r.violations[0].rule, "D2");
        assert_eq!(r.violations[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "S2");
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "let m = HashMap::new(); // lint:allow(D2): lookup-only side table\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert!(r.violations.is_empty(), "{:#?}", r.violations);
        assert_eq!(r.allowed.len(), 1);
        assert_eq!(r.allowed[0].0, "D2");
    }

    #[test]
    fn allow_on_preceding_line_suppresses() {
        let src = "// lint:allow(S2): invariant: key inserted two lines up\nlet v = m.get(&k).unwrap();\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert!(r.violations.is_empty(), "{:#?}", r.violations);
        assert_eq!(r.allowed.len(), 1);
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "let m = HashMap::new(); // lint:allow(D2)\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert!(r.violations.iter().any(|d| d.rule == "allow"));
        // The malformed allow does not suppress the underlying hit.
        assert!(r.violations.iter().any(|d| d.rule == "D2"));
    }

    #[test]
    fn allow_unknown_rule_is_a_violation() {
        let src = "let x = 1; // lint:allow(D9): no such rule\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert!(r.violations.iter().any(|d| d.rule == "allow"));
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "let x = 1; // lint:allow(D2): stale excuse\n";
        let r = lint_source("crates/x/src/lib.rs", FileKind::Lib, src);
        assert!(r.violations.is_empty());
        assert_eq!(r.unused_allows.len(), 1);
    }

    #[test]
    fn json_summary_shape() {
        let r = lint_source(
            "crates/x/src/lib.rs",
            FileKind::Lib,
            "let m = HashMap::new(); // lint:allow(D2): side table, never iterated\n",
        );
        let json = r.to_json();
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"engines\": [\"line\"]"));
        assert!(json.contains(
            "\"D2\": { \"violations\": 0, \"allowed\": 1, \"baseline_allows\": 11, \"retired\": 10 }"
        ));
        assert!(json.contains("\"unused_allows\": 0"));
    }

    #[test]
    fn hybrid_analysis_accepts_lookup_only_hashmap_without_allow() {
        // Under the line engine this file needs a lint:allow(D2); the
        // graph engine proves the map is never iterated on any path
        // from a root and accepts it as-is.
        let files = vec![
            (
                "crates/dissem/src/simulate.rs".to_string(),
                FileKind::Lib,
                "pub fn run(t: &T) -> u32 { lookup(t) }\n".to_string(),
            ),
            (
                "crates/dissem/src/lib.rs".to_string(),
                FileKind::Lib,
                "pub fn lookup(t: &T) -> u32 {\n    let m: HashMap<u32, u32> = t.map();\n    *m.get(&1).unwrap_or(&0)\n}\n"
                    .to_string(),
            ),
        ];
        let a = analyze_sources(&files);
        assert!(a.report.violations.is_empty(), "{:#?}", a.report.violations);
        assert!(a.report.graph_engine);
        // Same source under the line engine: D2 fires.
        let line = lint_source("crates/dissem/src/lib.rs", FileKind::Lib, &files[1].2);
        assert!(line.violations.iter().any(|d| d.rule == "D2"));
    }

    #[test]
    fn graph_hits_respect_allows() {
        let files = vec![(
            "crates/dissem/src/simulate.rs".to_string(),
            FileKind::Lib,
            "pub fn run(m: &HashMap<u32, u32>) -> Vec<u32> {\n    \
             // lint:allow(G1): keys are collected and sorted before use\n    \
             let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort();\n    v\n}\n"
                .to_string(),
        )];
        let a = analyze_sources(&files);
        assert!(a.report.violations.is_empty(), "{:#?}", a.report.violations);
        assert_eq!(a.report.allowed.len(), 1);
        assert_eq!(a.report.allowed[0].0, "G1");
        assert!(a.report.unused_allows.is_empty());
    }
}
