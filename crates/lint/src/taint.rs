//! Taint-reachability over the call graph: the G-rules.
//!
//! * **G1** — a nondeterminism source (hash-map iteration, wall-clock
//!   read, unseeded RNG, ad-hoc thread spawn) is call-reachable from a
//!   deterministic root. This re-implements D2/D3/D4/D5 transitively:
//!   a `HashMap` that is never *iterated on any path from a root* is
//!   fine without an allow.
//! * **G2** — lock-order cycle: while one lock guard is held (`let`
//!   bound), a path exists that acquires a lock in a conflicting
//!   order (including re-acquiring the same lock → self-deadlock).
//! * **G3** — a panic-capable op (`unwrap`/`expect`) is reachable from
//!   a simulator hot loop. Replaces the blanket S2 on all lib code:
//!   panics in cold paths (report serialization, CLI glue) degrade
//!   gracefully; panics under the hot roots abort a simulation
//!   mid-experiment.
//!
//! Every violation carries an **evidence chain** — the shortest call
//! path from the root to the offending site, one `file:line` per hop —
//! so the report reads as a proof, not a pattern match.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::extract::SourceKind;
use crate::graph::CallGraph;

/// Deterministic roots: fns whose output the determinism contract
/// (DESIGN §6a) promises is byte-identical across runs and `--jobs`
/// counts. Matched as (module suffix, fn name); a `*` name matches
/// every fn in the module.
const ROOTS: &[(&str, &str)] = &[
    ("dissem::simulate", "run"),
    ("dissem::simulate", "run_with_faults"),
    ("spec::simulate", "run"),
    ("spec::simulate", "run_with_store"),
    ("spec::simulate", "run_with_faults"),
    ("trace::generator", "generate"),
    ("spec::deps", "closure"),
    ("spec::deps", "closure_jobs"),
    ("dissem::alloc", "*"),
    ("bench::exps", "*"),
    // The event-loop server's purity split (DESIGN §11): the
    // per-connection state machine and the trace replayer must be
    // clock/rng-free so a recorded session replays byte-identically.
    ("serve::conn", "*"),
    ("serve::session", "replay"),
    // Tail-latency observability (DESIGN §13): the profiler's frame
    // paths and call counts are jobs-invariant and golden-compared
    // (its one wall-clock read is lint:allow'd at the source), and a
    // STATS reply must be built clock-free so a recorded snapshot
    // replays byte-identically.
    ("core::obs::profile", "*"),
    ("serve::server", "stats_entries"),
];

/// Hot-loop roots for G3: the per-access simulation loops where a panic
/// kills an experiment mid-run. Experiment drivers and allocation
/// solvers are *not* hot — they run once per figure and a panic there
/// surfaces immediately.
const HOT_ROOTS: &[(&str, &str)] = &[
    ("dissem::simulate", "run"),
    ("dissem::simulate", "run_with_faults"),
    ("spec::simulate", "run"),
    ("spec::simulate", "run_with_store"),
    ("spec::simulate", "run_with_faults"),
    ("trace::generator", "generate"),
    ("spec::deps", "closure"),
    ("spec::deps", "closure_jobs"),
    // The reactor drives ConnCore once per readiness sweep per
    // connection; a panic there drops every live session at once.
    ("serve::conn", "*"),
    ("serve::session", "replay"),
    // Profiler frames open and close inside the per-access simulation
    // loops, and STATS replies are built mid-sweep: a panic in either
    // takes the run (or every live session) down with it.
    ("core::obs::profile", "*"),
    ("serve::server", "stats_entries"),
];

/// A graph-rule finding, pre-suppression.
#[derive(Debug, Clone)]
pub struct GraphHit {
    /// `G1`, `G2`, or `G3`.
    pub rule: &'static str,
    /// File of the *source site* (where a `lint:allow` can suppress it).
    pub file: String,
    /// 1-based line of the source site.
    pub line: usize,
    /// Diagnostic text including the rendered evidence chain.
    pub message: String,
}

/// Resolves the root specs against the graph. Returns qnames, sorted.
pub fn resolve_roots(g: &CallGraph) -> (Vec<String>, Vec<String>) {
    let pick = |specs: &[(&str, &str)]| -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for (q, n) in &g.nodes {
            for (msuf, fname) in specs {
                let module_matches = n.module == *msuf || n.module.ends_with(&format!("::{msuf}"));
                if module_matches && (*fname == "*" || n.name == *fname) {
                    out.push(q.clone());
                    break;
                }
            }
        }
        out
    };
    (pick(ROOTS), pick(HOT_ROOTS))
}

/// Multi-source BFS from `seeds`; returns, per reached node, the parent
/// on a shortest path back to some seed (seeds map to themselves).
/// Deterministic: seeds are processed in sorted order and neighbor
/// sets are BTreeSets.
fn bfs(g: &CallGraph, seeds: &[String]) -> BTreeMap<String, String> {
    let mut parent: BTreeMap<String, String> = BTreeMap::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    for s in seeds {
        if g.nodes.contains_key(s) && !parent.contains_key(s) {
            parent.insert(s.clone(), s.clone());
            queue.push_back(s.clone());
        }
    }
    while let Some(q) = queue.pop_front() {
        let Some(n) = g.nodes.get(&q) else { continue };
        for callee in &n.calls {
            if g.nodes.contains_key(callee) && !parent.contains_key(callee) {
                parent.insert(callee.clone(), q.clone());
                queue.push_back(callee.clone());
            }
        }
    }
    parent
}

/// Renders the shortest root→`at` call chain as
/// `root → … → at  (file:line per hop)`.
fn chain(g: &CallGraph, parent: &BTreeMap<String, String>, at: &str) -> String {
    let mut hops: Vec<String> = Vec::new();
    let mut cur = at.to_string();
    loop {
        let loc = g
            .nodes
            .get(&cur)
            .map(|n| format!("{}:{}", n.file, n.line))
            .unwrap_or_default();
        hops.push(format!("{cur} [{loc}]"));
        let p = &parent[&cur];
        if *p == cur {
            break;
        }
        cur = p.clone();
    }
    hops.reverse();
    hops.join(" -> ")
}

/// Runs G1 and G3 over the graph. Returns hits sorted by
/// (file, line, rule).
pub fn check_reachability(g: &CallGraph, roots: &[String], hot_roots: &[String]) -> Vec<GraphHit> {
    let mut hits: Vec<GraphHit> = Vec::new();

    // G1: nondeterminism sources reachable from any deterministic root.
    let parent = bfs(g, roots);
    for (q, n) in &g.nodes {
        if !parent.contains_key(q) {
            continue;
        }
        for s in &n.sources {
            let kind_ok = matches!(
                s.kind,
                SourceKind::WallClock
                    | SourceKind::Rng
                    | SourceKind::HashIter
                    | SourceKind::ThreadSpawn
            );
            if !kind_ok {
                continue;
            }
            hits.push(GraphHit {
                rule: "G1",
                file: n.file.clone(),
                line: s.line,
                message: format!(
                    "{} source `{}` (line-rule class {}) is call-reachable \
                     from a deterministic root:\n      {} -> {}:{} ({})",
                    s.kind.id(),
                    s.what,
                    s.kind.legacy_rule(),
                    chain(g, &parent, q),
                    n.file,
                    s.line,
                    s.what,
                ),
            });
        }
    }

    // G3: panic sites reachable from a hot root.
    let hot_parent = bfs(g, hot_roots);
    for (q, n) in &g.nodes {
        if !hot_parent.contains_key(q) {
            continue;
        }
        for s in &n.sources {
            if s.kind != SourceKind::Panic {
                continue;
            }
            hits.push(GraphHit {
                rule: "G3",
                file: n.file.clone(),
                line: s.line,
                message: format!(
                    "panic-capable `{}` is call-reachable from a simulator \
                     hot loop:\n      {} -> {}:{} ({})",
                    s.what,
                    chain(g, &hot_parent, q),
                    n.file,
                    s.line,
                    s.what,
                ),
            });
        }
    }

    hits.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    hits
}

/// Runs the G2 lock-order check.
///
/// Model: each distinct lock receiver name is a node in an *order
/// graph*. For every `let`-bound (held) guard in fn `F`, we add an
/// order edge `held → later` for each lock acquired
/// (a) later in `F`'s own body, or (b) anywhere in a fn call-reachable
/// from `F` — the guard is conservatively assumed live for the rest of
/// `F`. A cycle in the order graph (including a self-loop: re-acquiring
/// a held lock) is a potential deadlock. Statement-temporary guards
/// (`x.lock().apply(..)` with no `let`) drop at the `;` and generate no
/// edges.
pub fn check_lock_order(g: &CallGraph) -> Vec<GraphHit> {
    // For "reachable from F" we need, per fn, the set of locks its
    // callees can take. BFS from each fn that holds a lock (few).
    let mut order: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    // (held-lock name, acquired-lock name) → representative site.
    let mut edge_site: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();

    for (q, n) in &g.nodes {
        let held: Vec<_> = n.locks.iter().filter(|l| l.held).collect();
        if held.is_empty() {
            continue;
        }
        // Locks acquired downstream of this fn.
        let parent = bfs(g, std::slice::from_ref(q));
        let mut downstream: Vec<(String, String, usize, String)> = Vec::new();
        for (cq, cn) in &g.nodes {
            if cq == q || !parent.contains_key(cq) {
                continue;
            }
            for l in &cn.locks {
                downstream.push((
                    l.name.clone(),
                    cn.file.clone(),
                    l.line,
                    chain(g, &parent, cq),
                ));
            }
        }
        for (hi, h) in n.locks.iter().enumerate() {
            if !h.held {
                continue;
            }
            // (a) later acquisitions in the same body (the locks vec is
            // in source order, so position — not line number — decides
            // "later").
            for l in n.locks.iter().skip(hi + 1) {
                if l.name != h.name {
                    order
                        .entry(h.name.clone())
                        .or_default()
                        .insert(l.name.clone());
                    edge_site
                        .entry((h.name.clone(), l.name.clone()))
                        .or_insert((
                            n.file.clone(),
                            h.line,
                            format!("{q} [{}:{}]", n.file, h.line),
                        ));
                }
                // Same-name re-acquire later in the same fn is already
                // a self-deadlock only if the guard is still live —
                // scanning liveness is out of scope; the cross-fn case
                // below catches the dangerous recursive shape.
            }
            // (b) acquisitions anywhere downstream (same name included:
            // calling back into something that takes the held lock is
            // an immediate self-deadlock with std Mutex).
            for (lname, _lf, _ll, ch) in &downstream {
                order
                    .entry(h.name.clone())
                    .or_default()
                    .insert(lname.clone());
                edge_site.entry((h.name.clone(), lname.clone())).or_insert((
                    n.file.clone(),
                    h.line,
                    ch.clone(),
                ));
            }
        }
    }

    // Cycle detection over the order graph (iterative DFS, sorted).
    let mut hits: Vec<GraphHit> = Vec::new();
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for (a, succs) in &order {
        for b in succs {
            let back = a == b
                || order
                    .get(b)
                    .is_some_and(|s| reaches(&order, b, a, &mut BTreeSet::new()) || s.contains(a));
            if back && reported.insert((a.clone(), b.clone())) {
                let (file, line, ch) = &edge_site[&(a.clone(), b.clone())];
                let shape = if a == b {
                    format!("lock `{a}` can be re-acquired while held (self-deadlock)")
                } else {
                    format!("locks `{a}` and `{b}` are acquired in both orders")
                };
                hits.push(GraphHit {
                    rule: "G2",
                    file: file.clone(),
                    line: *line,
                    message: format!("{shape}:\n      via {ch}"),
                });
            }
        }
    }
    hits.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.message.as_str(),
        ))
    });
    hits
}

/// Whether `from` reaches `to` in the order graph.
fn reaches(
    order: &BTreeMap<String, BTreeSet<String>>,
    from: &str,
    to: &str,
    seen: &mut BTreeSet<String>,
) -> bool {
    if !seen.insert(from.to_string()) {
        return false;
    }
    let Some(succs) = order.get(from) else {
        return false;
    };
    if succs.contains(to) {
        return true;
    }
    succs.iter().any(|s| reaches(order, s, to, seen))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::graph::CallGraph;
    use crate::lexer::sanitize;

    fn build(files: &[(&str, &str)]) -> CallGraph {
        let fx: Vec<_> = files
            .iter()
            .map(|(rel, src)| {
                let lines = sanitize(src);
                let skip = vec![false; lines.len()];
                extract(rel, &lines, &skip)
            })
            .collect();
        CallGraph::build(&fx)
    }

    #[test]
    fn cross_function_hash_iteration_is_caught_with_a_chain() {
        let g = build(&[
            (
                "crates/dissem/src/simulate.rs",
                "pub fn run() { helper::predict(); }",
            ),
            (
                "crates/dissem/src/helper.rs",
                "
pub fn predict() {
    let m: HashMap<u32, u32> = make();
    for (k, v) in m.iter() { touch(k, v); }
}
",
            ),
        ]);
        let (roots, hot) = resolve_roots(&g);
        assert_eq!(roots, ["dissem::simulate::run"]);
        let hits = check_reachability(&g, &roots, &hot);
        let g1: Vec<_> = hits.iter().filter(|h| h.rule == "G1").collect();
        assert_eq!(g1.len(), 1, "{hits:#?}");
        assert!(g1[0].message.contains("dissem::simulate::run"));
        assert!(g1[0].message.contains("->"));
        assert!(g1[0].message.contains("hash_iter"));
        assert_eq!(g1[0].file, "crates/dissem/src/helper.rs");
    }

    #[test]
    fn unreachable_sources_are_clean() {
        let g = build(&[
            ("crates/dissem/src/simulate.rs", "pub fn run() {}"),
            (
                "crates/dissem/src/cold.rs",
                "
pub fn report() {
    let m: HashMap<u32, u32> = make();
    for k in m.keys() { touch(k); }
    let t = Instant::now();
}
",
            ),
        ]);
        let (roots, hot) = resolve_roots(&g);
        let hits = check_reachability(&g, &roots, &hot);
        assert!(hits.is_empty(), "{hits:#?}");
    }

    #[test]
    fn panic_reachable_from_hot_loop_is_g3_but_cold_panic_is_not() {
        let g = build(&[
            (
                "crates/spec/src/simulate.rs",
                "pub fn run() { step(); }\nfn step() { x.unwrap(); }",
            ),
            (
                "crates/bench/src/exps.rs",
                "pub fn tab1() { serde_out(); }\nfn serde_out() { y.expect( ); }",
            ),
        ]);
        let (roots, hot) = resolve_roots(&g);
        let hits = check_reachability(&g, &roots, &hot);
        let g3: Vec<_> = hits.iter().filter(|h| h.rule == "G3").collect();
        assert_eq!(g3.len(), 1, "exps is a G1 root but not hot: {hits:#?}");
        assert!(g3[0].message.contains("spec::simulate::run"));
    }

    #[test]
    fn lock_order_cycle_is_g2() {
        let g = build(&[(
            "crates/core/src/locks.rs",
            "
pub fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
pub fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }
",
        )]);
        let hits = check_lock_order(&g);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.rule == "G2"));
        assert!(hits[0].message.contains("both orders"), "{hits:#?}");
    }

    #[test]
    fn self_deadlock_through_a_callee_is_g2() {
        let g = build(&[(
            "crates/core/src/locks.rs",
            "
pub fn outer(&self) { let g = self.state.lock(); inner(self); }
fn inner(s: &S) { let h = s.state.lock(); }
",
        )]);
        let hits = check_lock_order(&g);
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert!(hits[0].message.contains("self-deadlock"));
    }

    #[test]
    fn ordered_nesting_without_reversal_is_clean() {
        let g = build(&[(
            "crates/core/src/locks.rs",
            "
pub fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
pub fn also_ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
",
        )]);
        let hits = check_lock_order(&g);
        assert!(hits.is_empty(), "{hits:#?}");
    }

    #[test]
    fn temporary_guards_do_not_create_order_edges() {
        let g = build(&[(
            "crates/core/src/locks.rs",
            "
pub fn ab(&self) { self.alpha.lock().push(1); self.beta.lock().push(2); }
pub fn ba(&self) { self.beta.lock().push(1); self.alpha.lock().push(2); }
",
        )]);
        let hits = check_lock_order(&g);
        assert!(hits.is_empty(), "{hits:#?}");
    }
}
