//! CLI for the determinism & safety lint pass.
//!
//! ```text
//! cargo run -p specweb-lint                  # lint the workspace (two engines)
//! cargo run -p specweb-lint -- --deny-all    # also fail on unused allows (CI mode)
//! cargo run -p specweb-lint -- --graph       # write results/callgraph.json
//! cargo run -p specweb-lint -- --stats       # write results/lint_report.json
//! cargo run -p specweb-lint -- --purity      # write results/purity.json
//! cargo run -p specweb-lint -- --width       # write results/widthflow.json
//! cargo run -p specweb-lint -- --jobs 4      # parallel per-file pass
//! cargo run -p specweb-lint -- --list-rules  # print the rule table
//! ```
//!
//! Exit code 0 when clean, 1 on violations (or, under `--deny-all`,
//! unused suppressions), 2 on usage/I-O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use specweb_lint::{analyze_workspace, rules};

struct Options {
    root: PathBuf,
    deny_all: bool,
    stats: bool,
    graph: bool,
    purity: bool,
    width: bool,
    jobs: usize,
    list_rules: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: specweb-lint [--root PATH] [--deny-all] [--stats] [--graph] [--purity] \
     [--width] [--jobs N] [--list-rules] [--quiet]\n\
     \n\
     --root PATH    workspace root to lint (default: this workspace)\n\
     --deny-all     treat unused lint:allow suppressions as errors (CI mode)\n\
     --stats        write <root>/results/lint_report.json and print a summary\n\
     --graph        write <root>/results/callgraph.json (the resolved call graph)\n\
     --purity       write <root>/results/purity.json (per-fn purity classes)\n\
     --width        write <root>/results/widthflow.json (scale-taint width analysis)\n\
     --jobs N       fan the per-file pass over N workers (output is byte-identical\n\
                    for any N; default 1)\n\
     --list-rules   print the rule table and exit\n\
     --quiet        suppress per-violation diagnostics (summary only)"
}

fn parse_args() -> Result<Options, String> {
    // The manifest dir is crates/lint; the workspace root is two up.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let mut opts = Options {
        root: default_root,
        deny_all: false,
        stats: false,
        graph: false,
        purity: false,
        width: false,
        jobs: 1,
        list_rules: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root requires a path")?;
                opts.root = PathBuf::from(v);
            }
            "--deny-all" => opts.deny_all = true,
            "--stats" => opts.stats = true,
            "--graph" => opts.graph = true,
            "--purity" => opts.purity = true,
            "--width" => opts.width = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs requires a count")?;
                opts.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs: `{v}` is not a number"))?
                    .max(1);
            }
            "--list-rules" => opts.list_rules = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("specweb-lint: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in rules::RULES {
            println!(
                "{:<4} {}",
                r.id,
                r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }

    let analysis = match analyze_workspace(&opts.root, opts.jobs) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("specweb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = &analysis.report;

    if !opts.quiet {
        for d in &report.violations {
            eprintln!("error: {d}");
        }
        for d in &report.unused_allows {
            let sev = if opts.deny_all { "error" } else { "warning" };
            eprintln!("{sev}: {d}");
        }
    }

    let results = opts.root.join("results");
    if (opts.stats || opts.graph || opts.purity || opts.width) && !results.exists() {
        if let Err(e) = std::fs::create_dir_all(&results) {
            eprintln!("specweb-lint: create {}: {e}", results.display());
            return ExitCode::from(2);
        }
    }

    if opts.graph {
        let out = results.join("callgraph.json");
        let json = analysis
            .graph
            .to_json(&analysis.roots, &analysis.hot_roots, &analysis.stats);
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("specweb-lint: write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", out.display());
    }

    if opts.purity {
        let out = results.join("purity.json");
        if let Err(e) = std::fs::write(&out, analysis.purity.to_json(&analysis.graph)) {
            eprintln!("specweb-lint: write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", out.display());
    }

    if opts.width {
        let out = results.join("widthflow.json");
        if let Err(e) = std::fs::write(&out, analysis.width.to_json(&analysis.graph)) {
            eprintln!("specweb-lint: write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", out.display());
    }

    if opts.stats {
        let out = results.join("lint_report.json");
        if let Err(e) = std::fs::write(&out, report.to_json()) {
            eprintln!("specweb-lint: write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", out.display());
        let stats = &analysis.stats;
        println!(
            "resolution ladder ({} call sites; {} fallback edge(s) + {} opaque-method \
             fallback edge(s)):",
            stats.calls, stats.fallback_edges, stats.method_fallback_edges
        );
        for rung in specweb_lint::graph::RUNGS {
            let n = stats.per_rung.get(rung).copied().unwrap_or(0);
            println!("  {rung:<17} {n:>5}");
        }
        if let Some(counts) = &report.purity_counts {
            println!(
                "purity: {}",
                counts
                    .iter()
                    .map(|(k, v)| format!("{k} {v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        if let Some(counts) = &report.width_counts {
            println!(
                "width: {}",
                counts
                    .iter()
                    .map(|(k, v)| format!("{k} {v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        println!(
            "fallback pairs pinned: {} (golden-tested ceiling; see results/callgraph.json)",
            stats.fallback_pairs.len()
        );
        for (from, to) in &stats.fallback_pairs {
            println!("  {from} -> {to}");
        }
        let per_rule = report.per_rule();
        println!("allows retired vs remaining (line-engine baseline -> now):");
        for (rule, (_, allowed)) in &per_rule {
            let baseline = rules::allow_baseline(rule);
            if baseline == 0 && *allowed == 0 {
                continue;
            }
            println!(
                "  {rule:<4} baseline {baseline:>2}  remaining {allowed:>2}  retired {:>2}",
                baseline.saturating_sub(*allowed)
            );
        }
    }

    println!(
        "specweb-lint: {} files, {} fn(s), {} violation(s), {} suppressed, {} unused allow(s)",
        report.files_scanned,
        analysis.graph.nodes.len(),
        report.violations.len(),
        report.allowed.len(),
        report.unused_allows.len()
    );

    let failed =
        !report.violations.is_empty() || (opts.deny_all && !report.unused_allows.is_empty());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
