//! CLI for the determinism & safety lint pass.
//!
//! ```text
//! cargo run -p specweb-lint                  # lint the workspace
//! cargo run -p specweb-lint -- --deny-all    # also fail on unused allows (CI mode)
//! cargo run -p specweb-lint -- --stats       # write results/lint_report.json
//! cargo run -p specweb-lint -- --list-rules  # print the rule table
//! ```
//!
//! Exit code 0 when clean, 1 on violations (or, under `--deny-all`,
//! unused suppressions), 2 on usage/I-O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use specweb_lint::{lint_workspace, rules};

struct Options {
    root: PathBuf,
    deny_all: bool,
    stats: bool,
    list_rules: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: specweb-lint [--root PATH] [--deny-all] [--stats] [--list-rules] [--quiet]\n\
     \n\
     --root PATH    workspace root to lint (default: this workspace)\n\
     --deny-all     treat unused lint:allow suppressions as errors (CI mode)\n\
     --stats        write <root>/results/lint_report.json and print a summary\n\
     --list-rules   print the rule table and exit\n\
     --quiet        suppress per-violation diagnostics (summary only)"
}

fn parse_args() -> Result<Options, String> {
    // The manifest dir is crates/lint; the workspace root is two up.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let mut opts = Options {
        root: default_root,
        deny_all: false,
        stats: false,
        list_rules: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root requires a path")?;
                opts.root = PathBuf::from(v);
            }
            "--deny-all" => opts.deny_all = true,
            "--stats" => opts.stats = true,
            "--list-rules" => opts.list_rules = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("specweb-lint: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in rules::RULES {
            println!(
                "{:<4} {}",
                r.id,
                r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }

    let report = match lint_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("specweb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if !opts.quiet {
        for d in &report.violations {
            eprintln!("error: {d}");
        }
        for d in &report.unused_allows {
            let sev = if opts.deny_all { "error" } else { "warning" };
            eprintln!("{sev}: {d}");
        }
    }

    if opts.stats {
        let out = opts.root.join("results").join("lint_report.json");
        if let Some(parent) = out.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("specweb-lint: create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&out, report.to_json()) {
            eprintln!("specweb-lint: write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", out.display());
    }

    let suppressed = report.allowed.len();
    println!(
        "specweb-lint: {} files, {} violation(s), {} suppressed, {} unused allow(s)",
        report.files_scanned,
        report.violations.len(),
        suppressed,
        report.unused_allows.len()
    );

    let failed =
        !report.violations.is_empty() || (opts.deny_all && !report.unused_allows.is_empty());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
