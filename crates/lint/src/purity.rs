//! Interprocedural purity: bottom-up effect propagation over the call
//! graph, a four-way classification of every workspace fn, and the two
//! rules it backs (DESIGN §9):
//!
//! * **G4** — functions the determinism/replay contract requires to be
//!   *effect-free* must classify as pure or locally-mutating: every
//!   shard-merge method (`merge(&mut self, &Other)` is how PR 7's
//!   sharded simulators recombine, so an effect there runs
//!   once-per-shard instead of once-per-run), every `ServiceTimeDist`
//!   method (the service-time distributions feed the merged replay
//!   reports), every `ConnCore` step fn (the record/replay layer
//!   replays them byte-identically), and `session::replay` itself.
//! * **G5** — no effectful call (and no direct effect site) inside a
//!   `core::par` worker closure. Worker closures run on a pool whose
//!   interleaving varies with `--jobs`; IO from inside one is
//!   nondeterministically ordered even when the computed values are
//!   not. The Obs channel (`crates/core/src/obs/`) is the sanctioned
//!   exception — that is what it is *for*.
//!
//! Effects propagate **bottom-up**: `effectful(f)` iff `f` has a direct
//! effect site (IO / process-global / wall-clock read) or any resolved
//! callee is effectful. Because the call graph over-approximates edges
//! (DESIGN §9), the propagation over-approximates effects — the sound
//! direction: a spurious edge can only cause a false *effectful*
//! classification (suppressable with `lint:allow`), never a false
//! *pure* one. Obs-channel fns are exempt and cut propagation; they are
//! reported honestly as `effect_exempt` when they carry direct effects.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::extract::SourceKind;
use crate::graph::{esc, CallGraph, Node};
use crate::taint::GraphHit;

/// Files under this prefix form the sanctioned Obs channel: effects
/// there are policy, not hazards, and do not propagate to callers.
const OBS_PREFIX: &str = "crates/core/src/obs/";

fn is_obs(n: &Node) -> bool {
    n.file.starts_with(OBS_PREFIX)
}

/// The four-way purity classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Purity {
    /// No effects on any path; signature borrows nothing mutably.
    Pure,
    /// No effects, but the signature takes `&mut`: mutates
    /// caller-visible state through its arguments (fine for G4/G5 —
    /// that is what a merge fn *is*).
    LocalMut,
    /// Reaches an IO / global / wall-clock effect site.
    Effectful,
    /// Would be effectful, but lives in the Obs channel: sanctioned.
    EffectExempt,
}

impl Purity {
    /// Stable identifier used in JSON and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Purity::Pure => "pure",
            Purity::LocalMut => "local_mut",
            Purity::Effectful => "effectful",
            Purity::EffectExempt => "effect_exempt",
        }
    }
}

/// Why a fn is effectful: a direct site, or a call to an effectful fn.
#[derive(Debug, Clone)]
enum Why {
    Direct {
        line: usize,
        kind: &'static str,
        what: String,
    },
    Via(String),
}

/// The computed classification for every graph node.
#[derive(Debug, Clone, Default)]
pub struct PurityMap {
    /// qname → class.
    pub class: BTreeMap<String, Purity>,
    /// qname → effect witness, for every effectful fn.
    why: BTreeMap<String, Why>,
}

impl PurityMap {
    /// Bottom-up effect fixpoint over the call graph. BFS from the
    /// direct-effect seeds over reverse edges, so every witness chain
    /// is a shortest path — and everything iterates in `BTreeMap`
    /// order, so the result is deterministic.
    pub fn compute(g: &CallGraph) -> PurityMap {
        let mut why: BTreeMap<String, Why> = BTreeMap::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        let mut exempt: BTreeSet<&str> = BTreeSet::new();
        for (q, n) in &g.nodes {
            let direct = n
                .effects
                .first()
                .map(|e| (e.line, e.kind.id(), e.what.clone()))
                .or_else(|| {
                    n.sources
                        .iter()
                        .find(|s| s.kind == SourceKind::WallClock)
                        .map(|s| (s.line, "wall", s.what.clone()))
                });
            if is_obs(n) {
                if direct.is_some() {
                    exempt.insert(q);
                }
                continue;
            }
            if let Some((line, kind, what)) = direct {
                why.insert(q.clone(), Why::Direct { line, kind, what });
                queue.push_back(q);
            }
        }
        let mut rev: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (q, n) in &g.nodes {
            for c in &n.calls {
                rev.entry(c.as_str()).or_default().insert(q.as_str());
            }
        }
        while let Some(q) = queue.pop_front() {
            let Some(callers) = rev.get(q) else { continue };
            for caller in callers {
                if why.contains_key(*caller) {
                    continue;
                }
                if g.nodes.get(*caller).is_some_and(is_obs) {
                    continue;
                }
                why.insert(caller.to_string(), Why::Via(q.to_string()));
                queue.push_back(caller);
            }
        }
        let mut class: BTreeMap<String, Purity> = BTreeMap::new();
        for (q, n) in &g.nodes {
            let c = if exempt.contains(q.as_str()) {
                Purity::EffectExempt
            } else if why.contains_key(q) {
                Purity::Effectful
            } else if n.sig_mut {
                Purity::LocalMut
            } else {
                Purity::Pure
            };
            class.insert(q.clone(), c);
        }
        PurityMap { class, why }
    }

    /// Whether `q` classifies as effectful.
    pub fn is_effectful(&self, q: &str) -> bool {
        self.class.get(q) == Some(&Purity::Effectful)
    }

    /// Renders the effect witness chain for an effectful fn:
    /// `a::f -> b::g (io `fs::write` at crates/b/src/lib.rs:12)`.
    pub fn chain(&self, g: &CallGraph, q: &str) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut cur = q.to_string();
        loop {
            match self.why.get(&cur) {
                Some(Why::Direct { line, kind, what }) => {
                    let file = g.nodes.get(&cur).map(|n| n.file.as_str()).unwrap_or("?");
                    parts.push(format!("{cur} ({kind} `{what}` at {file}:{line})"));
                    break;
                }
                Some(Why::Via(callee)) => {
                    parts.push(cur.clone());
                    cur = callee.clone();
                }
                None => {
                    parts.push(cur.clone());
                    break;
                }
            }
        }
        parts.join(" -> ")
    }

    /// Per-class counts, in [`Purity`] id order.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m: BTreeMap<&'static str, usize> = BTreeMap::new();
        for p in [
            Purity::Pure,
            Purity::LocalMut,
            Purity::Effectful,
            Purity::EffectExempt,
        ] {
            m.insert(p.id(), 0);
        }
        for p in self.class.values() {
            *m.entry(p.id()).or_insert(0) += 1;
        }
        m
    }

    /// Serializes the classification as stable, key-sorted JSON
    /// (schema `specweb-purity/v1`) — the CI artifact.
    pub fn to_json(&self, g: &CallGraph) -> String {
        let mut s = String::from("{\n  \"schema\": \"specweb-purity/v1\",\n");
        s.push_str("  \"counts\": {");
        s.push_str(
            &self
                .counts()
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("},\n  \"fns\": {\n");
        let mut first = true;
        for (q, p) in &self.class {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!("    \"{}\": {{\"class\": \"{}\"", esc(q), p.id()));
            if *p == Purity::Effectful {
                s.push_str(&format!(", \"why\": \"{}\"", esc(&self.chain(g, q))));
            }
            s.push('}');
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

/// The role a fn plays under the effect-free contract, when any (G4's
/// target set).
fn g4_role(qname: &str, n: &Node) -> Option<&'static str> {
    if n.name == "merge" && n.self_type.is_some() {
        return Some("shard-merge fn");
    }
    match n.self_type.as_deref() {
        Some("ServiceTimeDist") => return Some("service-time distribution fn"),
        Some("ConnCore") => return Some("replayable connection step fn"),
        _ => {}
    }
    if qname.ends_with("session::replay") && n.name == "replay" {
        return Some("session replayer");
    }
    None
}

/// G4: the effect-free contract over merge/replay/report fns.
pub fn check_effect_free(g: &CallGraph, pm: &PurityMap) -> Vec<GraphHit> {
    let mut hits: Vec<GraphHit> = Vec::new();
    for (q, n) in &g.nodes {
        let Some(role) = g4_role(q, n) else { continue };
        if pm.is_effectful(q) {
            hits.push(GraphHit {
                rule: "G4",
                file: n.file.clone(),
                line: n.line,
                message: format!(
                    "{role} `{q}` must be effect-free but reaches an effect: {}",
                    pm.chain(g, q)
                ),
            });
        }
    }
    hits
}

/// G5: no effects inside a `core::par` worker closure (outside Obs).
pub fn check_par_purity(g: &CallGraph, pm: &PurityMap) -> Vec<GraphHit> {
    let mut hits: Vec<GraphHit> = Vec::new();
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for (q, n) in &g.nodes {
        if is_obs(n) {
            continue;
        }
        for e in &n.effects {
            if !e.in_par {
                continue;
            }
            let msg = format!(
                "{} effect `{}` inside a core::par worker closure in `{q}`",
                e.kind.id(),
                e.what
            );
            if seen.insert((n.file.clone(), e.line, msg.clone())) {
                hits.push(GraphHit {
                    rule: "G5",
                    file: n.file.clone(),
                    line: e.line,
                    message: msg,
                });
            }
        }
        for (callee, line) in &n.par_calls {
            if !pm.is_effectful(callee) {
                continue;
            }
            let msg = format!(
                "effectful call inside a core::par worker closure in `{q}`: {}",
                pm.chain(g, callee)
            );
            if seen.insert((n.file.clone(), *line, msg.clone())) {
                hits.push(GraphHit {
                    rule: "G5",
                    file: n.file.clone(),
                    line: *line,
                    message: msg,
                });
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::graph::CrateDeps;
    use crate::lexer::sanitize;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let fx: Vec<_> = files
            .iter()
            .map(|(rel, src)| {
                let lines = sanitize(src);
                let skip = vec![false; lines.len()];
                extract(rel, &lines, &skip)
            })
            .collect();
        CallGraph::build_with_opts(&fx, &CrateDeps::permissive(), true).0
    }

    #[test]
    fn effects_propagate_bottom_up() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
pub fn top() -> u32 { mid() }
fn mid() -> u32 { leaf() }
fn leaf() -> u32 { println!( ); 1 }
pub fn clean(x: u32) -> u32 { x + 1 }
pub fn bump(x: &mut u32) { *x += 1; }
",
        )]);
        let pm = PurityMap::compute(&g);
        assert_eq!(pm.class["a::top"], Purity::Effectful);
        assert_eq!(pm.class["a::mid"], Purity::Effectful);
        assert_eq!(pm.class["a::leaf"], Purity::Effectful);
        assert_eq!(pm.class["a::clean"], Purity::Pure);
        assert_eq!(pm.class["a::bump"], Purity::LocalMut);
        let chain = pm.chain(&g, "a::top");
        assert!(
            chain.starts_with("a::top -> a::mid -> a::leaf (io `println!`"),
            "{chain}"
        );
    }

    #[test]
    fn obs_channel_cuts_propagation() {
        let g = graph(&[
            (
                "crates/core/src/obs/log.rs",
                "pub fn emit(msg: &str) { eprintln!( ); }",
            ),
            (
                "crates/a/src/lib.rs",
                "
use specweb_core::obs::log::emit;
pub fn work(x: u32) -> u32 { emit(msg); x }
",
            ),
        ]);
        let pm = PurityMap::compute(&g);
        assert_eq!(pm.class["core::obs::log::emit"], Purity::EffectExempt);
        assert_eq!(
            pm.class["a::work"],
            Purity::Pure,
            "calling the obs channel is sanctioned"
        );
    }

    #[test]
    fn wall_clock_reads_count_as_effects() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn stamp() -> u64 { let t = Instant::now(); 0 }",
        )]);
        let pm = PurityMap::compute(&g);
        assert_eq!(pm.class["a::stamp"], Purity::Effectful);
        assert!(pm.chain(&g, "a::stamp").contains("wall `Instant::now`"));
    }

    #[test]
    fn g4_flags_effectful_merge_fns_with_evidence() {
        let g = graph(&[(
            "crates/a/src/stats.rs",
            "
pub struct Tally { n: u64 }
impl Tally {
    pub fn merge(&mut self, other: &Tally) { self.n += other.n; audit(); }
}
fn audit() { fs::write(p, b); }
",
        )]);
        let pm = PurityMap::compute(&g);
        let hits = check_effect_free(&g, &pm);
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert_eq!(hits[0].rule, "G4");
        assert!(hits[0].message.contains("shard-merge fn"), "{hits:#?}");
        assert!(hits[0].message.contains("fs::write"), "{hits:#?}");
    }

    #[test]
    fn g4_accepts_locally_mutating_merges() {
        let g = graph(&[(
            "crates/a/src/stats.rs",
            "
pub struct Tally { n: u64 }
impl Tally {
    pub fn merge(&mut self, other: &Tally) { self.n += other.n; }
}
",
        )]);
        let pm = PurityMap::compute(&g);
        assert_eq!(pm.class["a::stats::Tally::merge"], Purity::LocalMut);
        assert!(check_effect_free(&g, &pm).is_empty());
    }

    #[test]
    fn g5_flags_direct_and_transitive_par_effects() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
pub fn fan_out(pool: &Pool) {
    pool.map_indexed(&xs, |_, x| { println!( ); chatty(x) });
    pool.map_indexed(&ys, |_, y| quiet(y));
}
fn chatty(x: u32) -> u32 { eprintln!( ); x }
fn quiet(y: u32) -> u32 { y }
",
        )]);
        let pm = PurityMap::compute(&g);
        let hits = check_par_purity(&g, &pm);
        assert_eq!(hits.len(), 2, "{hits:#?}");
        assert!(hits.iter().all(|h| h.rule == "G5"));
        assert!(hits
            .iter()
            .any(|h| h.message.contains("io effect `println!`")));
        assert!(hits.iter().any(|h| h.message.contains("a::chatty")));
    }

    #[test]
    fn purity_json_is_deterministic_and_counts() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn f() { println!( ); }\npub fn g(x: u32) -> u32 { x }\n",
        )]);
        let pm = PurityMap::compute(&g);
        let json = pm.to_json(&g);
        assert!(json.contains("\"schema\": \"specweb-purity/v1\""));
        assert!(
            json.contains("\"effect_exempt\": 0, \"effectful\": 1, \"local_mut\": 0, \"pure\": 1")
        );
        assert!(
            json.contains("\"a::f\": {\"class\": \"effectful\", \"why\": \"a::f (io `println!`")
        );
        assert_eq!(json, pm.to_json(&g), "stable rendering");
    }
}
