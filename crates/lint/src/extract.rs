//! Item / call-site extraction over the sanitized token stream.
//!
//! The second lint engine (DESIGN §9) needs a whole-workspace call
//! graph, but the vendored-deps constraint rules out `syn`. This module
//! is the std-only middle ground: it tokenizes the per-line code
//! channel produced by [`crate::lexer::sanitize`] and runs a small
//! state machine that recognizes
//!
//! * `mod` nesting, `impl`/`trait` blocks, and `fn` items (including
//!   nested fns), yielding a qualified name per function such as
//!   `spec::deps::DepMatrix::closure`;
//! * call sites — free calls (`helper(..)`), path calls
//!   (`module::helper(..)`, `Type::method(..)`), and method calls
//!   (`x.method(..)`) — attributed to the innermost enclosing `fn`
//!   (closure bodies attribute to the defining fn, which is exactly the
//!   conservative choice taint analysis wants);
//! * nondeterminism / hazard **sources** per function: wall-clock
//!   reads, unseeded RNG constructors, hash-collection *iteration*
//!   (not mere use — see below), thread spawns, panic-capable ops
//!   (`unwrap`/`expect`; raw indexing is counted but not enforced),
//!   and lock acquisitions.
//!
//! Hash iteration is detected by first collecting, per file, the
//! identifiers declared with a hash-collection type (`x: HashMap<..>`
//! ascriptions — struct fields, params, lets — and
//! `let x = HashMap::new()`-style constructions), then flagging any
//! iteration of such a name (`for .. in x`, `x.iter()`, `x.keys()`,
//! `x.values()`, `x.drain(..)`, …). The approximation is documented in
//! DESIGN §9: names are file-scoped and matched textually, so a hash
//! map that escapes behind a generic `IntoIterator` is out of scope,
//! while a same-named non-hash binding in the same file may be flagged
//! spuriously (the `lint:allow` valve covers that direction).
//!
//! Everything here is deterministic by construction — no hashing, no
//! wall clock — so the serialized call graph is byte-identical for any
//! `--jobs` count.

use std::collections::BTreeSet;

use crate::lexer::Line;

/// The nondeterminism / hazard source classes the taint pass tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// `Instant::now` / `SystemTime` outside the obs wall channel.
    WallClock,
    /// `thread_rng` / `from_entropy`.
    Rng,
    /// Iteration over a hash-typed binding.
    HashIter,
    /// `thread::spawn` / `thread::Builder` / `thread::scope` outside
    /// the sanctioned owners.
    ThreadSpawn,
    /// `.unwrap()` / `.expect()`.
    Panic,
}

impl SourceKind {
    /// Stable identifier used in JSON and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            SourceKind::WallClock => "wall_clock",
            SourceKind::Rng => "unseeded_rng",
            SourceKind::HashIter => "hash_iter",
            SourceKind::ThreadSpawn => "thread_spawn",
            SourceKind::Panic => "panic",
        }
    }

    /// The legacy line-rule class this source corresponds to, shown in
    /// diagnostics so the G1 report reads as "D2, proven transitively".
    pub fn legacy_rule(self) -> &'static str {
        match self {
            SourceKind::WallClock => "D3",
            SourceKind::Rng => "D4",
            SourceKind::HashIter => "D2",
            SourceKind::ThreadSpawn => "D5",
            SourceKind::Panic => "S2",
        }
    }
}

/// One detected source site inside a function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceSite {
    /// 1-based line number.
    pub line: usize,
    /// Source class.
    pub kind: SourceKind,
    /// What tripped it (`follows` for a hash iteration, `unwrap` for a
    /// panic site, …).
    pub what: String,
}

/// An unresolved call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee as written (the final path segment / method name).
    pub name: String,
    /// `a::b` for `a::b::name(..)`; empty for free and method calls.
    pub qualifier: String,
    /// True for `x.name(..)` / `self.name(..)` forms.
    pub is_method: bool,
    /// True specifically for `self.name(..)`.
    pub on_self: bool,
    /// 1-based line number.
    pub line: usize,
}

/// One lock acquisition (`recv.lock()`).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// The receiver's base identifier (`inner` for
    /// `self.inner.lock()`), the lock's identity for the G2 check.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// True when the guard is bound with `let` (can be held across
    /// later statements and calls); statement-temporary guards drop at
    /// the `;` and cannot participate in an ordering cycle.
    pub held: bool,
}

/// One extracted function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Fully qualified name: module path + enclosing type/fn names +
    /// the function name, `::`-joined.
    pub qname: String,
    /// Simple name.
    pub name: String,
    /// Enclosing module path (no type/fn segments).
    pub module: String,
    /// Enclosing `impl`/`trait` type name, when any.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Unresolved call sites, in source order.
    pub calls: Vec<Call>,
    /// Detected sources, in source order.
    pub sources: Vec<SourceSite>,
    /// Count of raw index expressions (`x[i]`): recorded as a
    /// panic-capability signal in the graph JSON but not enforced by
    /// G3 (slice indexing is ubiquitous and mostly bounds-proven).
    pub index_sites: usize,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
}

/// Extraction result for one file.
#[derive(Debug, Clone, Default)]
pub struct FileExtract {
    /// Workspace-relative path.
    pub rel: String,
    /// Module path derived from the file path (`spec::deps`).
    pub module: String,
    /// Extracted functions, in source order.
    pub fns: Vec<FnItem>,
    /// Types this file `impl`s or declares as traits.
    pub impl_types: BTreeSet<String>,
}

/// Maps a workspace-relative path to a module path: `crates/spec/src/
/// deps.rs` → `spec::deps`, `crates/bench/src/bin/figures.rs` →
/// `bench::bin::figures`, `src/lib.rs` → `specweb`, `examples/x.rs` →
/// `examples::x`.
pub fn module_path(rel: &str) -> String {
    let mut parts: Vec<&str> = rel.split('/').collect();
    let mut out: Vec<String> = Vec::new();
    if parts.first() == Some(&"crates") && parts.len() > 2 {
        out.push(parts[1].to_string());
        parts.drain(..2);
    } else if parts.first() == Some(&"examples") {
        out.push("examples".to_string());
        parts.remove(0);
    } else {
        out.push("specweb".to_string());
    }
    if parts.first() == Some(&"src") {
        parts.remove(0);
    }
    for (i, p) in parts.iter().enumerate() {
        let last = i + 1 == parts.len();
        let p = if last {
            p.strip_suffix(".rs").unwrap_or(p)
        } else {
            p
        };
        if last && (p == "lib" || p == "mod") {
            continue;
        }
        if last && p == "main" && out.len() == 1 {
            continue;
        }
        out.push(p.to_string());
    }
    out.join("::")
}

/// Method names that iterate their receiver.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Keywords that look like call targets but are not.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "let", "fn", "impl", "mod", "struct",
    "enum", "trait", "use", "pub", "const", "static", "type", "where", "unsafe", "as", "in", "ref",
    "move", "dyn", "crate", "super", "self", "Self", "break", "continue", "async", "await", "box",
];

fn is_keyword(w: &str) -> bool {
    KEYWORDS.contains(&w)
}

/// One token of the sanitized code channel.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Identifier (never a lifetime; those are skipped).
    I(String),
    /// Single punctuation character.
    P(char),
}

/// Tokenizes sanitized lines, skipping `skip`-masked (test) regions,
/// lifetimes, blanked literal bodies, and numeric literals. Returns
/// `(token, 1-based line)` pairs.
fn tokenize(lines: &[Line], skip: &[bool]) -> Vec<(Tok, usize)> {
    let mut toks = Vec::new();
    let mut in_str = false;
    for (idx, line) in lines.iter().enumerate() {
        if skip.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let chars: Vec<char> = line.code.chars().collect();
        let n = chars.len();
        let mut i = 0;
        if in_str {
            // Inside a blanked multi-line string: skip to its close.
            while i < n && chars[i] != '"' {
                i += 1;
            }
            if i < n {
                in_str = false;
                i += 1; // consume the closing quote
            } else {
                continue;
            }
        }
        while i < n {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c == '"' {
                // Blanked string body: skip to the close (or carry the
                // open state to the next line).
                i += 1;
                while i < n && chars[i] != '"' {
                    i += 1;
                }
                if i < n {
                    i += 1;
                } else {
                    in_str = true;
                }
            } else if c == '\'' {
                // Lifetime (`'a`) or blanked char literal (`' '`).
                i += 1;
                if i < n && (chars[i].is_ascii_alphabetic() || chars[i] == '_') {
                    while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    // A closing quote means this was a char literal
                    // whose (blanked) body looked like an identifier.
                    if i < n && chars[i] == '\'' {
                        i += 1;
                    }
                } else {
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    if i < n {
                        i += 1;
                    }
                }
            } else if c.is_ascii_digit() {
                // Numeric literal (including float / tuple-index runs).
                i += 1;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push((Tok::I(chars[start..i].iter().collect()), idx + 1));
            } else {
                toks.push((Tok::P(c), idx + 1));
                i += 1;
            }
        }
    }
    toks
}

/// Collects the identifiers this file declares with a hash-collection
/// type: `name: HashMap<..>` ascriptions (fields, params, lets) and
/// `let name = HashMap::new()`-style constructions.
fn hash_typed_names(lines: &[Line], skip: &[bool]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (idx, line) in lines.iter().enumerate() {
        if skip.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let code = &line.code;
        for needle in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(needle) {
                let at = from + pos;
                from = at + needle.len();
                if let Some(name) = declared_name_before(code, at) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Given `code[..at]` ending just before a `HashMap`/`HashSet` token,
/// recovers the identifier being declared, for both ascription
/// (`name: [&mut ]Hash..`) and construction (`let [mut] name = [path::]
/// Hash..`) forms.
fn declared_name_before(code: &str, at: usize) -> Option<String> {
    let mut pre = code[..at].trim_end();
    // Strip a leading path (`std::collections::`).
    loop {
        let stripped = pre.strip_suffix("::").map(str::trim_end);
        match stripped {
            Some(rest) => {
                let ident_len = rest
                    .chars()
                    .rev()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .count();
                pre = rest[..rest.len() - ident_len].trim_end();
            }
            None => break,
        }
    }
    // Reference / mutability sigils in ascriptions.
    while let Some(rest) = pre
        .strip_suffix('&')
        .or_else(|| pre.strip_suffix("mut").filter(|r| !ends_ident(r)))
    {
        pre = rest.trim_end();
    }
    let pre = if let Some(rest) = pre.strip_suffix(':') {
        // `name: HashMap<..>` — but not a path `x::HashMap` (handled
        // above) and not a pattern-match arm `..:`.
        rest.trim_end()
    } else if let Some(rest) = pre.strip_suffix('=') {
        // `let [mut] name = HashMap::new()`; `==`/`=>` never precede a
        // type name, so a bare `=` suffix is an assignment.
        rest.trim_end_matches(['=', '>']).trim_end()
    } else {
        return None;
    };
    let name: String = pre
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

fn ends_ident(s: &str) -> bool {
    s.chars()
        .last()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ScopeKind {
    Mod,
    /// `impl` block or `trait` definition.
    Type,
    Fn,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    name: String,
    /// Brace depth immediately after this scope's `{`.
    depth: usize,
    /// Index into `FileExtract::fns` for `Fn` scopes.
    fn_idx: Option<usize>,
}

/// Extracts items, calls, and sources from one sanitized file.
///
/// `skip` is the test-region mask (same length as `lines`).
pub fn extract(rel: &str, lines: &[Line], skip: &[bool]) -> FileExtract {
    let module = module_path(rel);
    // The sanctioned-owner whitelists carry over from the line engine:
    // the obs wall channel may read real time, and the scoped pool /
    // server may spawn threads (DESIGN §7, §9). Sources there are
    // policy, not hazards.
    let wall_exempt = crate::rules::path_has_prefix(rel, crate::rules::D3_EXEMPT);
    let thread_exempt = crate::rules::path_has_prefix(rel, crate::rules::D5_EXEMPT);
    let hash_names = hash_typed_names(lines, skip);
    let toks = tokenize(lines, skip);
    let mut out = FileExtract {
        rel: rel.to_string(),
        module: module.clone(),
        ..FileExtract::default()
    };

    let mut stack: Vec<Scope> = Vec::new();
    let mut depth: usize = 0;
    // Pending item headers between their keyword and their `{` / `;`.
    let mut pend_fn: Option<usize> = None; // index into out.fns
    let mut pend_named: Option<(ScopeKind, String)> = None; // mod / trait
    let mut impl_hdr: Option<ImplHdr> = None;
    // For-loop header capture: Some(seen_in) while inside one.
    let mut for_hdr: Option<bool> = None;

    #[derive(Debug, Default)]
    struct ImplHdr {
        name: Option<String>,
        after_for: bool,
        angle: i32,
        in_where: bool,
    }

    let n = toks.len();
    let mut i = 0;
    while i < n {
        let (tok, line) = &toks[i];
        let line = *line;
        match tok {
            Tok::P('{') => {
                depth += 1;
                if let Some(fi) = pend_fn.take() {
                    stack.push(Scope {
                        kind: ScopeKind::Fn,
                        name: out.fns[fi].name.clone(),
                        depth,
                        fn_idx: Some(fi),
                    });
                } else if let Some(hdr) = impl_hdr.take() {
                    let name = hdr.name.unwrap_or_else(|| "?".to_string());
                    out.impl_types.insert(name.clone());
                    stack.push(Scope {
                        kind: ScopeKind::Type,
                        name,
                        depth,
                        fn_idx: None,
                    });
                } else if let Some((kind, name)) = pend_named.take() {
                    if kind == ScopeKind::Type {
                        out.impl_types.insert(name.clone());
                    }
                    stack.push(Scope {
                        kind,
                        name,
                        depth,
                        fn_idx: None,
                    });
                }
                for_hdr = None;
                i += 1;
            }
            Tok::P('}') => {
                depth = depth.saturating_sub(1);
                while stack.last().is_some_and(|s| s.depth > depth) {
                    stack.pop();
                }
                i += 1;
            }
            Tok::P(';') => {
                pend_fn = None;
                pend_named = None;
                impl_hdr = None;
                i += 1;
            }
            Tok::P('<') if impl_hdr.is_some() => {
                if let Some(h) = impl_hdr.as_mut() {
                    h.angle += 1;
                }
                i += 1;
            }
            Tok::P('>') if impl_hdr.is_some() => {
                if let Some(h) = impl_hdr.as_mut() {
                    h.angle = (h.angle - 1).max(0);
                }
                i += 1;
            }
            Tok::P('[') => {
                // Raw index expression: `x[..]` / `f(..)[..]`.
                if i > 0 {
                    let indexing = match &toks[i - 1].0 {
                        Tok::I(w) => !is_keyword(w),
                        Tok::P(')') | Tok::P(']') => true,
                        _ => false,
                    };
                    if indexing {
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            f.index_sites += 1;
                        }
                    }
                }
                i += 1;
            }
            Tok::P(_) => {
                i += 1;
            }
            Tok::I(w) => {
                // Impl-header capture consumes idents until `{`.
                if let Some(h) = impl_hdr.as_mut() {
                    if w == "for" {
                        h.after_for = true;
                        h.name = None;
                    } else if w == "where" {
                        h.in_where = true;
                    } else if h.angle == 0 && !h.in_where && (h.name.is_none() || !h.after_for) {
                        h.name = Some(w.clone());
                    }
                    i += 1;
                    continue;
                }
                // For-loop header: record iterated hash names.
                if let Some(seen_in) = for_hdr.as_mut() {
                    if w == "in" {
                        *seen_in = true;
                        i += 1;
                        continue;
                    }
                    if *seen_in
                        && hash_names.contains(w.as_str())
                        && toks.get(i + 1).map(|(t, _)| t) != Some(&Tok::P('('))
                    {
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            f.sources.push(SourceSite {
                                line,
                                kind: SourceKind::HashIter,
                                what: w.clone(),
                            });
                        }
                    }
                    // fall through: calls inside the header still count.
                }

                let next_is = |k: char| toks.get(i + 1).map(|(t, _)| t) == Some(&Tok::P(k));
                let in_fn_sig =
                    pend_fn.is_some() && stack.last().is_none_or(|s| s.fn_idx != pend_fn);

                match w.as_str() {
                    "fn" => {
                        if let Some((Tok::I(name), _)) = toks.get(i + 1) {
                            if pend_fn.is_none() {
                                let (module_full, self_type) = scope_context(&module, &stack);
                                let qname = format!("{module_full}::{name}");
                                out.fns.push(FnItem {
                                    qname,
                                    name: name.clone(),
                                    module: module_of(&module, &stack),
                                    self_type,
                                    line,
                                    calls: Vec::new(),
                                    sources: Vec::new(),
                                    index_sites: 0,
                                    locks: Vec::new(),
                                });
                                pend_fn = Some(out.fns.len() - 1);
                            }
                            i += 2; // consume `fn` and the name
                            continue;
                        }
                        // `fn(..)` pointer type — not an item.
                        i += 1;
                        continue;
                    }
                    "mod" if pend_fn.is_none() => {
                        if let Some((Tok::I(name), _)) = toks.get(i + 1) {
                            pend_named = Some((ScopeKind::Mod, name.clone()));
                            i += 2;
                            continue;
                        }
                        i += 1;
                        continue;
                    }
                    "trait" if pend_fn.is_none() => {
                        if let Some((Tok::I(name), _)) = toks.get(i + 1) {
                            pend_named = Some((ScopeKind::Type, name.clone()));
                            i += 2;
                            continue;
                        }
                        i += 1;
                        continue;
                    }
                    "impl" if pend_fn.is_none() => {
                        impl_hdr = Some(ImplHdr::default());
                        i += 1;
                        continue;
                    }
                    "for" if !in_fn_sig => {
                        for_hdr = Some(false);
                        i += 1;
                        continue;
                    }
                    _ => {}
                }

                // Source patterns on bare identifiers.
                let kind_hit = match w.as_str() {
                    "SystemTime" if !wall_exempt => Some((SourceKind::WallClock, w.clone())),
                    "thread_rng" | "from_entropy" => Some((SourceKind::Rng, w.clone())),
                    _ => None,
                };
                if let Some((kind, what)) = kind_hit {
                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                        f.sources.push(SourceSite { line, kind, what });
                    }
                }

                // Call site: identifier followed by `(` (macros have a
                // `!` in between and fall outside this pattern).
                if next_is('(') && !is_keyword(w) {
                    let prev_dot = i > 0 && toks[i - 1].0 == Tok::P('.');
                    if prev_dot {
                        // Method call `recv.w(..)`.
                        let recv = receiver_before(&toks, i - 1);
                        let on_self = recv.as_deref() == Some("self");
                        if ITER_METHODS.contains(&w.as_str()) {
                            if let Some(r) = recv.as_deref() {
                                if hash_names.contains(r) {
                                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                        f.sources.push(SourceSite {
                                            line,
                                            kind: SourceKind::HashIter,
                                            what: r.to_string(),
                                        });
                                    }
                                }
                            }
                        }
                        if w == "unwrap" || w == "expect" {
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.sources.push(SourceSite {
                                    line,
                                    kind: SourceKind::Panic,
                                    what: w.clone(),
                                });
                            }
                        }
                        if w == "lock" {
                            let name = recv.clone().unwrap_or_else(|| "?".to_string());
                            let held = binds_with_let(&toks, i);
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.locks.push(LockSite { name, line, held });
                            }
                        }
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            f.calls.push(Call {
                                name: w.clone(),
                                qualifier: String::new(),
                                is_method: true,
                                on_self,
                                line,
                            });
                        }
                    } else {
                        let qualifier = path_qualifier_before(&toks, i);
                        if !thread_exempt
                            && (qualifier == "thread" || qualifier.ends_with("::thread"))
                            && matches!(w.as_str(), "spawn" | "scope")
                        {
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.sources.push(SourceSite {
                                    line,
                                    kind: SourceKind::ThreadSpawn,
                                    what: format!("thread::{w}"),
                                });
                            }
                        }
                        if w == "now"
                            && !wall_exempt
                            && (qualifier == "Instant" || qualifier.ends_with("::Instant"))
                        {
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.sources.push(SourceSite {
                                    line,
                                    kind: SourceKind::WallClock,
                                    what: "Instant::now".to_string(),
                                });
                            }
                        }
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            f.calls.push(Call {
                                name: w.clone(),
                                qualifier,
                                is_method: false,
                                on_self: false,
                                line,
                            });
                        }
                    }
                }
                // `thread::Builder` (no call parens on the path tail).
                if w == "Builder"
                    && !thread_exempt
                    && path_qualifier_before(&toks, i).ends_with("thread")
                {
                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                        f.sources.push(SourceSite {
                            line,
                            kind: SourceKind::ThreadSpawn,
                            what: "thread::Builder".to_string(),
                        });
                    }
                }
                i += 1;
            }
        }
    }
    out
}

/// The innermost enclosing function, if any (a pending fn header counts
/// so signature-level sources attribute correctly).
fn current_fn<'a>(
    stack: &[Scope],
    pend_fn: Option<usize>,
    out: &'a mut FileExtract,
) -> Option<&'a mut FnItem> {
    if let Some(fi) = pend_fn {
        return out.fns.get_mut(fi);
    }
    let fi = stack.iter().rev().find_map(|s| s.fn_idx)?;
    out.fns.get_mut(fi)
}

/// Full scope prefix (module + mods + type + enclosing fns) and the
/// innermost type name.
fn scope_context(module: &str, stack: &[Scope]) -> (String, Option<String>) {
    let mut parts = vec![module.to_string()];
    let mut self_type = None;
    for s in stack {
        parts.push(s.name.clone());
        if s.kind == ScopeKind::Type {
            self_type = Some(s.name.clone());
        }
    }
    (parts.join("::"), self_type)
}

/// Module path including inline `mod` scopes (but not type/fn scopes).
fn module_of(module: &str, stack: &[Scope]) -> String {
    let mut parts = vec![module.to_string()];
    for s in stack {
        if s.kind == ScopeKind::Mod {
            parts.push(s.name.clone());
        }
    }
    parts.join("::")
}

/// The receiver identifier for the method call whose `.` is at `dot`:
/// walks back over one balanced `(..)`/`[..]` group and returns the
/// identifier found (`slots` for `slots[i].lock()`).
fn receiver_before(toks: &[(Tok, usize)], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    // Balance back over a trailing call/index group.
    let close = match &toks[j].0 {
        Tok::P(')') => Some(('(', ')')),
        Tok::P(']') => Some(('[', ']')),
        _ => None,
    };
    if let Some((open, close)) = close {
        let mut depth = 1;
        while depth > 0 {
            j = j.checked_sub(1)?;
            match &toks[j].0 {
                Tok::P(c) if *c == close => depth += 1,
                Tok::P(c) if *c == open => depth -= 1,
                _ => {}
            }
        }
        j = j.checked_sub(1)?;
    }
    match &toks[j].0 {
        Tok::I(w) => Some(w.clone()),
        _ => None,
    }
}

/// The `a::b` qualifier preceding the call-name token at `at`.
fn path_qualifier_before(toks: &[(Tok, usize)], at: usize) -> String {
    let mut segs: Vec<String> = Vec::new();
    let mut j = at;
    while j >= 2 && toks[j - 1].0 == Tok::P(':') && toks[j - 2].0 == Tok::P(':') {
        if j >= 3 {
            if let Tok::I(w) = &toks[j - 3].0 {
                segs.push(w.clone());
                j -= 3;
                continue;
            }
        }
        break;
    }
    segs.reverse();
    segs.join("::")
}

/// Whether the statement containing token `at` starts with `let`
/// (scanning back to the previous `;`, `{`, or `}`).
fn binds_with_let(toks: &[(Tok, usize)], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        match &toks[j].0 {
            Tok::P(';') | Tok::P('{') | Tok::P('}') => {
                return matches!(&toks.get(j + 1).map(|(t, _)| t), Some(Tok::I(w)) if w == "let");
            }
            _ => {}
        }
    }
    matches!(&toks.first().map(|(t, _)| t), Some(Tok::I(w)) if w == "let")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::sanitize;

    fn ex(rel: &str, src: &str) -> FileExtract {
        let lines = sanitize(src);
        let skip = vec![false; lines.len()];
        extract(rel, &lines, &skip)
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_path("crates/spec/src/deps.rs"), "spec::deps");
        assert_eq!(
            module_path("crates/core/src/obs/events.rs"),
            "core::obs::events"
        );
        assert_eq!(module_path("crates/core/src/obs/mod.rs"), "core::obs");
        assert_eq!(module_path("crates/core/src/lib.rs"), "core");
        assert_eq!(
            module_path("crates/bench/src/bin/figures.rs"),
            "bench::bin::figures"
        );
        assert_eq!(module_path("src/lib.rs"), "specweb");
        assert_eq!(module_path("src/bin/specweb.rs"), "specweb::bin::specweb");
        assert_eq!(
            module_path("examples/quickstart.rs"),
            "examples::quickstart"
        );
    }

    #[test]
    fn fns_impls_and_mods_get_qualified_names() {
        let src = "
mod inner {
    pub struct Thing;
    impl Thing {
        pub fn make() -> Thing { helper() }
    }
    fn helper() -> Thing { Thing }
}
impl fmt::Display for Wide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write(f) }
}
pub fn top() { inner::helper(); }
";
        let fx = ex("crates/x/src/lib.rs", src);
        let names: Vec<&str> = fx.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(
            names,
            [
                "x::inner::Thing::make",
                "x::inner::helper",
                "x::Wide::fmt",
                "x::top"
            ],
            "{fx:#?}"
        );
        assert!(fx.impl_types.contains("Thing"));
        assert!(fx.impl_types.contains("Wide"));
        let top = fx.fns.iter().find(|f| f.name == "top").unwrap();
        assert_eq!(top.calls.len(), 1);
        assert_eq!(top.calls[0].qualifier, "inner");
        assert_eq!(top.calls[0].name, "helper");
    }

    #[test]
    fn method_and_path_calls_are_distinguished() {
        let src = "fn f(x: &W) { x.step(); self.tick(); W::boot(); a::b::go(); }";
        let fx = ex("crates/x/src/lib.rs", src);
        let calls = &fx.fns[0].calls;
        assert!(calls
            .iter()
            .any(|c| c.name == "step" && c.is_method && !c.on_self));
        assert!(calls.iter().any(|c| c.name == "tick" && c.on_self));
        assert!(calls.iter().any(|c| c.name == "boot" && c.qualifier == "W"));
        assert!(calls
            .iter()
            .any(|c| c.name == "go" && c.qualifier == "a::b"));
    }

    #[test]
    fn hash_iteration_is_a_source_but_lookup_is_not() {
        let src = "
fn lookup(m: &HashMap<u32, u32>) -> Option<u32> { m.get(&1).copied() }
fn leak(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = m.keys().copied().collect();
    for (a, b) in &m2 { v.push(*a + *b); }
    v
}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let lookup = fx.fns.iter().find(|f| f.name == "lookup").unwrap();
        assert!(
            lookup
                .sources
                .iter()
                .all(|s| s.kind != SourceKind::HashIter),
            "{lookup:#?}"
        );
        let leak = fx.fns.iter().find(|f| f.name == "leak").unwrap();
        let iters: Vec<&SourceSite> = leak
            .sources
            .iter()
            .filter(|s| s.kind == SourceKind::HashIter)
            .collect();
        // `m.keys()` trips; the for-loop over `m2` does not (m2 is not
        // hash-typed in this file).
        assert_eq!(iters.len(), 1, "{leak:#?}");
        assert_eq!(iters[0].what, "m");
    }

    #[test]
    fn for_loop_over_hash_field_is_a_source() {
        let src = "
struct B { follows: HashMap<(u32, u32), u64> }
impl B {
    fn build(&self) { for (k, n) in &self.follows { use_it(k, n); } }
}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let build = fx.fns.iter().find(|f| f.name == "build").unwrap();
        assert!(
            build
                .sources
                .iter()
                .any(|s| s.kind == SourceKind::HashIter && s.what == "follows"),
            "{build:#?}"
        );
    }

    #[test]
    fn wall_clock_rng_thread_and_panic_sources() {
        let src = "
fn f() {
    let t = Instant::now();
    let st = SystemTime::now();
    let r = thread_rng();
    std::thread::spawn(|| {});
    let v = x.unwrap();
    let w = y.expect( );
}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let kinds: Vec<SourceKind> = fx.fns[0].sources.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SourceKind::WallClock));
        assert!(kinds.contains(&SourceKind::Rng));
        assert!(kinds.contains(&SourceKind::ThreadSpawn));
        assert_eq!(
            kinds.iter().filter(|&&k| k == SourceKind::Panic).count(),
            2,
            "{:#?}",
            fx.fns[0].sources
        );
        // SystemTime::now yields both the ident hit and the call-path
        // hit at the same site; the graph dedups per line.
        assert!(
            kinds
                .iter()
                .filter(|&&k| k == SourceKind::WallClock)
                .count()
                >= 2
        );
    }

    #[test]
    fn lock_sites_record_receiver_and_let_binding() {
        let src = "
fn f(&self) {
    let g = self.inner.lock();
    *slots[i].lock().unwrap_or_else(e) = 1;
}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let locks = &fx.fns[0].locks;
        assert_eq!(locks.len(), 2, "{locks:#?}");
        assert_eq!(locks[0].name, "inner");
        assert!(locks[0].held);
        assert_eq!(locks[1].name, "slots");
        assert!(!locks[1].held);
    }

    #[test]
    fn closure_bodies_attribute_to_the_defining_fn() {
        let src = "fn f() { pool.map_indexed(&xs, |_, x| helper(x)); }";
        let fx = ex("crates/x/src/lib.rs", src);
        assert!(fx.fns[0].calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn trait_default_methods_are_methods_of_the_trait() {
        let src = "trait T { fn req(&self); fn has_default(&self) { self.req(); } }";
        let fx = ex("crates/x/src/lib.rs", src);
        let names: Vec<&str> = fx.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, ["x::T::req", "x::T::has_default"]);
        assert_eq!(fx.fns[1].self_type.as_deref(), Some("T"));
    }

    #[test]
    fn fn_pointer_types_and_sig_impls_do_not_confuse_scopes() {
        let src = "
fn f(cb: fn(u32) -> u32, it: impl Fn() -> u32) -> u32 { cb(1) + it() }
fn g() {}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let names: Vec<&str> = fx.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, ["x::f", "x::g"], "{fx:#?}");
    }

    #[test]
    fn index_sites_are_counted_not_reported() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] + v[i + 1] }";
        let fx = ex("crates/x/src/lib.rs", src);
        assert_eq!(fx.fns[0].index_sites, 2);
        assert!(fx.fns[0].sources.is_empty());
    }
}
