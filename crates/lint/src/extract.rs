//! Item / call-site extraction over the sanitized token stream.
//!
//! The second lint engine (DESIGN §9) needs a whole-workspace call
//! graph, but the vendored-deps constraint rules out `syn`. This module
//! is the std-only middle ground: it tokenizes the per-line code
//! channel produced by [`crate::lexer::sanitize`] and runs a small
//! state machine that recognizes
//!
//! * `mod` nesting, `impl`/`trait` blocks, and `fn` items (including
//!   nested fns), yielding a qualified name per function such as
//!   `spec::deps::DepMatrix::closure`;
//! * call sites — free calls (`helper(..)`), path calls
//!   (`module::helper(..)`, `Type::method(..)`), and method calls
//!   (`x.method(..)`) — attributed to the innermost enclosing `fn`
//!   (closure bodies attribute to the defining fn, which is exactly the
//!   conservative choice taint analysis wants);
//! * nondeterminism / hazard **sources** per function: wall-clock
//!   reads, unseeded RNG constructors, hash-collection *iteration*
//!   (not mere use — see below), thread spawns, panic-capable ops
//!   (`unwrap`/`expect`; raw indexing is counted but not enforced),
//!   and lock acquisitions.
//!
//! Hash iteration is detected by first collecting, per file, the
//! identifiers declared with a hash-collection type (`x: HashMap<..>`
//! ascriptions — struct fields, params, lets — and
//! `let x = HashMap::new()`-style constructions), then flagging any
//! iteration of such a name (`for .. in x`, `x.iter()`, `x.keys()`,
//! `x.values()`, `x.drain(..)`, …). The approximation is documented in
//! DESIGN §9: names are file-scoped and matched textually, so a hash
//! map that escapes behind a generic `IntoIterator` is out of scope,
//! while a same-named non-hash binding in the same file may be flagged
//! spuriously (the `lint:allow` valve covers that direction).
//!
//! Everything here is deterministic by construction — no hashing, no
//! wall clock — so the serialized call graph is byte-identical for any
//! `--jobs` count.

use std::collections::BTreeSet;

use crate::lexer::Line;

/// The nondeterminism / hazard source classes the taint pass tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// `Instant::now` / `SystemTime` outside the obs wall channel.
    WallClock,
    /// `thread_rng` / `from_entropy`.
    Rng,
    /// Iteration over a hash-typed binding.
    HashIter,
    /// `thread::spawn` / `thread::Builder` / `thread::scope` outside
    /// the sanctioned owners.
    ThreadSpawn,
    /// `.unwrap()` / `.expect()`.
    Panic,
}

impl SourceKind {
    /// Stable identifier used in JSON and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            SourceKind::WallClock => "wall_clock",
            SourceKind::Rng => "unseeded_rng",
            SourceKind::HashIter => "hash_iter",
            SourceKind::ThreadSpawn => "thread_spawn",
            SourceKind::Panic => "panic",
        }
    }

    /// The legacy line-rule class this source corresponds to, shown in
    /// diagnostics so the G1 report reads as "D2, proven transitively".
    pub fn legacy_rule(self) -> &'static str {
        match self {
            SourceKind::WallClock => "D3",
            SourceKind::Rng => "D4",
            SourceKind::HashIter => "D2",
            SourceKind::ThreadSpawn => "D5",
            SourceKind::Panic => "S2",
        }
    }
}

/// One detected source site inside a function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceSite {
    /// 1-based line number.
    pub line: usize,
    /// Source class.
    pub kind: SourceKind,
    /// What tripped it (`follows` for a hash iteration, `unwrap` for a
    /// panic site, …).
    pub what: String,
}

/// Side-effect classes the purity engine tracks, beyond the
/// nondeterminism sources above. A function carrying (or reaching) one
/// of these is *effectful*: its work is observable outside its
/// arguments, so it can never be a shard-merge or replay function (G4)
/// and may not run inside a `core::par` worker closure (G5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EffectKind {
    /// File, socket, or std-stream IO (`fs::write`, `.write_all(..)`,
    /// `println!`, …).
    Io,
    /// Process-global state: environment, process control
    /// (`env::var`, `process::exit`, …).
    Global,
}

impl EffectKind {
    /// Stable identifier used in JSON and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            EffectKind::Io => "io",
            EffectKind::Global => "global",
        }
    }
}

/// One detected effect site inside a function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EffectSite {
    /// 1-based line number.
    pub line: usize,
    /// Effect class.
    pub kind: EffectKind,
    /// What tripped it (`fs::write`, `println!`, `write_all`, …).
    pub what: String,
    /// True when the site sits inside a `core::par` worker closure
    /// (see [`Call::in_par`]) — a direct G5 hit.
    pub in_par: bool,
}

/// One `use` declaration binding, flattened from the use tree:
/// `use a::b::{c, d as e, f::*};` yields three imports. Globs carry an
/// empty `alias`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Module path whose scope the `use` appears in (inline `mod`
    /// scopes included; fn-scoped `use`s attribute to the module,
    /// which over-approximates their scope — the sound direction).
    pub module: String,
    /// Path segments as written (`["std", "collections", "HashMap"]`).
    /// `crate`/`self`/`super` prefixes are kept verbatim; the resolver
    /// normalizes them against `module`.
    pub path: Vec<String>,
    /// The name this import binds in the module's scope: the last path
    /// segment, or the `as` rename. Empty for glob imports.
    pub alias: String,
    /// True for `use a::b::*;`.
    pub glob: bool,
    /// 1-based line of the binding.
    pub line: usize,
}

/// An unresolved call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee as written (the final path segment / method name).
    pub name: String,
    /// `a::b` for `a::b::name(..)`; empty for free and method calls.
    pub qualifier: String,
    /// True for `x.name(..)` / `self.name(..)` forms.
    pub is_method: bool,
    /// True specifically for `self.name(..)`.
    pub on_self: bool,
    /// True when the call site sits inside the argument list of a
    /// `core::par` dispatch (`map_indexed`/`try_map_indexed`/
    /// `par_map_indexed`) — i.e. inside a worker closure. G5 checks
    /// these calls against the purity classification.
    pub in_par: bool,
    /// 1-based line number.
    pub line: usize,
    /// Identifier roots per argument position (top-level commas of the
    /// argument list). The width engine maps these positionally onto
    /// the callee's parameters to propagate scale taint into calls.
    pub args: Vec<Vec<String>>,
}

/// Integer arithmetic operator classes the width engine tracks (W1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArithOp {
    /// `*` / `*=`.
    Mul,
    /// `+` / `+=`.
    Add,
    /// `<<` / `<<=`.
    Shl,
}

impl ArithOp {
    /// Operator as written, for diagnostics.
    pub fn sym(self) -> &'static str {
        match self {
            ArithOp::Mul => "*",
            ArithOp::Add => "+",
            ArithOp::Shl => "<<",
        }
    }
}

/// One unchecked integer arithmetic site (`a * b`, `a += b`, `n << k`).
/// `checked_*`/`saturating_*` calls are *not* arith sites — they are
/// counted separately as the safe form these sites should migrate to.
#[derive(Debug, Clone)]
pub struct ArithSite {
    /// 1-based line.
    pub line: usize,
    /// Operator class.
    pub op: ArithOp,
    /// True for the compound-assignment form (`+=`, `*=`, `<<=`).
    pub compound: bool,
    /// Identifier roots of the left operand.
    pub lhs: Vec<String>,
    /// Identifier roots of the right operand.
    pub rhs: Vec<String>,
}

/// One `as`-cast to a primitive numeric type. The token stream carries
/// no type information for the source expression, so the cast records
/// the *target* width plus the source identifiers; the width engine
/// treats a scale-tainted source as u64-wide (its seeds are 64-bit
/// counters) and flags narrowing targets (W2).
#[derive(Debug, Clone)]
pub struct CastSite {
    /// 1-based line.
    pub line: usize,
    /// Target primitive (`u32`, `usize`, `f64`, …).
    pub target: String,
    /// Identifier roots of the source expression.
    pub src: Vec<String>,
}

/// One capacity allocation: `with_capacity(n)` or `vec![x; n]` (W3).
#[derive(Debug, Clone)]
pub struct CapacitySite {
    /// 1-based line.
    pub line: usize,
    /// `with_capacity` or `vec![_; n]`.
    pub what: &'static str,
    /// Identifier roots of the size expression.
    pub args: Vec<String>,
}

/// One dataflow binding edge: `let names = rhs;`, a `for pat in rhs`
/// header, or a (compound) assignment. Taint in any `rhs` identifier
/// flows into every name in `names` — unless the rhs passes through a
/// width guard ([`is_width_guard`]), which kills the flow.
#[derive(Debug, Clone)]
pub struct FlowBind {
    /// 1-based line.
    pub line: usize,
    /// Bound names (pattern identifiers / assignment target root).
    pub names: Vec<String>,
    /// Identifier roots of the right-hand side.
    pub rhs: Vec<String>,
    /// True when the rhs is width-guarded (`checked_*`, `try_into`, …).
    pub guarded: bool,
}

/// Width-guard call names: their results are bounds-checked, saturated,
/// or fallible conversions, so scale taint does not flow through them.
/// This is the kill set that lets a `checked_mul` fix silence W1–W3.
pub fn is_width_guard(name: &str) -> bool {
    name.starts_with("checked_")
        || name.starts_with("saturating_")
        || matches!(name, "try_into" | "try_from" | "min" | "clamp")
}

/// Primitive numeric type names (cast targets worth recording).
const NUM_PRIMS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Lowercase primitive type names — never a value operand, so a `<` /
/// `>` beside one is a generic bracket, not a comparison.
fn prim_type(w: &str) -> bool {
    NUM_PRIMS.contains(&w) || matches!(w, "bool" | "str" | "char")
}

/// Cast targets narrower than the u64 scale domain. `usize`/`isize`
/// count: the portability floor is 32 bits, and the million-client
/// configs put scale products past 2^32 (DESIGN §14).
pub fn narrowing_target(t: &str) -> bool {
    matches!(
        t,
        "u8" | "u16" | "u32" | "i8" | "i16" | "i32" | "usize" | "isize"
    )
}

/// One lock acquisition (`recv.lock()`).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// The receiver's base identifier (`inner` for
    /// `self.inner.lock()`), the lock's identity for the G2 check.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// True when the guard is bound with `let` (can be held across
    /// later statements and calls); statement-temporary guards drop at
    /// the `;` and cannot participate in an ordering cycle.
    pub held: bool,
}

/// One extracted function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Fully qualified name: module path + enclosing type/fn names +
    /// the function name, `::`-joined.
    pub qname: String,
    /// Simple name.
    pub name: String,
    /// Enclosing module path (no type/fn segments).
    pub module: String,
    /// Enclosing `impl`/`trait` type name, when any.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True when the signature takes `&mut` (receiver or parameter):
    /// the function mutates caller-visible state through its arguments.
    /// Distinguishes *locally-mutating* from *pure* in the purity
    /// classification; neither is effectful.
    pub sig_mut: bool,
    /// True when the signature takes a `self` receiver. Associated fns
    /// without one (`Opts::parse()`-style constructors) can never be
    /// the target of a `recv.name(..)` method call, so the resolver's
    /// opaque-method fallback excludes them.
    pub has_self: bool,
    /// Unresolved call sites, in source order.
    pub calls: Vec<Call>,
    /// Detected sources, in source order.
    pub sources: Vec<SourceSite>,
    /// Detected effect sites (IO / globals), in source order.
    pub effects: Vec<EffectSite>,
    /// Count of raw index expressions (`x[i]`): recorded as a
    /// panic-capability signal in the graph JSON but not enforced by
    /// G3 (slice indexing is ubiquitous and mostly bounds-proven).
    pub index_sites: usize,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
    /// Parameter names in declaration order (`self` excluded), so the
    /// width engine can map caller argument taint positionally.
    pub params: Vec<String>,
    /// Dataflow binding edges (`let` / `for` / assignment), in order.
    pub binds: Vec<FlowBind>,
    /// Unchecked integer arithmetic sites (W1), in source order.
    pub arith: Vec<ArithSite>,
    /// `as`-casts to primitive numeric types (W2), in source order.
    pub casts: Vec<CastSite>,
    /// Capacity allocations (W3), in source order.
    pub caps: Vec<CapacitySite>,
    /// Count of `checked_*` / `saturating_*` call sites — the safe
    /// forms W1 migrates arithmetic toward, surfaced in `--stats`.
    pub checked_sites: usize,
    /// Identifiers that may flow into the return value: operands of
    /// `return` statements plus the trailing-expression idents of the
    /// body (an over-approximation; DESIGN §14).
    pub ret_idents: BTreeSet<String>,
    /// Identifiers with a visible dominating bound: compared against
    /// something (`<`/`>`/`<=`/`>=`), passed through `min`/`clamp`/
    /// `try_into`/`try_from`, asserted on, or reduced by `%`. A bounded
    /// tainted value does not fire W1–W3.
    pub bounded: BTreeSet<String>,
}

/// Extraction result for one file.
#[derive(Debug, Clone, Default)]
pub struct FileExtract {
    /// Workspace-relative path.
    pub rel: String,
    /// Module path derived from the file path (`spec::deps`).
    pub module: String,
    /// Extracted functions, in source order.
    pub fns: Vec<FnItem>,
    /// Types this file `impl`s or declares as traits.
    pub impl_types: BTreeSet<String>,
    /// `struct` / `enum` declarations. Together with [`Self::impl_types`]
    /// these are the type names *visible* to the engine; a type-shaped
    /// qualifier matching neither (a macro-generated id type, an
    /// unlisted foreign type) provably has no visible associated fns.
    pub decl_types: BTreeSet<String>,
    /// Flattened `use` declarations, in source order.
    pub imports: Vec<UseImport>,
    /// Identifiers declared with a float-bearing type annotation
    /// (`name: f64`, struct fields and params alike). The width engine
    /// skips W1 on float arithmetic, and the lexer can't see types —
    /// this name-global set is the approximation that stands in.
    pub float_names: BTreeSet<String>,
}

/// Maps a workspace-relative path to a module path: `crates/spec/src/
/// deps.rs` → `spec::deps`, `crates/bench/src/bin/figures.rs` →
/// `bench::bin::figures`, `src/lib.rs` → `specweb`, `examples/x.rs` →
/// `examples::x`.
pub fn module_path(rel: &str) -> String {
    let mut parts: Vec<&str> = rel.split('/').collect();
    let mut out: Vec<String> = Vec::new();
    if parts.first() == Some(&"crates") && parts.len() > 2 {
        out.push(parts[1].to_string());
        parts.drain(..2);
    } else if parts.first() == Some(&"examples") {
        out.push("examples".to_string());
        parts.remove(0);
    } else {
        out.push("specweb".to_string());
    }
    if parts.first() == Some(&"src") {
        parts.remove(0);
    }
    for (i, p) in parts.iter().enumerate() {
        let last = i + 1 == parts.len();
        let p = if last {
            p.strip_suffix(".rs").unwrap_or(p)
        } else {
            p
        };
        if last && (p == "lib" || p == "mod") {
            continue;
        }
        if last && p == "main" && out.len() == 1 {
            continue;
        }
        out.push(p.to_string());
    }
    out.join("::")
}

/// Method names that perform IO on their receiver (std `Read`/`Write`
/// and socket configuration). Matched on opaque receivers, so a
/// workspace method sharing one of these names is flagged too — a
/// sound over-approximation for the purity engine (extra effects can
/// only demote a classification toward effectful, never hide one).
const IO_METHODS: &[&str] = &[
    "accept",
    "flush",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "set_nonblocking",
    "sync_all",
    "write_all",
    "write_fmt",
];

/// Std-stream printing macros (each is an IO effect).
const IO_MACROS: &[&str] = &["dbg", "eprint", "eprintln", "print", "println"];

/// Type qualifiers whose associated fns open files or sockets.
const IO_TYPES: &[&str] = &[
    "File",
    "OpenOptions",
    "TcpListener",
    "TcpStream",
    "UdpSocket",
];

/// `core::par` dispatch points: a call inside their argument list runs
/// inside a worker closure (G5's scope).
const PAR_ENTRIES: &[&str] = &["map_indexed", "par_map_indexed", "try_map_indexed"];

/// Method names that iterate their receiver.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Keywords that look like call targets but are not.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "let", "fn", "impl", "mod", "struct",
    "enum", "trait", "use", "pub", "const", "static", "type", "where", "unsafe", "as", "in", "ref",
    "move", "dyn", "crate", "super", "self", "Self", "break", "continue", "async", "await", "box",
];

fn is_keyword(w: &str) -> bool {
    KEYWORDS.contains(&w)
}

/// One token of the sanitized code channel.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Identifier (never a lifetime; those are skipped).
    I(String),
    /// Single punctuation character.
    P(char),
}

/// Tokenizes sanitized lines, skipping `skip`-masked (test) regions,
/// lifetimes, blanked literal bodies, and numeric literals. Returns
/// `(token, 1-based line)` pairs.
fn tokenize(lines: &[Line], skip: &[bool]) -> Vec<(Tok, usize)> {
    let mut toks = Vec::new();
    let mut in_str = false;
    for (idx, line) in lines.iter().enumerate() {
        if skip.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let chars: Vec<char> = line.code.chars().collect();
        let n = chars.len();
        let mut i = 0;
        if in_str {
            // Inside a blanked multi-line string: skip to its close.
            while i < n && chars[i] != '"' {
                i += 1;
            }
            if i < n {
                in_str = false;
                i += 1; // consume the closing quote
            } else {
                continue;
            }
        }
        while i < n {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c == '"' {
                // Blanked string body: skip to the close (or carry the
                // open state to the next line).
                i += 1;
                while i < n && chars[i] != '"' {
                    i += 1;
                }
                if i < n {
                    i += 1;
                } else {
                    in_str = true;
                }
            } else if c == '\'' {
                // Lifetime (`'a`) or blanked char literal (`' '`).
                i += 1;
                if i < n && (chars[i].is_ascii_alphabetic() || chars[i] == '_') {
                    while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    // A closing quote means this was a char literal
                    // whose (blanked) body looked like an identifier.
                    if i < n && chars[i] == '\'' {
                        i += 1;
                    }
                } else {
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    if i < n {
                        i += 1;
                    }
                }
            } else if c.is_ascii_digit() {
                // Numeric literal. Integer literals stay invisible (the
                // positional walks rely on commas, not operands), but a
                // float-shaped literal emits a synthetic `f64` ident so
                // the width engine can tell `x * 100.0` from `x * 100`.
                let start = i;
                i += 1;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let run: String = chars[start..i].iter().collect();
                let radix_prefixed =
                    run.starts_with("0x") || run.starts_with("0b") || run.starts_with("0o");
                let mut float = !radix_prefixed
                    && (run.ends_with("f64")
                        || run.ends_with("f32")
                        || run.contains('e')
                        || run.contains('E'));
                if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    // `100.0` — consume the fractional run too (its
                    // suffix/exponent rides along in the alnum walk).
                    float = true;
                    i += 1;
                    while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                if float {
                    toks.push((Tok::I("f64".to_string()), idx + 1));
                }
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let mut word: String = chars[start..i].iter().collect();
                // Raw identifier (`r#type`, `r#fn`): keep the whole
                // `r#ident` as one token so it is never mistaken for
                // the keyword it escapes, and definition/call sites
                // agree on the name.
                if word == "r"
                    && i + 1 < n
                    && chars[i] == '#'
                    && (chars[i + 1].is_ascii_alphabetic() || chars[i + 1] == '_')
                {
                    i += 1; // consume `#`
                    let rstart = i;
                    while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    word.push('#');
                    word.extend(&chars[rstart..i]);
                }
                toks.push((Tok::I(word), idx + 1));
            } else {
                toks.push((Tok::P(c), idx + 1));
                i += 1;
            }
        }
    }
    toks
}

/// Collects the identifiers this file declares with a hash-collection
/// type: `name: HashMap<..>` ascriptions (fields, params, lets) and
/// `let name = HashMap::new()`-style constructions.
fn hash_typed_names(lines: &[Line], skip: &[bool]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (idx, line) in lines.iter().enumerate() {
        if skip.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let code = &line.code;
        for needle in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(needle) {
                let at = from + pos;
                from = at + needle.len();
                if let Some(name) = declared_name_before(code, at) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Given `code[..at]` ending just before a `HashMap`/`HashSet` token,
/// recovers the identifier being declared, for both ascription
/// (`name: [&mut ]Hash..`) and construction (`let [mut] name = [path::]
/// Hash..`) forms.
fn declared_name_before(code: &str, at: usize) -> Option<String> {
    let mut pre = code[..at].trim_end();
    // Strip a leading path (`std::collections::`).
    loop {
        let stripped = pre.strip_suffix("::").map(str::trim_end);
        match stripped {
            Some(rest) => {
                let ident_len = rest
                    .chars()
                    .rev()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .count();
                pre = rest[..rest.len() - ident_len].trim_end();
            }
            None => break,
        }
    }
    // Reference / mutability sigils in ascriptions.
    while let Some(rest) = pre
        .strip_suffix('&')
        .or_else(|| pre.strip_suffix("mut").filter(|r| !ends_ident(r)))
    {
        pre = rest.trim_end();
    }
    let pre = if let Some(rest) = pre.strip_suffix(':') {
        // `name: HashMap<..>` — but not a path `x::HashMap` (handled
        // above) and not a pattern-match arm `..:`.
        rest.trim_end()
    } else if let Some(rest) = pre.strip_suffix('=') {
        // `let [mut] name = HashMap::new()`; `==`/`=>` never precede a
        // type name, so a bare `=` suffix is an assignment.
        rest.trim_end_matches(['=', '>']).trim_end()
    } else {
        return None;
    };
    let name: String = pre
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

fn ends_ident(s: &str) -> bool {
    s.chars()
        .last()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ScopeKind {
    Mod,
    /// `impl` block or `trait` definition.
    Type,
    Fn,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    name: String,
    /// Brace depth immediately after this scope's `{`.
    depth: usize,
    /// Index into `FileExtract::fns` for `Fn` scopes.
    fn_idx: Option<usize>,
    /// For `Fn` scopes: identifiers seen since the last `;` at this
    /// scope's own depth. Whatever remains when the scope closes is the
    /// trailing expression — flushed into `FnItem::ret_idents`.
    tail: BTreeSet<String>,
}

/// Extracts items, calls, and sources from one sanitized file.
///
/// `skip` is the test-region mask (same length as `lines`).
pub fn extract(rel: &str, lines: &[Line], skip: &[bool]) -> FileExtract {
    let module = module_path(rel);
    // The sanctioned-owner whitelists carry over from the line engine:
    // the obs wall channel may read real time, and the scoped pool /
    // server may spawn threads (DESIGN §7, §9). Sources there are
    // policy, not hazards.
    let wall_exempt = crate::rules::path_has_prefix(rel, crate::rules::D3_EXEMPT);
    let thread_exempt = crate::rules::path_has_prefix(rel, crate::rules::D5_EXEMPT);
    let hash_names = hash_typed_names(lines, skip);
    let toks = tokenize(lines, skip);
    let mut out = FileExtract {
        rel: rel.to_string(),
        module: module.clone(),
        ..FileExtract::default()
    };

    let mut stack: Vec<Scope> = Vec::new();
    let mut depth: usize = 0;
    // Pending item headers between their keyword and their `{` / `;`.
    let mut pend_fn: Option<usize> = None; // index into out.fns
    let mut pend_named: Option<(ScopeKind, String)> = None; // mod / trait
    let mut impl_hdr: Option<ImplHdr> = None;
    // For-loop header capture: Some(seen_in) while inside one.
    let mut for_hdr: Option<bool> = None;
    // Paren nesting, and the depths at which a `core::par` dispatch's
    // argument list opened: while the innermost entry is active, call
    // sites run inside a worker closure (G5's scope).
    let mut paren_depth: usize = 0;
    let mut par_regions: Vec<usize> = Vec::new();
    // Paren depth of a pending fn's parameter list: idents followed by
    // a single `:` at exactly this depth are parameter names.
    let mut sig_parens: Option<usize> = None;

    #[derive(Debug, Default)]
    struct ImplHdr {
        name: Option<String>,
        after_for: bool,
        angle: i32,
        in_where: bool,
    }

    let n = toks.len();
    let mut i = 0;
    while i < n {
        let (tok, line) = &toks[i];
        let line = *line;
        match tok {
            Tok::P('{') => {
                depth += 1;
                if let Some(fi) = pend_fn.take() {
                    stack.push(Scope {
                        kind: ScopeKind::Fn,
                        name: out.fns[fi].name.clone(),
                        depth,
                        fn_idx: Some(fi),
                        tail: BTreeSet::new(),
                    });
                    sig_parens = None;
                } else if let Some(hdr) = impl_hdr.take() {
                    let name = hdr.name.unwrap_or_else(|| "?".to_string());
                    out.impl_types.insert(name.clone());
                    stack.push(Scope {
                        kind: ScopeKind::Type,
                        name,
                        depth,
                        fn_idx: None,
                        tail: BTreeSet::new(),
                    });
                } else if let Some((kind, name)) = pend_named.take() {
                    if kind == ScopeKind::Type {
                        out.impl_types.insert(name.clone());
                    }
                    stack.push(Scope {
                        kind,
                        name,
                        depth,
                        fn_idx: None,
                        tail: BTreeSet::new(),
                    });
                }
                for_hdr = None;
                i += 1;
            }
            Tok::P('}') => {
                depth = depth.saturating_sub(1);
                while stack.last().is_some_and(|s| s.depth > depth) {
                    // A closing fn scope flushes its trailing-expression
                    // buffer into the return-flow set (over-approximate:
                    // any ident after the body's last top-level `;`).
                    if let Some(s) = stack.pop() {
                        if let Some(fi) = s.fn_idx {
                            out.fns[fi].ret_idents.extend(s.tail);
                        }
                    }
                }
                i += 1;
            }
            Tok::P(';') => {
                pend_fn = None;
                pend_named = None;
                impl_hdr = None;
                sig_parens = None;
                // A statement boundary at the innermost fn's own depth
                // resets its trailing-expression buffer.
                if let Some(s) = stack.iter_mut().rev().find(|s| s.fn_idx.is_some()) {
                    if s.depth == depth {
                        s.tail.clear();
                    }
                }
                i += 1;
            }
            Tok::P('<') if impl_hdr.is_some() => {
                if let Some(h) = impl_hdr.as_mut() {
                    h.angle += 1;
                }
                i += 1;
            }
            Tok::P('>') if impl_hdr.is_some() => {
                if let Some(h) = impl_hdr.as_mut() {
                    h.angle = (h.angle - 1).max(0);
                }
                i += 1;
            }
            Tok::P('[') => {
                // Raw index expression: `x[..]` / `f(..)[..]`.
                if i > 0 {
                    let indexing = match &toks[i - 1].0 {
                        Tok::I(w) => !is_keyword(w),
                        Tok::P(')') | Tok::P(']') => true,
                        _ => false,
                    };
                    if indexing {
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            f.index_sites += 1;
                        }
                    }
                }
                i += 1;
            }
            Tok::P('(') => {
                // Turbofish call (`helper::<u64>(..)` / `x.collect::<V>(..)`):
                // the name token is not adjacent to the `(`, so the
                // identifier arm below misses it.
                if let Some(ni) = turbofish_call_before(&toks, i) {
                    if let Tok::I(name) = toks[ni].0.clone() {
                        let cline = toks[ni].1;
                        let prev_dot = ni > 0 && toks[ni - 1].0 == Tok::P('.');
                        let (is_method, on_self, qualifier) = if prev_dot {
                            let recv = receiver_before(&toks, ni - 1);
                            (true, recv.as_deref() == Some("self"), String::new())
                        } else {
                            (false, false, path_qualifier_before(&toks, ni))
                        };
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            f.calls.push(Call {
                                name,
                                qualifier,
                                is_method,
                                on_self,
                                in_par: !par_regions.is_empty(),
                                line: cline,
                                args: call_args(&toks, i),
                            });
                        }
                    }
                }
                paren_depth += 1;
                // First paren of a pending fn header opens the
                // parameter list (generic-bound parens like `Fn(u32)`
                // come before it only inside `<..>`, where a parameter
                // ident is never followed by a single `:`).
                let in_sig = pend_fn.is_some() && stack.last().is_none_or(|s| s.fn_idx != pend_fn);
                if in_sig && sig_parens.is_none() {
                    sig_parens = Some(paren_depth);
                }
                i += 1;
            }
            Tok::P(')') => {
                paren_depth = paren_depth.saturating_sub(1);
                while par_regions.last().is_some_and(|d| *d > paren_depth) {
                    par_regions.pop();
                }
                i += 1;
            }
            // `<<` / `<<=` shift site (W1). A type-shaped left ident is
            // the qualified-path sugar `Foo<<A as B>::C>` — generics,
            // not a shift.
            Tok::P('<')
                if toks.get(i + 1).map(|(t, _)| t) == Some(&Tok::P('<'))
                    && i > 0
                    && match &toks[i - 1].0 {
                        Tok::I(w) => !is_keyword(w) && !upper_shaped(w),
                        Tok::P(')') | Tok::P(']') => true,
                        _ => false,
                    } =>
            {
                let in_sig = pend_fn.is_some() && stack.last().is_none_or(|s| s.fn_idx != pend_fn);
                let compound = toks.get(i + 2).map(|(t, _)| t) == Some(&Tok::P('='));
                if !in_sig {
                    let lhs = operand_before(&toks, i);
                    let (rhs, guarded) = if compound {
                        idents_until_semi(&toks, i + 3)
                    } else {
                        (operand_after(&toks, i + 2), false)
                    };
                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                        f.arith.push(ArithSite {
                            line,
                            op: ArithOp::Shl,
                            compound,
                            lhs: lhs.clone(),
                            rhs: rhs.clone(),
                        });
                        if compound {
                            f.binds.push(FlowBind {
                                line,
                                names: lhs,
                                rhs,
                                guarded,
                            });
                        }
                    }
                }
                i += if compound { 3 } else { 2 };
            }
            // A comparison (`x < cap`, `limit >= n`) marks both sides
            // bounded: the branch dominates the uses W1–W3 worry about.
            // Generic brackets are mostly excluded by the type-shaped /
            // keyword / primitive checks (`Vec<usize> = ..` would
            // otherwise read as `usize >= ..`); survivors only add
            // never-tainted names.
            Tok::P('<') | Tok::P('>')
                if impl_hdr.is_none()
                    && i > 0
                    && match &toks[i - 1].0 {
                        Tok::I(w) => !is_keyword(w) && !upper_shaped(w) && !prim_type(w),
                        Tok::P(')') | Tok::P(']') => true,
                        _ => false,
                    } =>
            {
                let in_sig = pend_fn.is_some() && stack.last().is_none_or(|s| s.fn_idx != pend_fn);
                if !in_sig {
                    let after = if toks.get(i + 1).map(|(t, _)| t) == Some(&Tok::P('=')) {
                        i + 2
                    } else {
                        i + 1
                    };
                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                        f.bounded.extend(operand_before(&toks, i));
                        f.bounded.extend(operand_after(&toks, after));
                    }
                }
                i += 1;
            }
            // Integer `*` / `+` (and `*=` / `+=`) arithmetic sites (W1).
            // Binary only: a preceding operand distinguishes them from
            // deref / unary / generic-bound positions.
            Tok::P(c @ ('*' | '+'))
                if impl_hdr.is_none()
                    && i > 0
                    && match &toks[i - 1].0 {
                        Tok::I(w) => !is_keyword(w),
                        Tok::P(')') | Tok::P(']') => true,
                        _ => false,
                    } =>
            {
                let in_sig = pend_fn.is_some() && stack.last().is_none_or(|s| s.fn_idx != pend_fn);
                if !in_sig {
                    let compound = toks.get(i + 1).map(|(t, _)| t) == Some(&Tok::P('='));
                    let lhs = operand_before(&toks, i);
                    let (rhs, guarded) = if compound {
                        idents_until_semi(&toks, i + 2)
                    } else {
                        (operand_after(&toks, i + 1), false)
                    };
                    let op = if *c == '*' {
                        ArithOp::Mul
                    } else {
                        ArithOp::Add
                    };
                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                        f.arith.push(ArithSite {
                            line,
                            op,
                            compound,
                            lhs: lhs.clone(),
                            rhs: rhs.clone(),
                        });
                        if compound {
                            f.binds.push(FlowBind {
                                line,
                                names: lhs,
                                rhs,
                                guarded,
                            });
                        }
                    }
                }
                i += 1;
            }
            // `x % m` bounds x below m.
            Tok::P('%')
                if i > 0
                    && match &toks[i - 1].0 {
                        Tok::I(w) => !is_keyword(w),
                        Tok::P(')') | Tok::P(']') => true,
                        _ => false,
                    } =>
            {
                if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                    f.bounded.extend(operand_before(&toks, i));
                }
                i += 1;
            }
            // Plain assignment `target = rhs;` is a flow bind. `let`
            // statements are recorded by the `let` arm; compound ops by
            // theirs; `==`/`=>`/`<=`-family operators never have an
            // identifier immediately before their `=`.
            Tok::P('=')
                if i > 0
                    && match &toks[i - 1].0 {
                        Tok::I(w) => !is_keyword(w),
                        Tok::P(']') => true,
                        _ => false,
                    }
                    && !matches!(
                        toks.get(i + 1).map(|(t, _)| t),
                        Some(&Tok::P('=')) | Some(&Tok::P('>'))
                    ) =>
            {
                let in_sig = pend_fn.is_some() && stack.last().is_none_or(|s| s.fn_idx != pend_fn);
                if !in_sig && !binds_with_let(&toks, i) {
                    let names = operand_before(&toks, i);
                    let (rhs, guarded) = idents_until_semi(&toks, i + 1);
                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                        f.binds.push(FlowBind {
                            line,
                            names,
                            rhs,
                            guarded,
                        });
                    }
                }
                i += 1;
            }
            Tok::P(_) => {
                i += 1;
            }
            Tok::I(w) => {
                // Impl-header capture consumes idents until `{`.
                if let Some(h) = impl_hdr.as_mut() {
                    if w == "for" {
                        h.after_for = true;
                        h.name = None;
                    } else if w == "where" {
                        h.in_where = true;
                    } else if h.angle == 0 && !h.in_where && (h.name.is_none() || !h.after_for) {
                        h.name = Some(w.clone());
                    }
                    i += 1;
                    continue;
                }
                // For-loop header: record iterated hash names.
                if let Some(seen_in) = for_hdr.as_mut() {
                    if w == "in" {
                        *seen_in = true;
                        i += 1;
                        continue;
                    }
                    if *seen_in
                        && hash_names.contains(w.as_str())
                        && toks.get(i + 1).map(|(t, _)| t) != Some(&Tok::P('('))
                    {
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            f.sources.push(SourceSite {
                                line,
                                kind: SourceKind::HashIter,
                                what: w.clone(),
                            });
                        }
                    }
                    // fall through: calls inside the header still count.
                }

                let next_is = |k: char| toks.get(i + 1).map(|(t, _)| t) == Some(&Tok::P(k));
                let in_fn_sig =
                    pend_fn.is_some() && stack.last().is_none_or(|s| s.fn_idx != pend_fn);

                // Trailing-expression buffer for return flow: whatever
                // identifiers remain when the fn scope closes are the
                // tail expression (flushed into `ret_idents` at `}`).
                if !in_fn_sig && !is_keyword(w) {
                    if let Some(s) = stack.iter_mut().rev().find(|s| s.fn_idx.is_some()) {
                        if s.tail.len() < 24 {
                            s.tail.insert(w.clone());
                        }
                    }
                }
                // Parameter name: `name:` (single colon) at exactly the
                // parameter-list paren depth of a pending fn header.
                if in_fn_sig
                    && sig_parens == Some(paren_depth)
                    && next_is(':')
                    && toks.get(i + 2).map(|(t, _)| t) != Some(&Tok::P(':'))
                    && (i == 0 || toks[i - 1].0 != Tok::P(':'))
                    && !is_keyword(w)
                    && !upper_shaped(w)
                {
                    if let Some(fi) = pend_fn {
                        out.fns[fi].params.push(w.clone());
                    }
                }
                // Float-typed declaration: `name: f64` (field, param or
                // let ascription). Scan a short window of the annotation
                // for a float primitive; the name joins the name-global
                // float set the width engine consults.
                if next_is(':')
                    && toks.get(i + 2).map(|(t, _)| t) != Some(&Tok::P(':'))
                    && (i == 0 || toks[i - 1].0 != Tok::P(':'))
                    && !is_keyword(w)
                    && !upper_shaped(w)
                {
                    let mut d: i64 = 0;
                    for (t, _) in toks.iter().skip(i + 2).take(10) {
                        match t {
                            Tok::P('<') | Tok::P('(') | Tok::P('[') => d += 1,
                            Tok::P('>') | Tok::P(')') | Tok::P(']') => {
                                if d == 0 {
                                    break;
                                }
                                d -= 1;
                            }
                            Tok::P(',') | Tok::P(';') | Tok::P('{') | Tok::P('=') if d == 0 => {
                                break;
                            }
                            Tok::I(t) if t == "f64" || t == "f32" => {
                                out.float_names.insert(w.clone());
                                break;
                            }
                            _ => {}
                        }
                    }
                }

                match w.as_str() {
                    "fn" => {
                        if let Some((Tok::I(name), _)) = toks.get(i + 1) {
                            if pend_fn.is_none() {
                                let (module_full, self_type) = scope_context(&module, &stack);
                                let qname = format!("{module_full}::{name}");
                                out.fns.push(FnItem {
                                    qname,
                                    name: name.clone(),
                                    module: module_of(&module, &stack),
                                    self_type,
                                    line,
                                    sig_mut: false,
                                    has_self: false,
                                    calls: Vec::new(),
                                    sources: Vec::new(),
                                    effects: Vec::new(),
                                    index_sites: 0,
                                    locks: Vec::new(),
                                    params: Vec::new(),
                                    binds: Vec::new(),
                                    arith: Vec::new(),
                                    casts: Vec::new(),
                                    caps: Vec::new(),
                                    checked_sites: 0,
                                    ret_idents: BTreeSet::new(),
                                    bounded: BTreeSet::new(),
                                });
                                pend_fn = Some(out.fns.len() - 1);
                            }
                            i += 2; // consume `fn` and the name
                            continue;
                        }
                        // `fn(..)` pointer type — not an item.
                        i += 1;
                        continue;
                    }
                    "mod" if pend_fn.is_none() => {
                        if let Some((Tok::I(name), _)) = toks.get(i + 1) {
                            pend_named = Some((ScopeKind::Mod, name.clone()));
                            i += 2;
                            continue;
                        }
                        i += 1;
                        continue;
                    }
                    "trait" if pend_fn.is_none() => {
                        if let Some((Tok::I(name), _)) = toks.get(i + 1) {
                            pend_named = Some((ScopeKind::Type, name.clone()));
                            i += 2;
                            continue;
                        }
                        i += 1;
                        continue;
                    }
                    "struct" | "enum" if pend_fn.is_none() => {
                        if let Some((Tok::I(name), _)) = toks.get(i + 1) {
                            out.decl_types.insert(name.clone());
                            i += 2;
                            continue;
                        }
                        i += 1;
                        continue;
                    }
                    "impl" if pend_fn.is_none() => {
                        impl_hdr = Some(ImplHdr::default());
                        i += 1;
                        continue;
                    }
                    "use" => {
                        // Parse the whole use tree here so its `{`/`}`
                        // never reach the scope tracker.
                        i = parse_use(&toks, i + 1, &module_of(&module, &stack), &mut out.imports);
                        continue;
                    }
                    "macro_rules" if next_is('!') => {
                        // A macro_rules! body is a template, not items:
                        // extracting its fns would mint phantom nodes
                        // with metavariable-mangled qnames (`$name` →
                        // `name`) that the fallback rung then wires into
                        // real call chains. Skip the balanced body; the
                        // expanded code is analyzed where it is visible.
                        let mut j = i + 2;
                        while j < n && toks[j].0 != Tok::P('{') {
                            j += 1;
                        }
                        let mut bal = 0usize;
                        while j < n {
                            match toks[j].0 {
                                Tok::P('{') => bal += 1,
                                Tok::P('}') => {
                                    bal -= 1;
                                    if bal == 0 {
                                        j += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        i = j;
                        continue;
                    }
                    "mut" if in_fn_sig && i > 0 && toks[i - 1].0 == Tok::P('&') => {
                        if let Some(fi) = pend_fn {
                            out.fns[fi].sig_mut = true;
                        }
                        i += 1;
                        continue;
                    }
                    // A `self` receiver: `self` followed by `,` / `)`, or
                    // a typed receiver `self: Box<Self>` (single colon).
                    // `self::Path` in a parameter type has `::` and is
                    // not a receiver.
                    "self" if in_fn_sig => {
                        let next_single_colon = toks.get(i + 1).map(|(t, _)| t)
                            == Some(&Tok::P(':'))
                            && toks.get(i + 2).map(|(t, _)| t) != Some(&Tok::P(':'));
                        if (next_is(',') || next_is(')') || next_single_colon) && pend_fn.is_some()
                        {
                            if let Some(fi) = pend_fn {
                                out.fns[fi].has_self = true;
                            }
                        }
                        i += 1;
                        continue;
                    }
                    "for" if !in_fn_sig => {
                        for_hdr = Some(false);
                        // Flow bind: `for names in rhs {`. Ctor/type
                        // segments in the pattern are skipped; taint in
                        // the iterated expression flows to the names.
                        let mut names = Vec::new();
                        let mut j = i + 1;
                        let mut budget = 40usize;
                        while let Some((t, _)) = toks.get(j) {
                            if budget == 0 {
                                break;
                            }
                            budget -= 1;
                            match t {
                                Tok::I(w2) if w2 == "in" => break,
                                Tok::P('{') | Tok::P(';') => {
                                    names.clear();
                                    break;
                                }
                                Tok::I(w2)
                                    if !is_keyword(w2) && !upper_shaped(w2) && names.len() < 6 =>
                                {
                                    push_unique(&mut names, w2);
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        if !names.is_empty() {
                            let mut rhs = Vec::new();
                            let mut guarded = false;
                            let mut k = j + 1;
                            let mut budget = 60usize;
                            while let Some((t, _)) = toks.get(k) {
                                if budget == 0 || matches!(t, Tok::P('{') | Tok::P(';')) {
                                    break;
                                }
                                budget -= 1;
                                if let Tok::I(w2) = t {
                                    if !is_keyword(w2) {
                                        guarded |= is_width_guard(w2);
                                        if rhs.len() < 12 {
                                            push_unique(&mut rhs, w2);
                                        }
                                    }
                                }
                                k += 1;
                            }
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.binds.push(FlowBind {
                                    line,
                                    names,
                                    rhs,
                                    guarded,
                                });
                            }
                        }
                        i += 1;
                        continue;
                    }
                    "let" if !in_fn_sig => {
                        // Flow bind: `let names(: ty)? = rhs;`. Pattern
                        // names are the lowercase idents (ctor segments
                        // like `Some` are type-shaped and skipped); rhs
                        // collection runs to the statement's `;`, over-
                        // approximating through struct literals and
                        // `if let` bodies (extra taint is the sound
                        // direction, DESIGN §14).
                        let mut names = Vec::new();
                        let mut j = i + 1;
                        let mut eq = None;
                        let mut budget = 40usize;
                        while let Some((t, _)) = toks.get(j) {
                            if budget == 0 {
                                break;
                            }
                            budget -= 1;
                            match t {
                                Tok::P(':') | Tok::P(';') | Tok::P('{') => break,
                                Tok::P('=') => {
                                    eq = Some(j);
                                    break;
                                }
                                Tok::I(w2)
                                    if !is_keyword(w2) && !upper_shaped(w2) && names.len() < 6 =>
                                {
                                    push_unique(&mut names, w2);
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        if eq.is_none() {
                            // Type ascription: skip the `: ty` to the
                            // binder `=` (assoc bindings `Bar = Baz`
                            // sit inside `<..>` and are bracket-nested;
                            // `->` arrows must not close a bracket).
                            let mut d = 0i32;
                            let mut budget = 60usize;
                            while let Some((t, _)) = toks.get(j) {
                                if budget == 0 {
                                    break;
                                }
                                budget -= 1;
                                match t {
                                    Tok::P('<') | Tok::P('(') | Tok::P('[') => d += 1,
                                    Tok::P('>') if j > 0 && toks[j - 1].0 != Tok::P('-') => d -= 1,
                                    Tok::P(')') | Tok::P(']') => d -= 1,
                                    Tok::P('=') if d <= 0 => {
                                        eq = Some(j);
                                        break;
                                    }
                                    Tok::P(';') | Tok::P('{') if d <= 0 => break,
                                    _ => {}
                                }
                                j += 1;
                            }
                        }
                        if let Some(e) = eq {
                            if !names.is_empty() {
                                let (rhs, guarded) = idents_until_semi(&toks, e + 1);
                                if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                    f.binds.push(FlowBind {
                                        line,
                                        names,
                                        rhs,
                                        guarded,
                                    });
                                }
                            }
                        }
                        i += 1;
                        continue;
                    }
                    "return" if !in_fn_sig => {
                        let (ids, _) = idents_until_semi(&toks, i + 1);
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            f.ret_idents.extend(ids);
                        }
                        i += 1;
                        continue;
                    }
                    "as" if !in_fn_sig => {
                        // `expr as prim` cast site (W2). `use .. as`
                        // renames are consumed by parse_use; a
                        // qualified-path `<A as Trait>` has a non-
                        // primitive target and falls through.
                        if let Some((Tok::I(t), _)) = toks.get(i + 1) {
                            if NUM_PRIMS.contains(&t.as_str()) {
                                let src = operand_before(&toks, i);
                                if !src.is_empty() {
                                    let target = t.clone();
                                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                        f.casts.push(CastSite { line, target, src });
                                    }
                                }
                            }
                        }
                        i += 1;
                        continue;
                    }
                    "vec"
                        if next_is('!')
                            && toks.get(i + 2).map(|(t, _)| t) == Some(&Tok::P('[')) =>
                    {
                        // `vec![elem; n]` capacity site (W3): the idents
                        // after the top-level `;` size the allocation.
                        let mut d = 1i32;
                        let mut j = i + 3;
                        let mut semi = None;
                        let mut budget = 200usize;
                        while j < n && d > 0 && budget > 0 {
                            budget -= 1;
                            match &toks[j].0 {
                                Tok::P('[') | Tok::P('(') | Tok::P('{') => d += 1,
                                Tok::P(']') | Tok::P(')') | Tok::P('}') => d -= 1,
                                Tok::P(';') if d == 1 => semi = Some(j),
                                _ => {}
                            }
                            j += 1;
                        }
                        if let Some(s) = semi {
                            let mut args = Vec::new();
                            for (t, _) in &toks[s + 1..j.saturating_sub(1).max(s + 1)] {
                                if let Tok::I(w2) = t {
                                    if !is_keyword(w2) && args.len() < 12 {
                                        push_unique(&mut args, w2);
                                    }
                                }
                            }
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.caps.push(CapacitySite {
                                    line,
                                    what: "vec![_; n]",
                                    args,
                                });
                            }
                        }
                        i += 1;
                        continue;
                    }
                    "assert" | "debug_assert"
                        if next_is('!')
                            && toks.get(i + 2).map(|(t, _)| t) == Some(&Tok::P('(')) =>
                    {
                        // Asserted identifiers count as bounded: the
                        // assert dominates every later use in the fn.
                        let ids: Vec<String> =
                            call_args(&toks, i + 2).into_iter().flatten().collect();
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            f.bounded.extend(ids);
                        }
                        i += 1;
                        continue;
                    }
                    _ => {}
                }

                // Source patterns on bare identifiers.
                let kind_hit = match w.as_str() {
                    "SystemTime" if !wall_exempt => Some((SourceKind::WallClock, w.clone())),
                    "thread_rng" | "from_entropy" => Some((SourceKind::Rng, w.clone())),
                    _ => None,
                };
                if let Some((kind, what)) = kind_hit {
                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                        f.sources.push(SourceSite { line, kind, what });
                    }
                }

                // Std-stream printing macros are IO effects. (`log!` is
                // deliberately absent: leveled obs logging is the
                // sanctioned observability channel, DESIGN §6.)
                if IO_MACROS.contains(&w.as_str()) && next_is('!') {
                    let in_par = !par_regions.is_empty();
                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                        f.effects.push(EffectSite {
                            line,
                            kind: EffectKind::Io,
                            what: format!("{w}!"),
                            in_par,
                        });
                    }
                }

                // Call site: identifier followed by `(` (macros have a
                // `!` in between and fall outside this pattern).
                if next_is('(') && !is_keyword(w) {
                    let prev_dot = i > 0 && toks[i - 1].0 == Tok::P('.');
                    if prev_dot {
                        // Method call `recv.w(..)`.
                        let recv = receiver_before(&toks, i - 1);
                        let on_self = recv.as_deref() == Some("self");
                        if ITER_METHODS.contains(&w.as_str()) {
                            if let Some(r) = recv.as_deref() {
                                if hash_names.contains(r) {
                                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                        f.sources.push(SourceSite {
                                            line,
                                            kind: SourceKind::HashIter,
                                            what: r.to_string(),
                                        });
                                    }
                                }
                            }
                        }
                        if w == "unwrap" || w == "expect" {
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.sources.push(SourceSite {
                                    line,
                                    kind: SourceKind::Panic,
                                    what: w.clone(),
                                });
                            }
                        }
                        if w == "lock" {
                            let name = recv.clone().unwrap_or_else(|| "?".to_string());
                            let held = binds_with_let(&toks, i);
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.locks.push(LockSite { name, line, held });
                            }
                        }
                        if IO_METHODS.contains(&w.as_str()) {
                            let in_par = !par_regions.is_empty();
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.effects.push(EffectSite {
                                    line,
                                    kind: EffectKind::Io,
                                    what: w.clone(),
                                    in_par,
                                });
                            }
                        }
                        let cargs = call_args(&toks, i + 1);
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            if w == "with_capacity" {
                                f.caps.push(CapacitySite {
                                    line,
                                    what: "with_capacity",
                                    args: cargs.iter().flatten().cloned().collect(),
                                });
                            }
                            if w.starts_with("checked_") || w.starts_with("saturating_") {
                                f.checked_sites += 1;
                            }
                            f.calls.push(Call {
                                name: w.clone(),
                                qualifier: String::new(),
                                is_method: true,
                                on_self,
                                in_par: !par_regions.is_empty(),
                                line,
                                args: cargs,
                            });
                        }
                    } else {
                        let qualifier = path_qualifier_before(&toks, i);
                        if !thread_exempt
                            && (qualifier == "thread" || qualifier.ends_with("::thread"))
                            && matches!(w.as_str(), "spawn" | "scope")
                        {
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.sources.push(SourceSite {
                                    line,
                                    kind: SourceKind::ThreadSpawn,
                                    what: format!("thread::{w}"),
                                });
                            }
                        }
                        if w == "now"
                            && !wall_exempt
                            && (qualifier == "Instant" || qualifier.ends_with("::Instant"))
                        {
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.sources.push(SourceSite {
                                    line,
                                    kind: SourceKind::WallClock,
                                    what: "Instant::now".to_string(),
                                });
                            }
                        }
                        // Effectful std paths: file/socket IO and
                        // process-global reads, by qualifier tail.
                        let qlast = qualifier.rsplit("::").next().unwrap_or("");
                        let effect = if qlast == "fs" {
                            Some((EffectKind::Io, format!("fs::{w}")))
                        } else if IO_TYPES.contains(&qlast) {
                            Some((EffectKind::Io, format!("{qlast}::{w}")))
                        } else if qlast == "io"
                            && matches!(w.as_str(), "stdin" | "stdout" | "stderr" | "copy")
                        {
                            Some((EffectKind::Io, format!("io::{w}")))
                        } else if qlast == "env" && matches!(w.as_str(), "set_var" | "remove_var") {
                            // Env *reads* (`env::var`) are deliberately not
                            // effects: the environment is constant for the
                            // life of the process, so a read returns the
                            // same value in every shard and every worker —
                            // it is configuration, like a CLI flag. Only
                            // mutation is a process-global effect.
                            Some((EffectKind::Global, format!("env::{w}")))
                        } else if qlast == "process" {
                            Some((EffectKind::Global, format!("process::{w}")))
                        } else {
                            None
                        };
                        if let Some((kind, what)) = effect {
                            let in_par = !par_regions.is_empty();
                            if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                                f.effects.push(EffectSite {
                                    line,
                                    kind,
                                    what,
                                    in_par,
                                });
                            }
                        }
                        let cargs = call_args(&toks, i + 1);
                        if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                            if w == "with_capacity" {
                                f.caps.push(CapacitySite {
                                    line,
                                    what: "with_capacity",
                                    args: cargs.iter().flatten().cloned().collect(),
                                });
                            }
                            if w.starts_with("checked_") || w.starts_with("saturating_") {
                                f.checked_sites += 1;
                            }
                            f.calls.push(Call {
                                name: w.clone(),
                                qualifier,
                                is_method: false,
                                on_self: false,
                                in_par: !par_regions.is_empty(),
                                line,
                                args: cargs,
                            });
                        }
                    }
                    // A `core::par` dispatch opens a worker-closure
                    // region covering its argument list.
                    if PAR_ENTRIES.contains(&w.as_str()) {
                        par_regions.push(paren_depth + 1);
                    }
                }
                // `thread::Builder` (no call parens on the path tail).
                if w == "Builder"
                    && !thread_exempt
                    && path_qualifier_before(&toks, i).ends_with("thread")
                {
                    if let Some(f) = current_fn(&stack, pend_fn, &mut out) {
                        f.sources.push(SourceSite {
                            line,
                            kind: SourceKind::ThreadSpawn,
                            what: "thread::Builder".to_string(),
                        });
                    }
                }
                i += 1;
            }
        }
    }
    out
}

/// The innermost enclosing function, if any (a pending fn header counts
/// so signature-level sources attribute correctly).
fn current_fn<'a>(
    stack: &[Scope],
    pend_fn: Option<usize>,
    out: &'a mut FileExtract,
) -> Option<&'a mut FnItem> {
    if let Some(fi) = pend_fn {
        return out.fns.get_mut(fi);
    }
    let fi = stack.iter().rev().find_map(|s| s.fn_idx)?;
    out.fns.get_mut(fi)
}

/// Full scope prefix (module + mods + type + enclosing fns) and the
/// innermost type name.
fn scope_context(module: &str, stack: &[Scope]) -> (String, Option<String>) {
    let mut parts = vec![module.to_string()];
    let mut self_type = None;
    for s in stack {
        parts.push(s.name.clone());
        if s.kind == ScopeKind::Type {
            self_type = Some(s.name.clone());
        }
    }
    (parts.join("::"), self_type)
}

/// Module path including inline `mod` scopes (but not type/fn scopes).
fn module_of(module: &str, stack: &[Scope]) -> String {
    let mut parts = vec![module.to_string()];
    for s in stack {
        if s.kind == ScopeKind::Mod {
            parts.push(s.name.clone());
        }
    }
    parts.join("::")
}

/// The receiver identifier for the method call whose `.` is at `dot`:
/// walks back over one balanced `(..)`/`[..]` group and returns the
/// identifier found (`slots` for `slots[i].lock()`).
fn receiver_before(toks: &[(Tok, usize)], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    // Balance back over a trailing call/index group.
    let close = match &toks[j].0 {
        Tok::P(')') => Some(('(', ')')),
        Tok::P(']') => Some(('[', ']')),
        _ => None,
    };
    if let Some((open, close)) = close {
        let mut depth = 1;
        while depth > 0 {
            j = j.checked_sub(1)?;
            match &toks[j].0 {
                Tok::P(c) if *c == close => depth += 1,
                Tok::P(c) if *c == open => depth -= 1,
                _ => {}
            }
        }
        j = j.checked_sub(1)?;
    }
    match &toks[j].0 {
        Tok::I(w) => Some(w.clone()),
        _ => None,
    }
}

/// The `a::b` qualifier preceding the call-name token at `at`. Walks
/// back over turbofish generic-argument groups, so `Vec::<u64>::new`
/// yields qualifier `Vec` rather than losing the path (which used to
/// degrade the call to an any-name `new`).
fn path_qualifier_before(toks: &[(Tok, usize)], at: usize) -> String {
    let mut segs: Vec<String> = Vec::new();
    let mut j = at;
    while j >= 2 && toks[j - 1].0 == Tok::P(':') && toks[j - 2].0 == Tok::P(':') {
        // `j - 2` is one past the previous path element; balance back
        // over a `::<..>` turbofish group when one precedes the `::`.
        let mut k = j - 2;
        if k >= 1 && toks[k - 1].0 == Tok::P('>') {
            let mut depth = 1usize;
            let mut m = k - 1;
            while let Some(prev) = m.checked_sub(1) {
                m = prev;
                match &toks[m].0 {
                    Tok::P('>') => depth += 1,
                    Tok::P('<') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if depth != 0 || m < 2 || toks[m - 1].0 != Tok::P(':') || toks[m - 2].0 != Tok::P(':') {
                // Not a turbofish (e.g. a `<T as Trait>::f` qualified
                // path, or expression `>`): stop, as before.
                break;
            }
            k = m - 2;
        }
        match k.checked_sub(1).map(|p| &toks[p].0) {
            Some(Tok::I(w)) => {
                segs.push(w.clone());
                j = k - 1;
            }
            _ => break,
        }
    }
    segs.reverse();
    segs.join("::")
}

/// Detects a turbofish call whose `(` is at `open` — `name::<T>(..)` —
/// and returns the index of the `name` token. The identifier arm of the
/// extractor only sees `name(`-adjacent calls, so without this the call
/// would be dropped entirely (a missed edge).
fn turbofish_call_before(toks: &[(Tok, usize)], open: usize) -> Option<usize> {
    let mut k = open.checked_sub(1)?;
    if toks[k].0 != Tok::P('>') {
        return None;
    }
    let mut depth = 1usize;
    while depth > 0 {
        k = k.checked_sub(1)?;
        match &toks[k].0 {
            Tok::P('>') => depth += 1,
            Tok::P('<') => depth -= 1,
            _ => {}
        }
    }
    // Require the `::` introducing the generic args, then the name.
    if k < 3 || toks[k - 1].0 != Tok::P(':') || toks[k - 2].0 != Tok::P(':') {
        return None;
    }
    match &toks[k - 3].0 {
        Tok::I(w) if !is_keyword(w) => Some(k - 3),
        _ => None,
    }
}

/// Parses the use tree following a `use` keyword (`i` points just past
/// it), flattening groups, renames, and globs into [`UseImport`]s for
/// `module`'s scope. Returns the token index just past the terminating
/// `;` (error recovery: end of stream).
fn parse_use(toks: &[(Tok, usize)], mut i: usize, module: &str, out: &mut Vec<UseImport>) -> usize {
    let n = toks.len();
    i = parse_use_tree(toks, i, &[], module, out);
    while i < n {
        if toks[i].0 == Tok::P(';') {
            return i + 1;
        }
        i += 1;
    }
    n
}

/// One branch of a use tree, rooted at path prefix `base`. Returns the
/// index just past the branch (before any `,` / `}` / `;`).
fn parse_use_tree(
    toks: &[(Tok, usize)],
    mut i: usize,
    base: &[String],
    module: &str,
    out: &mut Vec<UseImport>,
) -> usize {
    let n = toks.len();
    let mut path: Vec<String> = base.to_vec();
    loop {
        let Some((Tok::I(seg), line)) = toks.get(i) else {
            return i; // `}` / `,` / `;` / end: nothing (more) to bind
        };
        let line = *line;
        if seg == "as" {
            return i;
        }
        // `use a::b::{self, c}`: `self` names the base path itself (its
        // binding falls out of `path.last()` below). A leading `self::`
        // prefix is kept verbatim for the resolver to normalize.
        if seg != "self" || path.is_empty() {
            path.push(seg.clone());
        }
        // `::` continuation: another segment, a glob, or a group.
        if i + 2 < n && toks[i + 1].0 == Tok::P(':') && toks[i + 2].0 == Tok::P(':') {
            i += 3;
            match toks.get(i) {
                Some((Tok::P('*'), _)) => {
                    out.push(UseImport {
                        module: module.to_string(),
                        path,
                        alias: String::new(),
                        glob: true,
                        line,
                    });
                    return i + 1;
                }
                Some((Tok::P('{'), _)) => {
                    i += 1;
                    loop {
                        match toks.get(i) {
                            Some((Tok::P('}'), _)) => return i + 1,
                            Some((Tok::P(','), _)) => i += 1,
                            Some(_) => {
                                let next = parse_use_tree(toks, i, &path, module, out);
                                // Always advance, even on malformed
                                // input, so the group scan terminates.
                                i = next.max(i + 1);
                            }
                            None => return n,
                        }
                    }
                }
                _ => continue,
            }
        }
        // Leaf segment: optional `as` rename, then emit the binding.
        let mut alias = path.last().cloned().unwrap_or_default();
        let mut next = i + 1;
        if let Some((Tok::I(a), _)) = toks.get(next) {
            if a == "as" {
                if let Some((Tok::I(renamed), _)) = toks.get(next + 1) {
                    alias = renamed.clone();
                    next += 2;
                }
            }
        }
        if !path.is_empty() {
            out.push(UseImport {
                module: module.to_string(),
                path,
                alias,
                glob: false,
                line,
            });
        }
        return next;
    }
}

/// UpperCamelCase initial — type/ctor-shaped by Rust convention (the
/// same heuristic the resolver uses; extract keeps a local copy so the
/// token layer stays self-contained).
fn upper_shaped(w: &str) -> bool {
    w.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Appends `w` unless already present. Operand ident sets are tiny, so
/// a linear scan preserves source order without hashing.
fn push_unique(v: &mut Vec<String>, w: &str) {
    if !v.iter().any(|x| x == w) {
        v.push(w.to_string());
    }
}

/// Identifier roots of the operand that *ends* just before token `at`
/// (exclusive): a dotted ident chain (`cfg.n_clients` → both idents) or
/// a balanced `(..)`/`[..]` group plus the chain it hangs off
/// (`((a as f64) * b).round()` → every ident inside). Keywords
/// terminate the walk; budgets keep it linear and deterministic.
fn operand_before(toks: &[(Tok, usize)], at: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = at; // exclusive upper bound
    let mut budget = 64usize;
    loop {
        if out.len() >= 12 || budget == 0 {
            break;
        }
        let Some(prev) = j.checked_sub(1) else { break };
        match &toks[prev].0 {
            Tok::P(c @ (')' | ']')) => {
                let (open, close) = if *c == ')' { ('(', ')') } else { ('[', ']') };
                let mut d = 1i32;
                let mut k = prev;
                while d > 0 {
                    let Some(kk) = k.checked_sub(1) else {
                        return out;
                    };
                    k = kk;
                    budget = budget.saturating_sub(1);
                    if budget == 0 {
                        return out;
                    }
                    match &toks[k].0 {
                        Tok::P(c2) if *c2 == close => d += 1,
                        Tok::P(c2) if *c2 == open => d -= 1,
                        Tok::I(w) if !is_keyword(w) => push_unique(&mut out, w),
                        _ => {}
                    }
                }
                j = k; // at the opening token; keep walking the chain
            }
            Tok::I(w) => {
                if is_keyword(w) {
                    break;
                }
                push_unique(&mut out, w);
                budget = budget.saturating_sub(1);
                if prev >= 2 && toks[prev - 1].0 == Tok::P('.') {
                    j = prev - 1; // continue before the dot
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    out
}

/// Identifier roots of the operand *starting* at token `at`: skips
/// prefix sigils, then follows a dotted/call/path chain
/// (`zipf.sample(rng)` → `zipf`, `sample`, `rng`) or a parenthesized
/// group's ident set.
fn operand_after(toks: &[(Tok, usize)], at: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = at;
    let mut budget = 64usize;
    while matches!(toks.get(j), Some((Tok::P('&' | '*' | '-' | '!'), _))) {
        j += 1;
    }
    if matches!(toks.get(j), Some((Tok::I(w), _)) if w == "mut") {
        j += 1;
    }
    // Collects one balanced paren group whose `(` is at `k`; returns
    // the index just past the close.
    let group = |out: &mut Vec<String>, budget: &mut usize, k: usize| -> usize {
        let mut d = 1i32;
        let mut k = k + 1;
        while k < toks.len() && d > 0 && *budget > 0 {
            *budget -= 1;
            match &toks[k].0 {
                Tok::P('(') => d += 1,
                Tok::P(')') => d -= 1,
                Tok::I(w2) if !is_keyword(w2) => push_unique(out, w2),
                _ => {}
            }
            k += 1;
        }
        k
    };
    loop {
        if out.len() >= 12 || budget == 0 {
            break;
        }
        match toks.get(j).map(|(t, _)| t) {
            Some(Tok::I(w)) => {
                if is_keyword(w) {
                    break;
                }
                push_unique(&mut out, w);
                budget = budget.saturating_sub(1);
                match toks.get(j + 1).map(|(t, _)| t) {
                    Some(Tok::P('.')) => j += 2,
                    Some(Tok::P(':')) if toks.get(j + 2).map(|(t, _)| t) == Some(&Tok::P(':')) => {
                        j += 3
                    }
                    Some(Tok::P('(')) => {
                        let k = group(&mut out, &mut budget, j + 1);
                        if toks.get(k).map(|(t, _)| t) == Some(&Tok::P('.')) {
                            j = k + 1;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            Some(Tok::P('(')) => {
                let k = group(&mut out, &mut budget, j);
                if toks.get(k).map(|(t, _)| t) == Some(&Tok::P('.')) {
                    j = k + 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    out
}

/// All identifier roots from `from` until the terminating `;` at
/// bracket depth 0 relative to `from` (budget-capped), plus whether any
/// collected ident is a width guard ([`is_width_guard`]).
fn idents_until_semi(toks: &[(Tok, usize)], from: usize) -> (Vec<String>, bool) {
    let mut out = Vec::new();
    let mut guarded = false;
    let mut d = 0i32;
    let mut j = from;
    let mut budget = 240usize;
    while j < toks.len() && budget > 0 {
        budget -= 1;
        match &toks[j].0 {
            Tok::P('(') | Tok::P('[') | Tok::P('{') => d += 1,
            Tok::P(')') | Tok::P(']') | Tok::P('}') => {
                if d == 0 {
                    break;
                }
                d -= 1;
            }
            Tok::P(';') if d == 0 => break,
            Tok::I(w) if !is_keyword(w) => {
                guarded |= is_width_guard(w);
                if out.len() < 24 {
                    push_unique(&mut out, w);
                }
            }
            _ => {}
        }
        j += 1;
    }
    (out, guarded)
}

/// Splits the balanced argument list whose `(` sits at `open` into
/// per-argument identifier root sets (split at top-level commas).
/// Numeric literals are invisible to the tokenizer, so a literal-only
/// argument contributes an empty set — the commas still keep later
/// positions aligned with the callee's parameters.
fn call_args(toks: &[(Tok, usize)], open: usize) -> Vec<Vec<String>> {
    let mut args: Vec<Vec<String>> = Vec::new();
    let mut cur: Vec<String> = Vec::new();
    let mut d = 1i32;
    let mut j = open + 1;
    let mut budget = 200usize;
    while j < toks.len() && d > 0 && budget > 0 {
        budget -= 1;
        match &toks[j].0 {
            Tok::P('(') | Tok::P('[') | Tok::P('{') => d += 1,
            Tok::P(')') | Tok::P(']') | Tok::P('}') => d -= 1,
            Tok::P(',') if d == 1 => args.push(std::mem::take(&mut cur)),
            Tok::I(w) if !is_keyword(w) && cur.len() < 12 => {
                push_unique(&mut cur, w);
            }
            _ => {}
        }
        j += 1;
    }
    if !cur.is_empty() || !args.is_empty() {
        args.push(cur);
    }
    args
}

/// Whether the statement containing token `at` starts with `let`
/// (scanning back to the previous `;`, `{`, or `}`).
fn binds_with_let(toks: &[(Tok, usize)], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        match &toks[j].0 {
            Tok::P(';') | Tok::P('{') | Tok::P('}') => {
                return matches!(&toks.get(j + 1).map(|(t, _)| t), Some(Tok::I(w)) if w == "let");
            }
            _ => {}
        }
    }
    matches!(&toks.first().map(|(t, _)| t), Some(Tok::I(w)) if w == "let")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::sanitize;

    fn ex(rel: &str, src: &str) -> FileExtract {
        let lines = sanitize(src);
        let skip = vec![false; lines.len()];
        extract(rel, &lines, &skip)
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_path("crates/spec/src/deps.rs"), "spec::deps");
        assert_eq!(
            module_path("crates/core/src/obs/events.rs"),
            "core::obs::events"
        );
        assert_eq!(module_path("crates/core/src/obs/mod.rs"), "core::obs");
        assert_eq!(module_path("crates/core/src/lib.rs"), "core");
        assert_eq!(
            module_path("crates/bench/src/bin/figures.rs"),
            "bench::bin::figures"
        );
        assert_eq!(module_path("src/lib.rs"), "specweb");
        assert_eq!(module_path("src/bin/specweb.rs"), "specweb::bin::specweb");
        assert_eq!(
            module_path("examples/quickstart.rs"),
            "examples::quickstart"
        );
    }

    #[test]
    fn fns_impls_and_mods_get_qualified_names() {
        let src = "
mod inner {
    pub struct Thing;
    impl Thing {
        pub fn make() -> Thing { helper() }
    }
    fn helper() -> Thing { Thing }
}
impl fmt::Display for Wide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write(f) }
}
pub fn top() { inner::helper(); }
";
        let fx = ex("crates/x/src/lib.rs", src);
        let names: Vec<&str> = fx.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(
            names,
            [
                "x::inner::Thing::make",
                "x::inner::helper",
                "x::Wide::fmt",
                "x::top"
            ],
            "{fx:#?}"
        );
        assert!(fx.impl_types.contains("Thing"));
        assert!(fx.impl_types.contains("Wide"));
        let top = fx.fns.iter().find(|f| f.name == "top").unwrap();
        assert_eq!(top.calls.len(), 1);
        assert_eq!(top.calls[0].qualifier, "inner");
        assert_eq!(top.calls[0].name, "helper");
    }

    #[test]
    fn method_and_path_calls_are_distinguished() {
        let src = "fn f(x: &W) { x.step(); self.tick(); W::boot(); a::b::go(); }";
        let fx = ex("crates/x/src/lib.rs", src);
        let calls = &fx.fns[0].calls;
        assert!(calls
            .iter()
            .any(|c| c.name == "step" && c.is_method && !c.on_self));
        assert!(calls.iter().any(|c| c.name == "tick" && c.on_self));
        assert!(calls.iter().any(|c| c.name == "boot" && c.qualifier == "W"));
        assert!(calls
            .iter()
            .any(|c| c.name == "go" && c.qualifier == "a::b"));
    }

    #[test]
    fn hash_iteration_is_a_source_but_lookup_is_not() {
        let src = "
fn lookup(m: &HashMap<u32, u32>) -> Option<u32> { m.get(&1).copied() }
fn leak(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = m.keys().copied().collect();
    for (a, b) in &m2 { v.push(*a + *b); }
    v
}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let lookup = fx.fns.iter().find(|f| f.name == "lookup").unwrap();
        assert!(
            lookup
                .sources
                .iter()
                .all(|s| s.kind != SourceKind::HashIter),
            "{lookup:#?}"
        );
        let leak = fx.fns.iter().find(|f| f.name == "leak").unwrap();
        let iters: Vec<&SourceSite> = leak
            .sources
            .iter()
            .filter(|s| s.kind == SourceKind::HashIter)
            .collect();
        // `m.keys()` trips; the for-loop over `m2` does not (m2 is not
        // hash-typed in this file).
        assert_eq!(iters.len(), 1, "{leak:#?}");
        assert_eq!(iters[0].what, "m");
    }

    #[test]
    fn for_loop_over_hash_field_is_a_source() {
        let src = "
struct B { follows: HashMap<(u32, u32), u64> }
impl B {
    fn build(&self) { for (k, n) in &self.follows { use_it(k, n); } }
}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let build = fx.fns.iter().find(|f| f.name == "build").unwrap();
        assert!(
            build
                .sources
                .iter()
                .any(|s| s.kind == SourceKind::HashIter && s.what == "follows"),
            "{build:#?}"
        );
    }

    #[test]
    fn wall_clock_rng_thread_and_panic_sources() {
        let src = "
fn f() {
    let t = Instant::now();
    let st = SystemTime::now();
    let r = thread_rng();
    std::thread::spawn(|| {});
    let v = x.unwrap();
    let w = y.expect( );
}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let kinds: Vec<SourceKind> = fx.fns[0].sources.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SourceKind::WallClock));
        assert!(kinds.contains(&SourceKind::Rng));
        assert!(kinds.contains(&SourceKind::ThreadSpawn));
        assert_eq!(
            kinds.iter().filter(|&&k| k == SourceKind::Panic).count(),
            2,
            "{:#?}",
            fx.fns[0].sources
        );
        // SystemTime::now yields both the ident hit and the call-path
        // hit at the same site; the graph dedups per line.
        assert!(
            kinds
                .iter()
                .filter(|&&k| k == SourceKind::WallClock)
                .count()
                >= 2
        );
    }

    #[test]
    fn lock_sites_record_receiver_and_let_binding() {
        let src = "
fn f(&self) {
    let g = self.inner.lock();
    *slots[i].lock().unwrap_or_else(e) = 1;
}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let locks = &fx.fns[0].locks;
        assert_eq!(locks.len(), 2, "{locks:#?}");
        assert_eq!(locks[0].name, "inner");
        assert!(locks[0].held);
        assert_eq!(locks[1].name, "slots");
        assert!(!locks[1].held);
    }

    #[test]
    fn closure_bodies_attribute_to_the_defining_fn() {
        let src = "fn f() { pool.map_indexed(&xs, |_, x| helper(x)); }";
        let fx = ex("crates/x/src/lib.rs", src);
        assert!(fx.fns[0].calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn trait_default_methods_are_methods_of_the_trait() {
        let src = "trait T { fn req(&self); fn has_default(&self) { self.req(); } }";
        let fx = ex("crates/x/src/lib.rs", src);
        let names: Vec<&str> = fx.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, ["x::T::req", "x::T::has_default"]);
        assert_eq!(fx.fns[1].self_type.as_deref(), Some("T"));
    }

    #[test]
    fn fn_pointer_types_and_sig_impls_do_not_confuse_scopes() {
        let src = "
fn f(cb: fn(u32) -> u32, it: impl Fn() -> u32) -> u32 { cb(1) + it() }
fn g() {}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let names: Vec<&str> = fx.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, ["x::f", "x::g"], "{fx:#?}");
    }

    #[test]
    fn index_sites_are_counted_not_reported() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] + v[i + 1] }";
        let fx = ex("crates/x/src/lib.rs", src);
        assert_eq!(fx.fns[0].index_sites, 2);
        assert!(fx.fns[0].sources.is_empty());
    }

    #[test]
    fn raw_identifiers_stay_whole() {
        let src = "
fn r#type() -> u32 { 1 }
fn f() { r#type(); }
";
        let fx = ex("crates/x/src/lib.rs", src);
        let names: Vec<&str> = fx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["r#type", "f"], "{fx:#?}");
        let f = &fx.fns[1];
        assert_eq!(f.calls.len(), 1, "{f:#?}");
        assert_eq!(f.calls[0].name, "r#type");
        // Crucially: no spurious call named `r` and no phantom `type`
        // keyword confusing the scope machine.
        assert!(f.calls.iter().all(|c| c.name != "r"));
    }

    #[test]
    fn turbofish_paths_keep_their_qualifier() {
        let src = "fn f() { let v = Vec::<u64>::new(); q::helper::<u64>(1); }";
        let fx = ex("crates/x/src/lib.rs", src);
        let calls = &fx.fns[0].calls;
        assert!(
            calls
                .iter()
                .any(|c| c.name == "new" && c.qualifier == "Vec"),
            "{calls:#?}"
        );
        assert!(
            calls
                .iter()
                .any(|c| c.name == "helper" && c.qualifier == "q" && !c.is_method),
            "{calls:#?}"
        );
        // No degraded any-name `new` call without its qualifier.
        assert!(calls
            .iter()
            .all(|c| c.name != "new" || c.qualifier == "Vec"));
    }

    #[test]
    fn turbofish_method_calls_are_methods() {
        let src = "fn f(xs: &[u32]) -> Vec<u32> { xs.iter().map(double).collect::<Vec<u32>>() }";
        let fx = ex("crates/x/src/lib.rs", src);
        let calls = &fx.fns[0].calls;
        assert!(
            calls.iter().any(|c| c.name == "collect" && c.is_method),
            "{calls:#?}"
        );
    }

    #[test]
    fn use_trees_flatten_to_imports() {
        let src = "
use std::collections::{HashMap, BTreeMap as Sorted};
use specweb_core::par::*;
use crate::deps::DepMatrix;
use a::b::{self, c};
mod inner {
    use super::helper;
}
fn f() {}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let got: Vec<(String, String, String, bool)> = fx
            .imports
            .iter()
            .map(|u| (u.module.clone(), u.path.join("::"), u.alias.clone(), u.glob))
            .collect();
        let x = |p: &str, a: &str, g: bool| ("x".to_string(), p.to_string(), a.to_string(), g);
        assert_eq!(
            got,
            [
                x("std::collections::HashMap", "HashMap", false),
                x("std::collections::BTreeMap", "Sorted", false),
                x("specweb_core::par", "", true),
                x("crate::deps::DepMatrix", "DepMatrix", false),
                x("a::b", "b", false),
                x("a::b::c", "c", false),
                (
                    "x::inner".to_string(),
                    "super::helper".to_string(),
                    "helper".to_string(),
                    false
                ),
            ],
            "{fx:#?}"
        );
        // The group braces never perturb scope tracking: `f` is still
        // module-level.
        assert_eq!(fx.fns[0].qname, "x::f");
    }

    #[test]
    fn sig_mut_flags_mut_borrows_only() {
        let src = "
fn a(&mut self) {}
fn b(x: &mut u32) {}
fn c(mut x: u32) {}
fn d(x: &u32) { let mut y = 0; let r = &mut y; }
";
        let fx = ex("crates/x/src/lib.rs", src);
        let by: Vec<(String, bool)> = fx.fns.iter().map(|f| (f.name.clone(), f.sig_mut)).collect();
        assert_eq!(
            by,
            [
                ("a".to_string(), true),
                ("b".to_string(), true),
                ("c".to_string(), false),
                ("d".to_string(), false),
            ],
            "{fx:#?}"
        );
    }

    #[test]
    fn effect_sites_io_and_global() {
        let src = "
fn f() {
    println!( );
    fs::write(p, b);
    std::env::var( );
    env::set_var(k, v);
    out.write_all(buf);
    File::open(p);
    process::exit(1);
}
fn quiet(x: u32) -> u32 { x + 1 }
";
        let fx = ex("crates/x/src/lib.rs", src);
        let whats: Vec<(&str, &str)> = fx.fns[0]
            .effects
            .iter()
            .map(|e| (e.kind.id(), e.what.as_str()))
            .collect();
        assert_eq!(
            whats,
            [
                ("io", "println!"),
                ("io", "fs::write"),
                // env::var is absent: env reads are configuration, not
                // effects (constant per process).
                ("global", "env::set_var"),
                ("io", "write_all"),
                ("io", "File::open"),
                ("global", "process::exit"),
            ],
            "{fx:#?}"
        );
        assert!(fx.fns[1].effects.is_empty());
    }

    #[test]
    fn log_macro_is_not_an_effect() {
        let src = "fn f() { log!(Level::Info, \"x\"); }";
        let fx = ex("crates/x/src/lib.rs", src);
        assert!(fx.fns[0].effects.is_empty(), "{fx:#?}");
    }

    #[test]
    fn par_regions_mark_worker_closure_calls() {
        let src = "
fn f(pool: &Pool) {
    before();
    pool.map_indexed(&xs, |_, x| helper(deep(x)));
    after();
}
";
        let fx = ex("crates/x/src/lib.rs", src);
        let flag = |n: &str| {
            fx.fns[0]
                .calls
                .iter()
                .find(|c| c.name == n)
                .map(|c| c.in_par)
        };
        assert_eq!(flag("before"), Some(false));
        assert_eq!(flag("map_indexed"), Some(false), "{fx:#?}");
        assert_eq!(flag("helper"), Some(true));
        assert_eq!(flag("deep"), Some(true));
        assert_eq!(flag("after"), Some(false));
    }
}
