//! Interprocedural scale-taint width/overflow dataflow and the three
//! rules it backs (DESIGN §14):
//!
//! * **W1** — unchecked widening arithmetic (`*`, `+`, `<<` and their
//!   compound forms) where an operand is scale-tainted. A product of
//!   two scale-magnitude u64s clears 2^64 long before a million-client
//!   config feels slow — PR 7's `days × sessions × 12` overflow is the
//!   canonical instance.
//! * **W2** — narrowing cast (`as u32` / `as usize` / …) of a
//!   scale-tainted value with no dominating bound check. The
//!   portability floor for `usize` is 32 bits; scale products pass
//!   2^32 at `--scale 100`.
//! * **W3** — capacity allocation (`Vec::with_capacity`, `vec![_; n]`)
//!   sized by a tainted, unchecked expression: one bad config line
//!   becomes an OOM instead of an error.
//!
//! Taint seeds at the scale-carrying configuration fields and
//! run-population counters ([`SEEDS`]) and propagates:
//!
//! * **intraprocedurally** through `let` / `for` / assignment binding
//!   edges, to a per-fn fixpoint;
//! * **interprocedurally** through call arguments (caller's tainted
//!   arg taints the callee's positional parameter) and returns (a
//!   callee whose return value is tainted taints bindings of its call)
//!   — over the *precise* resolution rungs only. Propagating through
//!   the any-name / opaque-method fallback edges (thousands) would
//!   taint the whole graph; the width engine deliberately trades that
//!   soundness margin for precision, the reverse of the purity engine's
//!   choice (and the reason both directions are documented).
//!
//! Taint dies at width guards (`checked_*` / `saturating_*` /
//! `try_into` / `try_from` / `min` / `clamp`) and rule sites are
//! additionally silenced when the tainted identifier carries a visible
//! dominating bound (comparison, `assert!`, `%`). Identifier-level
//! matching means field taint is name-global (`self.accesses` and a
//! local `accesses` alias); that over-approximation is the sound
//! direction and is what makes the engine std-only cheap.

use std::collections::{BTreeMap, BTreeSet};

use crate::extract::{is_width_guard, narrowing_target, ArithOp};
use crate::graph::{esc, CallGraph};
use crate::taint::GraphHit;

/// Scale-taint seeds: configuration fields that set run population and
/// the per-run counters that grow with it. Matched as bare identifiers
/// anywhere (field or local), which is deliberately name-global.
pub const SEEDS: &[&str] = &[
    "accessed_bytes",
    "accesses",
    "accesses_generated",
    "byte_hops",
    "bytes_sent",
    "cache_hits",
    "duration_days",
    "fault_denied",
    "latency_ms",
    "miss_bytes",
    "n_accesses",
    "n_clients",
    "n_pages",
    "n_sessions",
    "partial_write_resends",
    "prefetches",
    "push_bytes",
    "pushes",
    "scale_factor",
    "server_requests",
    "sessions_generated",
    "sessions_per_day",
    "slow_served",
    "stalled",
    "transfers",
    "wasted_push_bytes",
    "wasted_pushes",
];

fn is_seed(w: &str) -> bool {
    SEEDS.contains(&w)
}

/// Why an identifier is tainted in some fn — one hop of the evidence
/// chain back toward a seed.
#[derive(Debug, Clone)]
enum Why {
    /// Bound from a tainted rhs identifier at `line`.
    Bind { line: usize, from: String },
    /// The fn's parameter, tainted by a caller's argument.
    Param {
        caller: String,
        line: usize,
        from: String,
    },
    /// Bound from a call whose return value is tainted.
    Ret { callee: String, line: usize },
}

/// One W-rule finding (pre-suppression; `lint:allow` is applied by the
/// report layer like every other graph rule).
#[derive(Debug, Clone)]
pub struct Finding {
    /// `W1` / `W2` / `W3`.
    pub rule: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The tainted identifier that fired the rule.
    pub ident: String,
    /// Root→site evidence chain.
    pub chain: String,
    /// Full diagnostic.
    pub message: String,
}

/// The computed taint state plus rule findings.
#[derive(Debug, Clone, Default)]
pub struct WidthMap {
    /// qname → tainted local/param idents with provenance (seeds are
    /// implicit and not stored).
    tainted: BTreeMap<String, BTreeMap<String, Why>>,
    /// qname → the ident that taints the return value, when any.
    ret_tainted: BTreeMap<String, String>,
    /// qname → float-typed locals (bound from an rhs mentioning
    /// f32/f64): W1 skips float arithmetic.
    floats: BTreeMap<String, BTreeSet<String>>,
    /// W1–W3 findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

impl WidthMap {
    /// Worklist fixpoint over the call graph, then the W1–W3 site scan.
    /// Everything iterates in `BTreeMap`/`BTreeSet` order and the
    /// transfer functions are monotone, so the result is deterministic
    /// and the loop terminates.
    pub fn compute(g: &CallGraph) -> WidthMap {
        let mut wm = WidthMap::default();
        for (q, n) in &g.nodes {
            let mut fl = BTreeSet::new();
            for b in &n.binds {
                if b.rhs
                    .iter()
                    .any(|r| r.ends_with("f64") || r.ends_with("f32"))
                {
                    fl.extend(b.names.iter().cloned());
                }
            }
            if !fl.is_empty() {
                wm.floats.insert(q.clone(), fl);
            }
        }
        // callee → callers over precise call sites, for re-enqueueing
        // when a return value turns tainted.
        let mut callers: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (q, n) in &g.nodes {
            for cs in &n.call_sites {
                for c in &cs.callees {
                    callers.entry(c.as_str()).or_default().insert(q.as_str());
                }
            }
        }

        let mut work: BTreeSet<String> = g.nodes.keys().cloned().collect();
        while let Some(q) = work.pop_first() {
            let Some(n) = g.nodes.get(&q) else { continue };
            // Take this fn's env out so the closures below can borrow
            // the rest of the state immutably.
            let mut env = wm.tainted.remove(&q).unwrap_or_default();
            // Call name → precise callees, for return-taint lookups.
            let mut by_call: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for cs in &n.call_sites {
                let e = by_call.entry(cs.name.as_str()).or_default();
                e.extend(cs.callees.iter().map(String::as_str));
            }
            // Intraprocedural fixpoint over the binding edges.
            loop {
                let mut grew = false;
                for b in &n.binds {
                    if b.guarded {
                        continue;
                    }
                    let mut why: Option<Why> = None;
                    for r in &b.rhs {
                        if is_seed(r) || env.contains_key(r) {
                            why = Some(Why::Bind {
                                line: b.line,
                                from: r.clone(),
                            });
                            break;
                        }
                        if let Some(cands) = by_call.get(r.as_str()) {
                            if let Some(callee) =
                                cands.iter().find(|c| wm.ret_tainted.contains_key(**c))
                            {
                                why = Some(Why::Ret {
                                    callee: (*callee).to_string(),
                                    line: b.line,
                                });
                                break;
                            }
                        }
                    }
                    if let Some(why) = why {
                        for name in &b.names {
                            if !env.contains_key(name) && !is_seed(name) {
                                env.insert(name.clone(), why.clone());
                                grew = true;
                            }
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
            // Return taint: a tainted ident (or a call to a
            // return-tainted callee) in return position.
            let rt = n.ret_idents.iter().find(|r| {
                is_seed(r)
                    || env.contains_key(*r)
                    || by_call
                        .get(r.as_str())
                        .is_some_and(|cs| cs.iter().any(|c| wm.ret_tainted.contains_key(*c)))
            });
            let mut ret_grew = false;
            if let Some(r) = rt {
                if !wm.ret_tainted.contains_key(&q) {
                    wm.ret_tainted.insert(q.clone(), r.clone());
                    ret_grew = true;
                }
            }
            // Interprocedural arg → param propagation.
            let mut pending: Vec<(String, String, Why)> = Vec::new();
            for cs in &n.call_sites {
                for callee in &cs.callees {
                    let Some(cn) = g.nodes.get(callee) else {
                        continue;
                    };
                    for (pos, argset) in cs.args.iter().enumerate() {
                        let Some(p) = cn.params.get(pos) else { break };
                        let Some(src) = argset.iter().find(|a| is_seed(a) || env.contains_key(*a))
                        else {
                            continue;
                        };
                        pending.push((
                            callee.clone(),
                            p.clone(),
                            Why::Param {
                                caller: q.clone(),
                                line: cs.line,
                                from: src.clone(),
                            },
                        ));
                    }
                }
            }
            if !env.is_empty() {
                wm.tainted.insert(q.clone(), env);
            }
            for (callee, p, why) in pending {
                if callee == q {
                    // Self-recursive arg taint: re-run this fn.
                    let e = wm.tainted.entry(callee.clone()).or_default();
                    if !e.contains_key(&p) && !is_seed(&p) {
                        e.insert(p, why);
                        work.insert(callee);
                    }
                    continue;
                }
                let e = wm.tainted.entry(callee.clone()).or_default();
                if !e.contains_key(&p) && !is_seed(&p) {
                    e.insert(p, why);
                    work.insert(callee);
                }
            }
            if ret_grew {
                if let Some(cs) = callers.get(q.as_str()) {
                    work.extend(cs.iter().map(|c| c.to_string()));
                }
            }
        }

        wm.scan_sites(g);
        wm
    }

    /// Whether `ident` is tainted in fn `q`.
    fn is_tainted(&self, q: &str, ident: &str) -> bool {
        is_seed(ident) || self.tainted.get(q).is_some_and(|e| e.contains_key(ident))
    }

    /// The root→site evidence chain for a tainted ident, hopping
    /// through binds, call returns and caller args back to a seed.
    pub fn chain(&self, q: &str, ident: &str) -> String {
        let mut parts = vec![format!("`{ident}`")];
        let mut curq = q.to_string();
        let mut cur = ident.to_string();
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        loop {
            if !seen.insert((curq.clone(), cur.clone())) || parts.len() > 12 {
                parts.push("…".to_string());
                break;
            }
            if is_seed(&cur) {
                parts.push("scale seed".to_string());
                break;
            }
            match self.tainted.get(&curq).and_then(|e| e.get(&cur)) {
                Some(Why::Bind { line, from }) => {
                    parts.push(format!("`{from}` (bound at line {line})"));
                    cur = from.clone();
                }
                Some(Why::Ret { callee, line }) => {
                    parts.push(format!("return of `{callee}` (called at line {line})"));
                    match self.ret_tainted.get(callee) {
                        Some(r) => {
                            parts.push(format!("`{r}`"));
                            curq = callee.clone();
                            cur = r.clone();
                        }
                        None => break,
                    }
                }
                Some(Why::Param { caller, line, from }) => {
                    parts.push(format!("arg `{from}` at `{caller}`:{line}"));
                    curq = caller.clone();
                    cur = from.clone();
                }
                None => break,
            }
        }
        parts.join(" ← ")
    }

    /// Scans every arithmetic / cast / capacity site against the
    /// converged taint state and fills [`Self::findings`].
    fn scan_sites(&mut self, g: &CallGraph) {
        let mut findings: Vec<Finding> = Vec::new();
        let mut seen: BTreeSet<(&'static str, String, usize)> = BTreeSet::new();
        for (q, n) in &g.nodes {
            let fl = self.floats.get(q);
            // `ends_with` catches the literal marker, the primitives and
            // conversion names (`as_f64`); declared float names lose to
            // seeds so a float-typed decl elsewhere can't silence one.
            let is_float = |ids: &[String]| {
                ids.iter().any(|w| {
                    w.ends_with("f64")
                        || w.ends_with("f32")
                        || (!is_seed(w)
                            && (g.float_names.contains(w) || fl.is_some_and(|f| f.contains(w))))
                })
            };
            // The tainted-and-unbounded ident that makes a site fire.
            let hot = |ids: &[String]| {
                ids.iter()
                    .find(|id| self.is_tainted(q, id) && !n.bounded.contains(*id))
                    .cloned()
            };
            let guarded = |ids: &[String]| ids.iter().any(|w| is_width_guard(w));
            for a in &n.arith {
                if is_float(&a.lhs) || is_float(&a.rhs) {
                    continue;
                }
                if guarded(&a.lhs) || guarded(&a.rhs) {
                    continue;
                }
                let id = match a.op {
                    // A sum only reaches overflow magnitude when both
                    // sides carry scale (`i += 1` is not a hazard;
                    // `self.pushes += other.pushes` is).
                    ArithOp::Add => {
                        if a.lhs.iter().any(|i| self.is_tainted(q, i))
                            && a.rhs.iter().any(|i| self.is_tainted(q, i))
                        {
                            hot(&a.lhs).or_else(|| hot(&a.rhs))
                        } else {
                            None
                        }
                    }
                    ArithOp::Mul | ArithOp::Shl => hot(&a.lhs).or_else(|| hot(&a.rhs)),
                };
                let Some(id) = id else { continue };
                if !seen.insert(("W1", n.file.clone(), a.line)) {
                    continue;
                }
                let chain = self.chain(q, &id);
                let fix = match a.op {
                    ArithOp::Mul => "checked_mul/saturating_mul",
                    ArithOp::Add => "checked_add/saturating_add",
                    ArithOp::Shl => "checked_shl",
                };
                findings.push(Finding {
                    rule: "W1",
                    file: n.file.clone(),
                    line: a.line,
                    ident: id.clone(),
                    chain: chain.clone(),
                    message: format!(
                        "unchecked `{}` on scale-tainted `{id}` in `{q}` [{chain}]; \
                         use {fix}, or lint:allow(W1) with the bound that makes it safe",
                        a.op.sym()
                    ),
                });
            }
            for c in &n.casts {
                if !narrowing_target(&c.target) {
                    continue;
                }
                if guarded(&c.src) {
                    continue;
                }
                let Some(id) = hot(&c.src) else { continue };
                if !seen.insert(("W2", n.file.clone(), c.line)) {
                    continue;
                }
                let chain = self.chain(q, &id);
                findings.push(Finding {
                    rule: "W2",
                    file: n.file.clone(),
                    line: c.line,
                    ident: id.clone(),
                    chain: chain.clone(),
                    message: format!(
                        "narrowing cast `as {}` of scale-tainted `{id}` in `{q}` [{chain}]; \
                         bound the value first or use try_into, or lint:allow(W2) with the proof",
                        c.target
                    ),
                });
            }
            for cap in &n.caps {
                if guarded(&cap.args) {
                    continue;
                }
                let Some(id) = hot(&cap.args) else { continue };
                if !seen.insert(("W3", n.file.clone(), cap.line)) {
                    continue;
                }
                let chain = self.chain(q, &id);
                findings.push(Finding {
                    rule: "W3",
                    file: n.file.clone(),
                    line: cap.line,
                    ident: id.clone(),
                    chain: chain.clone(),
                    message: format!(
                        "capacity allocation `{}` sized by scale-tainted `{id}` in `{q}` \
                         [{chain}]; validate against an explicit cap first, or lint:allow(W3) \
                         with the bound",
                        cap.what
                    ),
                });
            }
        }
        findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.findings = findings;
    }

    /// Aggregate counters for `--stats` and the JSON artifact, in key
    /// order.
    pub fn counts(&self, g: &CallGraph) -> BTreeMap<&'static str, usize> {
        let mut m: BTreeMap<&'static str, usize> = BTreeMap::new();
        m.insert("arith_sites", g.nodes.values().map(|n| n.arith.len()).sum());
        m.insert("cast_sites", g.nodes.values().map(|n| n.casts.len()).sum());
        m.insert(
            "capacity_sites",
            g.nodes.values().map(|n| n.caps.len()).sum(),
        );
        m.insert(
            "checked_sites",
            g.nodes.values().map(|n| n.checked_sites).sum(),
        );
        m.insert("flow_binds", g.nodes.values().map(|n| n.binds.len()).sum());
        m.insert("tainted_fns", self.tainted.len());
        m.insert("ret_tainted_fns", self.ret_tainted.len());
        m.insert(
            "w1",
            self.findings.iter().filter(|f| f.rule == "W1").count(),
        );
        m.insert(
            "w2",
            self.findings.iter().filter(|f| f.rule == "W2").count(),
        );
        m.insert(
            "w3",
            self.findings.iter().filter(|f| f.rule == "W3").count(),
        );
        m
    }

    /// Serializes the taint state and findings as stable, key-sorted
    /// JSON (schema `specweb-widthflow/v1`) — the CI artifact.
    pub fn to_json(&self, g: &CallGraph) -> String {
        let mut s = String::from("{\n  \"schema\": \"specweb-widthflow/v1\",\n");
        s.push_str("  \"seeds\": [");
        s.push_str(
            &SEEDS
                .iter()
                .map(|w| format!("\"{w}\""))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("],\n  \"counts\": {");
        s.push_str(
            &self
                .counts(g)
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("},\n  \"tainted\": {\n");
        let mut first = true;
        let qnames: BTreeSet<&String> =
            self.tainted.keys().chain(self.ret_tainted.keys()).collect();
        for q in qnames {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let locals = self
                .tainted
                .get(q)
                .map(|e| {
                    e.keys()
                        .map(|k| format!("\"{}\"", esc(k)))
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_default();
            let ret = match self.ret_tainted.get(q) {
                Some(r) => format!("\"{}\"", esc(r)),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "    \"{}\": {{\"locals\": [{locals}], \"ret\": {ret}}}",
                esc(q)
            ));
        }
        s.push_str("\n  },\n  \"findings\": [\n");
        let mut first = true;
        for f in &self.findings {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"ident\": \"{}\", \
                 \"chain\": \"{}\"}}",
                f.rule,
                esc(&f.file),
                f.line,
                esc(&f.ident),
                esc(&f.chain)
            ));
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// W1–W3 as graph hits (the report layer applies `lint:allow`
/// suppression exactly like the G rules).
pub fn check_width(wm: &WidthMap) -> Vec<GraphHit> {
    wm.findings
        .iter()
        .map(|f| GraphHit {
            rule: f.rule,
            file: f.file.clone(),
            line: f.line,
            message: f.message.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::graph::CrateDeps;
    use crate::lexer::sanitize;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let fx: Vec<_> = files
            .iter()
            .map(|(rel, src)| {
                let lines = sanitize(src);
                let skip = vec![false; lines.len()];
                extract(rel, &lines, &skip)
            })
            .collect();
        CallGraph::build_with_opts(&fx, &CrateDeps::permissive(), true).0
    }

    #[test]
    fn tainted_multiply_is_caught_with_chain() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
pub fn plan(cfg: &Config) -> u64 {
    let days = cfg.duration_days;
    let total = days * cfg.sessions_per_day;
    total
}
",
        )]);
        let wm = WidthMap::compute(&g);
        let w1: Vec<_> = wm.findings.iter().filter(|f| f.rule == "W1").collect();
        assert_eq!(w1.len(), 1, "{:#?}", wm.findings);
        assert_eq!(w1[0].line, 4);
        assert!(w1[0].chain.contains("scale seed"), "{}", w1[0].chain);
        assert!(w1[0].chain.contains("`duration_days`"), "{}", w1[0].chain);
    }

    #[test]
    fn checked_arithmetic_and_floats_are_clean() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
pub fn plan(cfg: &Config) -> u64 {
    let total = cfg.duration_days.checked_mul(cfg.sessions_per_day).unwrap();
    let frac = (cfg.n_clients as f64) * 0.5;
    total
}
",
        )]);
        let wm = WidthMap::compute(&g);
        assert!(
            wm.findings.iter().all(|f| f.rule != "W1"),
            "{:#?}",
            wm.findings
        );
    }

    #[test]
    fn narrowing_cast_fires_unless_bounded() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
pub fn bad(cfg: &Config) -> u32 {
    cfg.n_clients as u32
}
pub fn good(cfg: &Config) -> u32 {
    assert!(cfg.n_clients <= MAX_CLIENTS);
    cfg.n_clients as u32
}
",
        )]);
        let wm = WidthMap::compute(&g);
        let w2: Vec<_> = wm.findings.iter().filter(|f| f.rule == "W2").collect();
        assert_eq!(w2.len(), 1, "{:#?}", wm.findings);
        assert_eq!(w2[0].line, 3, "{:#?}", wm.findings);
    }

    #[test]
    fn tainted_capacity_is_caught() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
pub fn alloc(cfg: &Config) -> Vec<u64> {
    let mut v = Vec::with_capacity(cfg.n_clients);
    let w = vec![0u64; cfg.n_clients];
    v
}
",
        )]);
        let wm = WidthMap::compute(&g);
        let w3: Vec<_> = wm.findings.iter().filter(|f| f.rule == "W3").collect();
        assert_eq!(w3.len(), 2, "{:#?}", wm.findings);
    }

    #[test]
    fn taint_flows_through_helper_args_and_returns() {
        // `run` has no direct seed contact at either site: taint must
        // travel seed → session_count's return → `total` → scale_up's
        // `n` parameter to reach the multiply.
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
fn scale_up(n: u64) -> u64 {
    n * 2
}
fn session_count(cfg: &Config) -> u64 {
    let n = cfg.n_sessions;
    n
}
pub fn run(cfg: &Config) -> u64 {
    let total = session_count(cfg);
    scale_up(total)
}
",
        )]);
        let wm = WidthMap::compute(&g);
        assert!(
            wm.is_tainted("a::scale_up", "n"),
            "param taint: {:#?}",
            wm.tainted
        );
        let w1: Vec<_> = wm.findings.iter().filter(|f| f.rule == "W1").collect();
        assert_eq!(w1.len(), 1, "{:#?}", wm.findings);
        assert_eq!(w1[0].line, 3, "{:#?}", wm.findings);
        assert!(
            w1[0].chain.contains("arg `total` at `a::run`"),
            "{}",
            w1[0].chain
        );
        assert!(
            w1[0].chain.contains("return of `a::session_count`"),
            "{}",
            w1[0].chain
        );
        assert!(w1[0].chain.contains("scale seed"), "{}", w1[0].chain);
    }

    #[test]
    fn guards_kill_the_flow() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
pub fn run(cfg: &Config) -> u64 {
    let capped = cfg.n_sessions.min(LIMIT);
    capped * 12
}
",
        )]);
        let wm = WidthMap::compute(&g);
        assert!(wm.findings.is_empty(), "{:#?}", wm.findings);
    }

    #[test]
    fn widthflow_json_is_deterministic() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn f(cfg: &Config) -> u64 { cfg.n_clients * 2 }\n",
        )]);
        let wm = WidthMap::compute(&g);
        let json = wm.to_json(&g);
        assert!(json.contains("\"schema\": \"specweb-widthflow/v1\""));
        assert!(json.contains("\"w1\": 1"), "{json}");
        assert_eq!(json, wm.to_json(&g), "stable rendering");
    }
}
