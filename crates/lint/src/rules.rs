//! The determinism & safety rule set.
//!
//! Each rule is a line-oriented check over sanitized code (see
//! [`crate::lexer`]). Rules are deliberately over-approximate: they
//! flag the *capability* for nondeterminism (e.g. any `HashMap` in a
//! deterministic path) rather than trying to prove an actual unordered
//! iteration, because the latter needs type information a std-only
//! lexer cannot recover. The release valve for sound-but-unwanted
//! flags is an in-place `// lint:allow(<rule>): <reason>` with a
//! written justification — see `DESIGN.md` §8 for the policy.

use crate::lexer::has_ident;
use crate::FileKind;

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier used in diagnostics and `lint:allow`.
    pub id: &'static str,
    /// One-line summary shown by `--list-rules`.
    pub summary: &'static str,
}

/// Every rule the pass knows about, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D1",
        summary: "float comparators must use total_cmp, not partial_cmp \
                  (NaN-poisoned sorts are order-nondeterministic)",
    },
    Rule {
        id: "D2",
        summary: "no HashMap/HashSet in deterministic paths: iteration order \
                  is randomized per process; use BTreeMap/BTreeSet or a \
                  sorted collect",
    },
    Rule {
        id: "D3",
        summary: "no Instant::now/SystemTime outside core::obs wall-clock \
                  channel modules",
    },
    Rule {
        id: "D4",
        summary: "no unseeded RNG (thread_rng/from_entropy) outside bin \
                  targets",
    },
    Rule {
        id: "D5",
        summary: "no thread::spawn outside core::par and the serve crate",
    },
    Rule {
        id: "S1",
        summary: "unsafe only in the per-file allowlist, and each block \
                  needs a // SAFETY: comment",
    },
    Rule {
        id: "S2",
        summary: "no unwrap/expect in non-test library code; return \
                  CoreError or justify with lint:allow",
    },
    Rule {
        id: "G1",
        summary: "graph: a nondeterminism source (hash-map iteration, \
                  wall clock, unseeded RNG, ad-hoc thread) is \
                  call-reachable from a deterministic root",
    },
    Rule {
        id: "G2",
        summary: "graph: lock-order cycle — a held lock can be \
                  re-acquired (or two locks acquired in both orders) \
                  along some call path",
    },
    Rule {
        id: "G3",
        summary: "graph: a panic-capable op (unwrap/expect) is \
                  call-reachable from a simulator hot loop",
    },
    Rule {
        id: "G4",
        summary: "purity: shard-merge and replay fns (merge methods, \
                  ServiceTimeDist, ConnCore steps, session::replay) must \
                  be effect-free — effects there run once per shard, not \
                  once per run",
    },
    Rule {
        id: "G5",
        summary: "purity: no effectful call inside a core::par worker \
                  closure outside the Obs channel — pool interleaving \
                  makes the effect order vary with --jobs",
    },
    Rule {
        id: "W1",
        summary: "width: unchecked widening arithmetic (*, +, <<) on a \
                  scale-tainted integer — use checked_*/saturating_* or \
                  prove the bound",
    },
    Rule {
        id: "W2",
        summary: "width: narrowing cast (as u32/usize/...) of a \
                  scale-tainted value with no dominating bound check — \
                  use try_into or bound first",
    },
    Rule {
        id: "W3",
        summary: "width: capacity allocation (Vec::with_capacity, \
                  vec![_; n]) sized by a tainted, unchecked expression — \
                  validate against an explicit cap",
    },
];

/// Per-rule `lint:allow` counts as of the line-engine sweep (PR 4),
/// before the call-graph engine existed. `--stats` reports
/// `retired = baseline - remaining` per rule, so the suppression debt
/// the reachability analysis paid down stays visible in the report.
pub const ALLOW_BASELINE: &[(&str, usize)] = &[("D2", 11), ("D3", 5), ("S2", 4)];

/// The line-engine allow baseline for `id` (0 when unrecorded).
pub fn allow_baseline(id: &str) -> usize {
    ALLOW_BASELINE
        .iter()
        .find(|(r, _)| *r == id)
        .map(|&(_, n)| n)
        .unwrap_or(0)
}

/// True when `id` names a known rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Files where `unsafe` is tolerated (S1), provided every block carries
/// a `// SAFETY:` comment. Currently empty: every workspace crate
/// carries `#![forbid(unsafe_code)]` and this list should stay empty
/// until a measured hot path proves otherwise.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

/// Module prefixes exempt from D3 (and the graph engine's wall-clock
/// source class): the wall-clock side of the observability layer is the
/// one sanctioned consumer of real time (metrics tagged
/// `Channel::Wall`, never the deterministic channel).
pub const D3_EXEMPT: &[&str] = &["crates/core/src/obs/"];

/// Module prefixes exempt from D5 (and the graph engine's thread-spawn
/// source class): the scoped worker pool and the network server are the
/// two sanctioned thread owners. The pool's determinism is proven
/// separately by the serial-vs-parallel golden tests.
pub const D5_EXEMPT: &[&str] = &["crates/core/src/par.rs", "crates/serve/src/"];

/// Whether `rel` falls under any of `prefixes`.
pub fn path_has_prefix(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// A single rule hit on one line, before suppression is applied.
#[derive(Debug, Clone)]
pub struct Hit {
    /// Rule identifier (`D1` … `S2`).
    pub rule: &'static str,
    /// Human-readable explanation for the diagnostic.
    pub message: String,
}

/// Run every applicable rule over one sanitized code line — the full
/// line-oriented rule set, including the path-heuristic rules that the
/// call-graph engine supersedes on workspace runs (see
/// [`check_line_with`]).
pub fn check_line(
    rel: &str,
    kind: FileKind,
    code: &str,
    comment: &str,
    prev_comment: &str,
) -> Vec<Hit> {
    check_line_with(rel, kind, code, comment, prev_comment, true)
}

/// Run the line rules over one sanitized code line.
///
/// `rel` is the workspace-relative path with forward slashes; `kind`
/// is the target classification; `comment` is the same line's comment
/// channel (used by S1's `SAFETY:` requirement together with
/// `prev_comment`, the preceding line's comment channel).
///
/// With `legacy_path_rules` set, the pre-graph heuristics D2–D5 and S2
/// run too (standalone/fixture mode). Workspace runs pass `false`: the
/// call-graph engine re-implements those rule classes as reachability
/// checks (G1/G3), so a `HashMap` that is never iterated on any path
/// from a deterministic root no longer needs an allow.
pub fn check_line_with(
    rel: &str,
    kind: FileKind,
    code: &str,
    comment: &str,
    prev_comment: &str,
    legacy_path_rules: bool,
) -> Vec<Hit> {
    let mut hits = Vec::new();
    if kind == FileKind::Test {
        return hits;
    }

    // D1 — `partial_cmp` as a comparator. Implementing `PartialOrd`
    // itself (a `fn partial_cmp` definition) is the one sanctioned use.
    if has_ident(code, "partial_cmp") && !code.contains("fn partial_cmp") {
        hits.push(Hit {
            rule: "D1",
            message: "partial_cmp in a comparator: NaN returns None and \
                      poisons the ordering; use f64::total_cmp (or derive \
                      Ord on a non-float key)"
                .into(),
        });
    }

    // D2 — hash collections in deterministic paths.
    if legacy_path_rules && (has_ident(code, "HashMap") || has_ident(code, "HashSet")) {
        hits.push(Hit {
            rule: "D2",
            message: "HashMap/HashSet iteration order is randomized per \
                      process; use BTreeMap/BTreeSet, or justify that the \
                      collection is never iterated on a deterministic path"
                .into(),
        });
    }

    // D3 — wall-clock reads outside the observability wall channel.
    if legacy_path_rules
        && !path_has_prefix(rel, D3_EXEMPT)
        && (code.contains("Instant::now") || has_ident(code, "SystemTime"))
    {
        hits.push(Hit {
            rule: "D3",
            message: "wall-clock read outside core::obs: deterministic \
                      code must consume SimTime; route timing through the \
                      obs wall channel"
                .into(),
        });
    }

    // D4 — unseeded RNG construction outside bin targets.
    if legacy_path_rules
        && kind != FileKind::Bin
        && (has_ident(code, "thread_rng") || has_ident(code, "from_entropy"))
    {
        hits.push(Hit {
            rule: "D4",
            message: "unseeded RNG in library code: construct from a \
                      SeedTree stream so every run replays byte-identically"
                .into(),
        });
    }

    // D5 — thread creation outside the sanctioned owners.
    if legacy_path_rules
        && !path_has_prefix(rel, D5_EXEMPT)
        && (code.contains("thread::spawn")
            || code.contains("thread::Builder")
            || code.contains("thread::scope"))
    {
        hits.push(Hit {
            rule: "D5",
            message: "thread creation outside core::par/serve: use \
                      par::Pool so completion order cannot leak into \
                      results"
                .into(),
        });
    }

    // S1 — unsafe code.
    if has_ident(code, "unsafe") {
        if !UNSAFE_ALLOWLIST.contains(&rel) {
            hits.push(Hit {
                rule: "S1",
                message: "unsafe outside the allowlist: every crate is \
                          #![forbid(unsafe_code)]; extend \
                          rules::UNSAFE_ALLOWLIST only with a measured \
                          justification"
                    .into(),
            });
        } else if !comment.contains("SAFETY:") && !prev_comment.contains("SAFETY:") {
            hits.push(Hit {
                rule: "S1",
                message: "unsafe block without a // SAFETY: comment on the \
                          same or preceding line"
                    .into(),
            });
        }
    }

    // S2 — panicking extractors in non-test library code.
    if legacy_path_rules
        && kind == FileKind::Lib
        && (code.contains(".unwrap(") || code.contains(".expect("))
    {
        hits.push(Hit {
            rule: "S2",
            message: "unwrap/expect in library code: return CoreError (or \
                      justify the invariant with lint:allow)"
                .into(),
        });
    }

    hits
}
