//! Property-based tests for the topology substrate: the hop metric and
//! routing invariants must hold on arbitrary random trees, not just the
//! balanced fixtures of the unit suites.

use proptest::prelude::*;
use specweb_core::ids::{NodeId, ServerId};
use specweb_core::rng::SeedTree;
use specweb_netsim::cluster::{Cluster, ClusterMap};
use specweb_netsim::routing::Router;
use specweb_netsim::topology::Topology;

fn random_topology(seed: u64, n_interior: u32, n_leaves: u32) -> Topology {
    Topology::random(&SeedTree::new(seed), n_interior, n_leaves, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hop_metric_axioms(seed in 0u64..500, ai in 0usize..64, bi in 0usize..64) {
        let topo = random_topology(seed, 20, 40);
        let n = topo.len();
        let a = NodeId::new((ai % n) as u32);
        let b = NodeId::new((bi % n) as u32);
        // Identity and symmetry.
        prop_assert_eq!(topo.hops(a, a), 0);
        prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
        // Consistency with depth: distance to the root is the depth.
        prop_assert_eq!(topo.hops(a, Topology::ROOT), topo.depth(a));
    }

    #[test]
    fn triangle_inequality(seed in 0u64..200, ai in 0usize..64, bi in 0usize..64, ci in 0usize..64) {
        let topo = random_topology(seed, 15, 30);
        let n = topo.len();
        let a = NodeId::new((ai % n) as u32);
        let b = NodeId::new((bi % n) as u32);
        let c = NodeId::new((ci % n) as u32);
        prop_assert!(topo.hops(a, b) <= topo.hops(a, c) + topo.hops(c, b));
    }

    #[test]
    fn lca_is_a_common_ancestor_on_both_paths(seed in 0u64..200, ai in 0usize..64, bi in 0usize..64) {
        let topo = random_topology(seed, 15, 30);
        let n = topo.len();
        let a = NodeId::new((ai % n) as u32);
        let b = NodeId::new((bi % n) as u32);
        let l = topo.lca(a, b);
        prop_assert!(topo.is_ancestor(l, a));
        prop_assert!(topo.is_ancestor(l, b));
        // And the hop metric decomposes exactly through it.
        prop_assert_eq!(
            topo.hops(a, b),
            topo.hops(a, l) + topo.hops(l, b)
        );
    }

    #[test]
    fn path_to_root_is_consistent(seed in 0u64..200, ai in 0usize..64) {
        let topo = random_topology(seed, 15, 30);
        let n = topo.len();
        let a = NodeId::new((ai % n) as u32);
        let path = topo.path_to_root(a);
        prop_assert_eq!(path.len() as u32, topo.depth(a) + 1);
        for (i, w) in path.windows(2).enumerate() {
            prop_assert_eq!(topo.parent(w[0]), w[1]);
            prop_assert_eq!(topo.depth(w[0]), topo.depth(a) - i as u32);
        }
    }

    #[test]
    fn leaf_counts_are_consistent(seed in 0u64..200) {
        let topo = random_topology(seed, 20, 50);
        let counts = topo.leaf_counts();
        prop_assert_eq!(counts[0] as usize, topo.leaves().len());
        // Each node's count equals the number of leaves it is an
        // ancestor of.
        for idx in (0..topo.len()).step_by(7) {
            let node = NodeId::new(idx as u32);
            let direct = topo
                .leaves()
                .iter()
                .filter(|&&l| topo.is_ancestor(node, l))
                .count();
            prop_assert_eq!(counts[idx] as usize, direct);
        }
    }

    #[test]
    fn route_interceptions_are_on_path_and_sorted(seed in 0u64..100, li in 0usize..64, k in 1usize..6) {
        let topo = random_topology(seed, 15, 30);
        let leaves = topo.leaves();
        let leaf = leaves[li % leaves.len()];
        let server = ServerId::new(0);

        // Front the server with k arbitrary interior nodes.
        let interior = topo.interior_nodes();
        let mut map = ClusterMap::new();
        for i in 0..k.min(interior.len()) {
            map.add(&topo, Cluster::new(interior[i * interior.len() / k.max(1) % interior.len()], vec![server])).ok();
        }
        let route = Router::new(&topo, &map).route(leaf, server);

        prop_assert_eq!(route.origin_hops, topo.depth(leaf));
        let mut prev = 0u32;
        for itc in &route.interceptions {
            // On the client's path to the root…
            prop_assert!(topo.is_ancestor(itc.proxy, leaf));
            // …at the correct distance…
            prop_assert_eq!(itc.hops_from_client, topo.hops(leaf, itc.proxy));
            // …sorted nearest-first and strictly before the origin.
            prop_assert!(itc.hops_from_client >= prev);
            prop_assert!(itc.hops_from_client < route.origin_hops);
            prev = itc.hops_from_client;
        }
    }
}
