//! Property tests for the proxy store: accounting invariants must hold
//! under arbitrary interleavings of installs, quota changes and
//! shedding.

use proptest::prelude::*;
use specweb_core::ids::{DocId, ServerId};
use specweb_core::units::Bytes;
use specweb_netsim::proxystore::ProxyStore;

/// One operation against the store.
#[derive(Debug, Clone)]
enum Op {
    SetQuota { server: u8, kib: u16 },
    Install { server: u8, doc: u16, kib: u16 },
    Shed { factor_pct: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u16..256).prop_map(|(server, kib)| Op::SetQuota { server, kib }),
        (0u8..4, 0u16..64, 1u16..64).prop_map(|(server, doc, kib)| Op::Install {
            server,
            doc,
            kib
        }),
        (0u8..=100).prop_map(|factor_pct| Op::Shed { factor_pct }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn store_accounting_invariants(
        capacity_kib in 16u64..512,
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        let capacity = Bytes::from_kib(capacity_kib);
        let mut store = ProxyStore::new(capacity);
        // Shadow model: per-server resident docs and sizes.
        let mut model: std::collections::HashMap<u8, std::collections::HashMap<u16, u64>> =
            std::collections::HashMap::new();

        for op in &ops {
            match *op {
                Op::SetQuota { server, kib } => {
                    store.set_quota(ServerId::new(server.into()), Bytes::from_kib(kib.into()));
                    // The store may evict; resync the shadow below.
                }
                Op::Install { server, doc, kib } => {
                    let r = store.install(
                        ServerId::new(server.into()),
                        DocId::new(doc.into()),
                        Bytes::from_kib(kib.into()),
                    );
                    if r.is_ok() {
                        // Mirror the store's idempotence: a re-install of
                        // a held doc keeps the original size.
                        model
                            .entry(server)
                            .or_default()
                            .entry(doc)
                            .or_insert(u64::from(kib) * 1024);
                    }
                }
                Op::Shed { factor_pct } => {
                    store.shed(f64::from(factor_pct) / 100.0).unwrap();
                }
            }
            // Resync shadow against the store's own view (evictions are
            // the store's prerogative; membership must only shrink from
            // the tail, which the unit tests check — here we check the
            // global invariants).
            for (server, docs) in model.iter_mut() {
                docs.retain(|doc, _| {
                    store.contains(ServerId::new((*server).into()), DocId::new((*doc).into()))
                });
            }

            // Invariant 1: used never exceeds capacity.
            prop_assert!(store.used() <= capacity);
            // Invariant 2: per-server usage never exceeds its quota.
            for s in 0u8..4 {
                let sid = ServerId::new(s.into());
                prop_assert!(store.used_by(sid) <= store.quota(sid),
                    "server {s}: used {} > quota {}", store.used_by(sid), store.quota(sid));
            }
            // Invariant 3: used equals the sum of resident doc sizes.
            let model_total: u64 = model.values().flat_map(|d| d.values()).sum();
            prop_assert_eq!(store.used().get(), model_total);
            // Invariant 4: doc counts agree.
            for s in 0u8..4 {
                let sid = ServerId::new(s.into());
                let n = model.get(&s).map_or(0, |d| d.len());
                prop_assert_eq!(store.doc_count(sid), n);
            }
        }
    }
}
