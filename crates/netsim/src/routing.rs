//! Request routing and interception.
//!
//! A client request travels up the clientele tree toward the home
//! server (which sits at the root — the tree is *rooted at the server*,
//! §2.1). Every proxy on that upward path that fronts the target server
//! is an interception opportunity; the one closest to the client that
//! holds the requested document serves it, shortening the path and
//! saving `bytes × hops_saved` of traffic.

use serde::{Deserialize, Serialize};
use specweb_core::ids::{NodeId, ServerId};

use crate::cluster::ClusterMap;
use crate::topology::Topology;

/// One interception opportunity on a request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interception {
    /// The proxy node.
    pub proxy: NodeId,
    /// Hops from the client to this proxy.
    pub hops_from_client: u32,
}

/// A resolved request path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// The requesting client's leaf node.
    pub client: NodeId,
    /// The target home server.
    pub server: ServerId,
    /// Proxies fronting `server` on the client→root path, nearest first.
    pub interceptions: Vec<Interception>,
    /// Hops from the client all the way to the home server (the root).
    pub origin_hops: u32,
}

impl Route {
    /// The hop count at which the request is served if the nearest proxy
    /// holding the document is `idx` (an index into `interceptions`),
    /// or the full origin distance when `idx` is `None`.
    pub fn served_hops(&self, idx: Option<usize>) -> u32 {
        match idx {
            Some(i) => self.interceptions[i].hops_from_client,
            None => self.origin_hops,
        }
    }
}

/// Resolves request paths over a topology and a cluster map.
#[derive(Debug, Clone)]
pub struct Router<'a> {
    topo: &'a Topology,
    clusters: &'a ClusterMap,
}

impl<'a> Router<'a> {
    /// Creates a router.
    pub fn new(topo: &'a Topology, clusters: &'a ClusterMap) -> Self {
        Router { topo, clusters }
    }

    /// The topology this router resolves against.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Resolves the path from `client` (a leaf) to `server` (at the
    /// root), collecting interception opportunities nearest-first.
    pub fn route(&self, client: NodeId, server: ServerId) -> Route {
        let path = self.topo.path_to_root(client);
        let mut interceptions = Vec::new();
        for (hops, &node) in path.iter().enumerate() {
            if node == Topology::ROOT {
                break;
            }
            if self
                .clusters
                .clusters()
                .iter()
                .any(|c| c.proxy == node && c.servers.contains(&server))
            {
                interceptions.push(Interception {
                    proxy: node,
                    hops_from_client: hops as u32,
                });
            }
        }
        Route {
            client,
            server,
            interceptions,
            origin_hops: self.topo.depth(client),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::topology::{NodeKind, TopologyBuilder};

    /// root → region → edge → leaf, with proxies at region and edge.
    fn chain_topology() -> (Topology, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let region = b.add(Topology::ROOT, NodeKind::Interior);
        let edge = b.add(region, NodeKind::Interior);
        let leaf = b.add(edge, NodeKind::Leaf);
        (b.build(), region, edge, leaf)
    }

    #[test]
    fn route_collects_interceptions_nearest_first() {
        let (topo, region, edge, leaf) = chain_topology();
        let s = ServerId::new(0);
        let mut map = ClusterMap::new();
        map.add(&topo, Cluster::new(edge, vec![s])).unwrap();
        map.add(&topo, Cluster::new(region, vec![s])).unwrap();

        let r = Router::new(&topo, &map).route(leaf, s);
        assert_eq!(r.origin_hops, 3);
        assert_eq!(r.interceptions.len(), 2);
        assert_eq!(r.interceptions[0].proxy, edge);
        assert_eq!(r.interceptions[0].hops_from_client, 1);
        assert_eq!(r.interceptions[1].proxy, region);
        assert_eq!(r.interceptions[1].hops_from_client, 2);
    }

    #[test]
    fn route_ignores_proxies_for_other_servers() {
        let (topo, _region, edge, leaf) = chain_topology();
        let mut map = ClusterMap::new();
        map.add(&topo, Cluster::new(edge, vec![ServerId::new(7)]))
            .unwrap();
        let r = Router::new(&topo, &map).route(leaf, ServerId::new(0));
        assert!(r.interceptions.is_empty());
        assert_eq!(r.served_hops(None), 3);
    }

    #[test]
    fn route_ignores_off_path_proxies() {
        // Two edges under the root; proxy on edge B must not intercept
        // requests from a leaf under edge A.
        let mut b = TopologyBuilder::new();
        let ea = b.add(Topology::ROOT, NodeKind::Interior);
        let eb = b.add(Topology::ROOT, NodeKind::Interior);
        let leaf_a = b.add(ea, NodeKind::Leaf);
        let topo = b.build();
        let s = ServerId::new(0);
        let mut map = ClusterMap::new();
        map.add(&topo, Cluster::new(eb, vec![s])).unwrap();
        let r = Router::new(&topo, &map).route(leaf_a, s);
        assert!(r.interceptions.is_empty());
    }

    #[test]
    fn served_hops_picks_interception_or_origin() {
        let (topo, region, edge, leaf) = chain_topology();
        let s = ServerId::new(0);
        let mut map = ClusterMap::new();
        map.add(&topo, Cluster::new(edge, vec![s])).unwrap();
        map.add(&topo, Cluster::new(region, vec![s])).unwrap();
        let r = Router::new(&topo, &map).route(leaf, s);
        assert_eq!(r.served_hops(Some(0)), 1);
        assert_eq!(r.served_hops(Some(1)), 2);
        assert_eq!(r.served_hops(None), 3);
    }
}
