//! The clientele tree.
//!
//! §2.1: *"For a given home server, we view the WWW clientele (Internet)
//! as a tree rooted at the server. The leaves of that tree are the
//! clients and the internal nodes are the potential proxies."* The paper
//! built a 34,000-node tree for `cs-www.bu.edu` from TCP/IP record-route
//! data; we build synthetic trees with the same structure (root = the
//! server's attachment, interior = candidate proxies, leaves = client
//! attachment points) and compute hop distances exactly.

use rand::Rng;
use serde::{Deserialize, Serialize};
use specweb_core::ids::NodeId;
use specweb_core::rng::SeedTree;

/// What a tree node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// The root — the home-server side of the network.
    Root,
    /// An interior node: a potential service-proxy location.
    Interior,
    /// A leaf: a client attachment point.
    Leaf,
}

/// An immutable rooted tree with parent pointers, depths and child lists.
///
/// Node 0 is always the root. Hop distance between two nodes is computed
/// via their lowest common ancestor by walking parent pointers — O(depth),
/// which is tiny for the shallow trees that model autonomous-system
/// hierarchies (depth 3–8).
///
/// ```
/// use specweb_netsim::topology::Topology;
/// // root → 3 edges → 4 leaves each.
/// let t = Topology::two_level(3, 4);
/// let a = t.leaves()[0];
/// let b = t.leaves()[11];
/// assert_eq!(t.depth(a), 2);
/// assert_eq!(t.hops(a, Topology::ROOT), 2);
/// assert_eq!(t.hops(a, b), 4); // up to the root, down the other edge
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    parent: Vec<u32>,
    depth: Vec<u32>,
    kind: Vec<NodeKind>,
    children: Vec<Vec<u32>>,
    leaves: Vec<NodeId>,
}

impl Topology {
    /// The root node (always id 0).
    pub const ROOT: NodeId = NodeId(0);

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty (never true — builders always produce a
    /// root).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The parent of `n`; the root is its own parent.
    #[inline]
    pub fn parent(&self, n: NodeId) -> NodeId {
        NodeId(self.parent[n.index()])
    }

    /// Depth of `n` (root = 0).
    #[inline]
    pub fn depth(&self, n: NodeId) -> u32 {
        self.depth[n.index()]
    }

    /// The kind of `n`.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kind[n.index()]
    }

    /// Children of `n`.
    pub fn children(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children[n.index()].iter().map(|&c| NodeId(c))
    }

    /// All leaf nodes, in id order.
    #[inline]
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// All interior (candidate-proxy) nodes, in id order.
    pub fn interior_nodes(&self) -> Vec<NodeId> {
        (0..self.len() as u32)
            .map(NodeId)
            .filter(|&n| self.kind(n) == NodeKind::Interior)
            .collect()
    }

    /// Lowest common ancestor of `a` and `b`.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a);
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b);
        }
        while a != b {
            a = self.parent(a);
            b = self.parent(b);
        }
        a
    }

    /// Hop distance between `a` and `b` (edges on the tree path).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let l = self.lca(a, b);
        (self.depth(a) - self.depth(l)) + (self.depth(b) - self.depth(l))
    }

    /// The path from `n` up to the root, inclusive of both endpoints.
    pub fn path_to_root(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.depth(n) as usize + 1);
        let mut cur = n;
        out.push(cur);
        while cur != Self::ROOT {
            cur = self.parent(cur);
            out.push(cur);
        }
        out
    }

    /// Whether `anc` is an ancestor of `n` (or equal to it).
    pub fn is_ancestor(&self, anc: NodeId, n: NodeId) -> bool {
        let mut cur = n;
        loop {
            if cur == anc {
                return true;
            }
            if cur == Self::ROOT {
                return false;
            }
            cur = self.parent(cur);
        }
    }

    /// The subtree leaf count below each node — useful for placing
    /// proxies where they cover many clients.
    pub fn leaf_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.len()];
        // Nodes are created parents-first, so a reverse scan accumulates
        // child counts before the parent is visited.
        for i in (0..self.len()).rev() {
            if self.kind[i] == NodeKind::Leaf {
                counts[i] = 1;
            }
            if i != 0 {
                let p = self.parent[i] as usize;
                counts[p] += counts[i];
            }
        }
        counts
    }
}

/// Incremental tree builder. Nodes must be added parent-first (the
/// builder enforces it), which gives the `Topology` its useful
/// "children have larger ids than parents" invariant.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    parent: Vec<u32>,
    depth: Vec<u32>,
    kind: Vec<NodeKind>,
}

impl TopologyBuilder {
    /// Starts a tree containing only the root.
    pub fn new() -> Self {
        TopologyBuilder {
            parent: vec![0],
            depth: vec![0],
            kind: vec![NodeKind::Root],
        }
    }

    /// Adds a node under `parent` and returns its id.
    ///
    /// # Panics
    /// Panics if `parent` does not exist yet (nodes are parent-first).
    pub fn add(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        assert!(
            parent.index() < self.parent.len(),
            "parent {parent} does not exist"
        );
        assert_ne!(kind, NodeKind::Root, "only one root allowed");
        let id = self.parent.len() as u32;
        self.parent.push(parent.raw());
        self.depth.push(self.depth[parent.index()] + 1);
        self.kind.push(kind);
        NodeId(id)
    }

    /// Finalizes the tree.
    pub fn build(self) -> Topology {
        let n = self.parent.len();
        let mut children = vec![Vec::new(); n];
        for i in 1..n {
            children[self.parent[i] as usize].push(i as u32);
        }
        let leaves = (0..n as u32)
            .map(NodeId)
            .filter(|&x| self.kind[x.index()] == NodeKind::Leaf)
            .collect();
        Topology {
            parent: self.parent,
            depth: self.depth,
            kind: self.kind,
            children,
            leaves,
        }
    }
}

impl Topology {
    /// A balanced tree: `levels` interior levels each with fan-out
    /// `fanout`, and `leaves_per_node` client leaves under every
    /// bottom-level interior node.
    ///
    /// With `levels = 2, fanout = 4, leaves_per_node = 8` this models a
    /// backbone → regional → campus hierarchy with 32 client populations.
    pub fn balanced(levels: u32, fanout: u32, leaves_per_node: u32) -> Topology {
        let mut b = TopologyBuilder::new();
        let mut frontier = vec![Topology::ROOT];
        for _ in 0..levels {
            let mut next = Vec::with_capacity(frontier.len() * fanout as usize);
            for &p in &frontier {
                for _ in 0..fanout {
                    next.push(b.add(p, NodeKind::Interior));
                }
            }
            frontier = next;
        }
        for &p in &frontier {
            for _ in 0..leaves_per_node {
                b.add(p, NodeKind::Leaf);
            }
        }
        b.build()
    }

    /// A two-level "campus" topology: `n_edges` edge networks under the
    /// root, each with `clients_per_edge` leaves. The edge nodes are the
    /// natural proxy locations ("proxies at the edge of the
    /// organization", §2).
    pub fn two_level(n_edges: u32, clients_per_edge: u32) -> Topology {
        Topology::balanced(1, n_edges, clients_per_edge)
    }

    /// A random hierarchy: starting from the root, each interior node
    /// gets `1..=max_fanout` random interior children until `n_interior`
    /// nodes exist, then `n_leaves` leaves are attached to random
    /// interior nodes. Models the irregular record-route trees of §2.1.
    pub fn random(seed: &SeedTree, n_interior: u32, n_leaves: u32, max_fanout: u32) -> Topology {
        let mut rng = seed.child("topology").rng();
        let mut b = TopologyBuilder::new();
        let mut interior = vec![Topology::ROOT];
        while interior.len() < n_interior as usize + 1 {
            let p = interior[rng.gen_range(0..interior.len())];
            let burst = rng.gen_range(1..=max_fanout.max(1));
            for _ in 0..burst {
                if interior.len() > n_interior as usize {
                    break;
                }
                interior.push(b.add(p, NodeKind::Interior));
            }
        }
        for _ in 0..n_leaves {
            // Attach leaves anywhere except the root, preferring deeper
            // nodes (clients live at the fringes of the hierarchy).
            let idx = 1 + rng.gen_range(0..interior.len().saturating_sub(1).max(1));
            let p = interior[idx.min(interior.len() - 1)];
            b.add(p, NodeKind::Leaf);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut b = TopologyBuilder::new();
        let a = b.add(Topology::ROOT, NodeKind::Interior);
        let l1 = b.add(a, NodeKind::Leaf);
        let l2 = b.add(a, NodeKind::Leaf);
        let t = b.build();
        assert_eq!(t.len(), 4);
        assert_eq!(t.parent(l1), a);
        assert_eq!(t.depth(l1), 2);
        assert_eq!(t.kind(a), NodeKind::Interior);
        assert_eq!(t.leaves(), &[l1, l2]);
        assert_eq!(t.children(a).collect::<Vec<_>>(), vec![l1, l2]);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn builder_rejects_unknown_parent() {
        let mut b = TopologyBuilder::new();
        b.add(NodeId(99), NodeKind::Leaf);
    }

    #[test]
    fn hops_and_lca() {
        //        0
        //      /   \
        //     1     2
        //    / \     \
        //   3   4     5
        let mut b = TopologyBuilder::new();
        let n1 = b.add(Topology::ROOT, NodeKind::Interior);
        let n2 = b.add(Topology::ROOT, NodeKind::Interior);
        let n3 = b.add(n1, NodeKind::Leaf);
        let n4 = b.add(n1, NodeKind::Leaf);
        let n5 = b.add(n2, NodeKind::Leaf);
        let t = b.build();
        assert_eq!(t.lca(n3, n4), n1);
        assert_eq!(t.lca(n3, n5), Topology::ROOT);
        assert_eq!(t.lca(n3, n3), n3);
        assert_eq!(t.lca(n1, n3), n1);
        assert_eq!(t.hops(n3, n4), 2);
        assert_eq!(t.hops(n3, n5), 4);
        assert_eq!(t.hops(n3, Topology::ROOT), 2);
        assert_eq!(t.hops(n3, n3), 0);
    }

    #[test]
    fn path_to_root_and_ancestry() {
        let t = Topology::balanced(2, 2, 1);
        let leaf = t.leaves()[0];
        let path = t.path_to_root(leaf);
        assert_eq!(path.first(), Some(&leaf));
        assert_eq!(path.last(), Some(&Topology::ROOT));
        assert_eq!(path.len() as u32, t.depth(leaf) + 1);
        for w in path.windows(2) {
            assert_eq!(t.parent(w[0]), w[1]);
        }
        assert!(t.is_ancestor(Topology::ROOT, leaf));
        assert!(t.is_ancestor(leaf, leaf));
        assert!(!t.is_ancestor(leaf, Topology::ROOT));
    }

    #[test]
    fn balanced_shape() {
        let t = Topology::balanced(2, 3, 4);
        // 1 root + 3 + 9 interior + 36 leaves.
        assert_eq!(t.len(), 1 + 3 + 9 + 36);
        assert_eq!(t.leaves().len(), 36);
        assert_eq!(t.interior_nodes().len(), 12);
        for &l in t.leaves() {
            assert_eq!(t.depth(l), 3);
        }
    }

    #[test]
    fn two_level_shape() {
        let t = Topology::two_level(5, 10);
        assert_eq!(t.leaves().len(), 50);
        assert_eq!(t.interior_nodes().len(), 5);
        for &l in t.leaves() {
            assert_eq!(t.depth(l), 2);
        }
    }

    #[test]
    fn random_tree_is_well_formed() {
        let seed = SeedTree::new(11);
        let t = Topology::random(&seed, 40, 200, 4);
        assert_eq!(t.leaves().len(), 200);
        assert_eq!(t.interior_nodes().len(), 40);
        // Parent-first invariant.
        for i in 1..t.len() {
            assert!(t.parent[i] < i as u32);
        }
        // Deterministic under the same seed.
        let t2 = Topology::random(&seed, 40, 200, 4);
        assert_eq!(t.parent, t2.parent);
    }

    #[test]
    fn leaf_counts_sum_at_root() {
        let t = Topology::balanced(2, 3, 4);
        let counts = t.leaf_counts();
        assert_eq!(counts[0], 36);
        // A bottom-level interior node covers exactly its 4 leaves.
        let bottom = t
            .interior_nodes()
            .into_iter()
            .find(|&n| t.depth(n) == 2)
            .unwrap();
        assert_eq!(counts[bottom.index()], 4);
    }

    #[test]
    fn root_is_its_own_parent() {
        let t = Topology::two_level(2, 2);
        assert_eq!(t.parent(Topology::ROOT), Topology::ROOT);
        assert_eq!(t.depth(Topology::ROOT), 0);
        assert_eq!(t.kind(Topology::ROOT), NodeKind::Root);
    }
}
