//! Cost, traffic and service-time models.
//!
//! Three pieces of accounting drive the paper's evaluation:
//!
//! * the §3.2 **cost model** — a symmetric network where moving one byte
//!   costs `CommCost` and serving one request costs `ServCost`
//!   (baseline 1 : 10,000);
//! * **traffic in bytes×hops** — Fig. 3 measures dissemination savings
//!   in hop-weighted bytes, so transfers must know their path length;
//! * a **service-time model** — client-perceived latency composed of a
//!   fixed per-request server overhead, a per-hop propagation cost and a
//!   bandwidth-limited transfer term. The 1995 numbers (28.8k modems,
//!   multi-second page loads) don't matter; the *structure* (latency ∝
//!   overhead + distance + size) is what the service-time ratio needs.

use serde::{Deserialize, Serialize};
use specweb_core::time::Duration;
use specweb_core::units::{ByteHops, Bytes};

/// The §3.2 cost model: per-byte communication cost vs. per-request
/// service cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of communicating one byte between any server and any client.
    pub comm_cost: f64,
    /// Cost of servicing one request.
    pub serv_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Paper baseline: CommCost = 1 unit, ServCost = 10,000 units.
        CostModel {
            comm_cost: 1.0,
            serv_cost: 10_000.0,
        }
    }
}

impl CostModel {
    /// Combined cost of a run that moved `bytes` and served `requests`.
    pub fn cost(&self, bytes: Bytes, requests: u64) -> f64 {
        self.comm_cost * bytes.as_f64() + self.serv_cost * requests as f64
    }
}

/// Client-perceived latency model.
///
/// `latency = request_overhead + hops × per_hop + size / bandwidth`,
/// with cache hits costing zero (the document is already local).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed server processing overhead per request.
    pub request_overhead: Duration,
    /// Propagation cost per network hop (round trip share).
    pub per_hop: Duration,
    /// Transfer bandwidth in bytes per second.
    pub bytes_per_sec: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // 1995-flavored defaults: 50 ms server overhead, 10 ms per hop,
        // ~128 kB/s effective transfer rate.
        LatencyModel {
            request_overhead: Duration::from_millis(50),
            per_hop: Duration::from_millis(10),
            bytes_per_sec: 128 * 1024,
        }
    }
}

impl LatencyModel {
    /// Latency of fetching `size` bytes across `hops` hops.
    pub fn fetch(&self, size: Bytes, hops: u32) -> Duration {
        let transfer_ms = if self.bytes_per_sec == 0 {
            0
        } else {
            // Round up: a 1-byte transfer still costs a millisecond slot.
            (size.get().saturating_mul(1_000)).div_ceil(self.bytes_per_sec)
        };
        self.request_overhead + self.per_hop * u64::from(hops) + Duration::from_millis(transfer_ms)
    }

    /// Latency of a local cache hit — zero by definition; kept as a
    /// method so the simulators read symmetrically.
    pub fn cache_hit(&self) -> Duration {
        Duration::ZERO
    }
}

/// Accumulates traffic in both raw bytes and hop-weighted bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficAccount {
    /// Total raw bytes moved.
    pub bytes: Bytes,
    /// Total hop-weighted bytes moved.
    pub byte_hops: ByteHops,
    /// Number of transfers recorded.
    pub transfers: u64,
}

impl TrafficAccount {
    /// An empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transfer of `size` bytes over `hops` hops.
    pub fn record(&mut self, size: Bytes, hops: u32) {
        self.bytes += size;
        self.byte_hops += size.over_hops(hops);
        self.transfers += 1;
    }

    /// Merges another account.
    pub fn merge(&mut self, other: &TrafficAccount) {
        self.bytes += other.bytes;
        // lint:allow(W1): ByteHops AddAssign saturates (units::unit_arith!)
        self.byte_hops += other.byte_hops;
        self.transfers = self.transfers.saturating_add(other.transfers);
    }

    /// Fraction of hop-weighted traffic saved relative to `baseline`
    /// (positive = improvement).
    pub fn byte_hops_saved_vs(&self, baseline: &TrafficAccount) -> f64 {
        1.0 - self.byte_hops.ratio(baseline.byte_hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_defaults_match_paper() {
        let m = CostModel::default();
        assert_eq!(m.comm_cost, 1.0);
        assert_eq!(m.serv_cost, 10_000.0);
        assert!((m.cost(Bytes::new(500), 2) - 20_500.0).abs() < 1e-9);
    }

    #[test]
    fn latency_components_add_up() {
        let m = LatencyModel {
            request_overhead: Duration::from_millis(50),
            per_hop: Duration::from_millis(10),
            bytes_per_sec: 1_000,
        };
        // 50 + 3×10 + 2000 B / 1000 B/s = 50 + 30 + 2000 ms.
        assert_eq!(m.fetch(Bytes::new(2_000), 3), Duration::from_millis(2_080));
        assert_eq!(m.cache_hit(), Duration::ZERO);
    }

    #[test]
    fn latency_transfer_rounds_up() {
        let m = LatencyModel {
            request_overhead: Duration::ZERO,
            per_hop: Duration::ZERO,
            bytes_per_sec: 1_000,
        };
        assert_eq!(m.fetch(Bytes::new(1), 0), Duration::from_millis(1));
        assert_eq!(m.fetch(Bytes::new(1_001), 0), Duration::from_millis(1_001));
        assert_eq!(m.fetch(Bytes::new(1_999), 0), Duration::from_millis(1_999));
        assert_eq!(m.fetch(Bytes::new(999), 0), Duration::from_millis(999));
    }

    #[test]
    fn latency_zero_bandwidth_means_free_transfer() {
        let m = LatencyModel {
            request_overhead: Duration::from_millis(5),
            per_hop: Duration::ZERO,
            bytes_per_sec: 0,
        };
        assert_eq!(m.fetch(Bytes::from_mib(1), 0), Duration::from_millis(5));
    }

    #[test]
    fn latency_grows_with_distance_and_size() {
        let m = LatencyModel::default();
        assert!(m.fetch(Bytes::new(1_000), 5) > m.fetch(Bytes::new(1_000), 1));
        assert!(m.fetch(Bytes::from_kib(100), 3) > m.fetch(Bytes::new(100), 3));
    }

    #[test]
    fn traffic_account_records() {
        let mut t = TrafficAccount::new();
        t.record(Bytes::new(100), 3);
        t.record(Bytes::new(50), 1);
        assert_eq!(t.bytes, Bytes::new(150));
        assert_eq!(t.byte_hops, ByteHops(350));
        assert_eq!(t.transfers, 2);
    }

    #[test]
    fn traffic_merge_and_savings() {
        let mut base = TrafficAccount::new();
        base.record(Bytes::new(1_000), 4); // 4000 B·hop
        let mut better = TrafficAccount::new();
        better.record(Bytes::new(1_000), 1); // 1000 B·hop
        assert!((better.byte_hops_saved_vs(&base) - 0.75).abs() < 1e-12);

        let mut merged = TrafficAccount::new();
        merged.merge(&base);
        merged.merge(&better);
        assert_eq!(merged.bytes, Bytes::new(2_000));
        assert_eq!(merged.transfers, 2);
    }

    #[test]
    fn zero_hop_transfer_costs_no_byte_hops() {
        let mut t = TrafficAccount::new();
        t.record(Bytes::new(100), 0);
        assert_eq!(t.bytes, Bytes::new(100));
        assert_eq!(t.byte_hops, ByteHops::ZERO);
    }
}
