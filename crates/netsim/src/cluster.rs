//! Clusters and the server↔proxy mapping.
//!
//! §2.1: *"Let C = S₀, S₁, …, Sₙ denote all the servers in a particular
//! cluster, where S₀ is distinguished as the service proxy."* The model
//! explicitly allows a **many-to-many** mapping: a server may be fronted
//! by several proxies (disseminating its documents along multiple
//! routes), and a proxy may front servers from several clusters.

use serde::{Deserialize, Serialize};
use specweb_core::ids::{NodeId, ServerId};

use crate::topology::{NodeKind, Topology};

/// One cluster: a service proxy `S₀` (a topology node) plus the home
/// servers it represents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// The proxy's location in the topology tree.
    pub proxy: NodeId,
    /// The servers this proxy fronts.
    pub servers: Vec<ServerId>,
}

impl Cluster {
    /// Creates a cluster.
    pub fn new(proxy: NodeId, servers: Vec<ServerId>) -> Self {
        Cluster { proxy, servers }
    }

    /// Number of member servers (the paper's `n`).
    pub fn n(&self) -> usize {
        self.servers.len()
    }
}

/// The full many-to-many server↔proxy mapping over a topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterMap {
    clusters: Vec<Cluster>,
}

impl ClusterMap {
    /// An empty map.
    pub fn new() -> Self {
        ClusterMap::default()
    }

    /// Adds a cluster; the proxy node must be an interior node of `topo`.
    pub fn add(&mut self, topo: &Topology, cluster: Cluster) -> specweb_core::Result<()> {
        if cluster.proxy.index() >= topo.len() {
            return Err(specweb_core::CoreError::UnknownId {
                kind: "node",
                id: cluster.proxy.raw(),
            });
        }
        if topo.kind(cluster.proxy) != NodeKind::Interior {
            return Err(specweb_core::CoreError::invalid_config(
                "cluster.proxy",
                format!(
                    "{} is not an interior (candidate-proxy) node",
                    cluster.proxy
                ),
            ));
        }
        self.clusters.push(cluster);
        Ok(())
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// The proxies fronting `server`, in insertion order.
    pub fn proxies_of(&self, server: ServerId) -> Vec<NodeId> {
        self.clusters
            .iter()
            .filter(|c| c.servers.contains(&server))
            .map(|c| c.proxy)
            .collect()
    }

    /// The servers fronted by the proxy at `node`.
    pub fn servers_at(&self, node: NodeId) -> Vec<ServerId> {
        let mut out: Vec<ServerId> = self
            .clusters
            .iter()
            .filter(|c| c.proxy == node)
            .flat_map(|c| c.servers.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Picks the `k` interior nodes covering the most client leaves, and
    /// builds one cluster per node fronting all of `servers`. This is the
    /// "optimally locate the set of tree nodes to use as service proxies"
    /// step of §2.1, using leaf coverage as the demand proxy (the
    /// simulators refine it with actual access counts).
    pub fn coverage_placement(
        topo: &Topology,
        servers: &[ServerId],
        k: usize,
    ) -> specweb_core::Result<ClusterMap> {
        let counts = topo.leaf_counts();
        let mut interior = topo.interior_nodes();
        // Highest leaf coverage first; among equals prefer deeper nodes
        // (closer to clients ⇒ more hops saved per intercepted byte).
        interior.sort_by(|&a, &b| {
            counts[b.index()]
                .cmp(&counts[a.index()])
                .then(topo.depth(b).cmp(&topo.depth(a)))
                .then(a.cmp(&b))
        });
        let mut map = ClusterMap::new();
        for &node in interior.iter().take(k) {
            map.add(topo, Cluster::new(node, servers.to_vec()))?;
        }
        if map.clusters.is_empty() {
            return Err(specweb_core::CoreError::invalid_config(
                "placement.k",
                "no interior nodes available for proxy placement",
            ));
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: u32) -> Vec<ServerId> {
        (0..n).map(ServerId::new).collect()
    }

    #[test]
    fn add_and_query() {
        let topo = Topology::two_level(3, 4);
        let proxies = topo.interior_nodes();
        let mut map = ClusterMap::new();
        map.add(&topo, Cluster::new(proxies[0], servers(2)))
            .unwrap();
        map.add(
            &topo,
            Cluster::new(proxies[1], vec![ServerId::new(1), ServerId::new(2)]),
        )
        .unwrap();

        assert_eq!(map.clusters().len(), 2);
        assert_eq!(
            map.proxies_of(ServerId::new(1)),
            vec![proxies[0], proxies[1]]
        );
        assert_eq!(map.proxies_of(ServerId::new(0)), vec![proxies[0]]);
        assert_eq!(map.proxies_of(ServerId::new(9)), Vec::<NodeId>::new());
        assert_eq!(
            map.servers_at(proxies[1]),
            vec![ServerId::new(1), ServerId::new(2)]
        );
    }

    #[test]
    fn rejects_leaf_as_proxy() {
        let topo = Topology::two_level(2, 2);
        let leaf = topo.leaves()[0];
        let mut map = ClusterMap::new();
        let err = map.add(&topo, Cluster::new(leaf, servers(1)));
        assert!(err.is_err());
    }

    #[test]
    fn rejects_unknown_node() {
        let topo = Topology::two_level(2, 2);
        let mut map = ClusterMap::new();
        let err = map.add(&topo, Cluster::new(NodeId(999), servers(1)));
        assert!(err.is_err());
    }

    #[test]
    fn coverage_placement_prefers_big_subtrees() {
        // Build an asymmetric tree: edge A has 10 leaves, edge B has 2.
        let mut b = crate::topology::TopologyBuilder::new();
        let a = b.add(Topology::ROOT, NodeKind::Interior);
        let c = b.add(Topology::ROOT, NodeKind::Interior);
        for _ in 0..10 {
            b.add(a, NodeKind::Leaf);
        }
        for _ in 0..2 {
            b.add(c, NodeKind::Leaf);
        }
        let topo = b.build();
        let map = ClusterMap::coverage_placement(&topo, &servers(1), 1).unwrap();
        assert_eq!(map.clusters()[0].proxy, a);
    }

    #[test]
    fn coverage_placement_k_larger_than_interior_is_fine() {
        let topo = Topology::two_level(2, 3);
        let map = ClusterMap::coverage_placement(&topo, &servers(2), 10).unwrap();
        assert_eq!(map.clusters().len(), 2);
    }

    #[test]
    fn cluster_n() {
        let c = Cluster::new(NodeId(1), servers(5));
        assert_eq!(c.n(), 5);
    }
}
