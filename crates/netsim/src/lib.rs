//! # specweb-netsim
//!
//! The network substrate for the `specweb` reproduction of Bestavros,
//! ICDE 1996. The paper models the Internet, as seen from a home server,
//! as a **tree**: clients at the leaves, candidate *service proxies* at
//! the internal nodes, and clusters (one proxy fronting a set of home
//! servers) composed into a hierarchy (§2.1).
//!
//! This crate provides:
//!
//! * [`topology`] — the clientele tree: builders, parent/depth tables,
//!   hop distances via lowest common ancestor;
//! * [`cluster`] — clusters and the many-to-many server↔proxy mapping;
//! * [`routing`] — request paths (client → chain of proxies → home
//!   server) and interception points;
//! * [`cost`] — the §3.2 cost model (`CommCost`/`ServCost`), traffic
//!   accounting in bytes×hops, and a service-time model;
//! * [`proxystore`] — proxy replica storage with per-server quotas
//!   (`B_i`) and the dynamic load-shedding of §2.3;
//! * [`queueing`] — an M/G/1 server model translating the paper's
//!   request-count "server load" into response time under load;
//! * [`fault`] — deterministic fault-injection plans (link failures and
//!   delays, proxy crash/recovery windows, capacity faults) for
//!   degraded-mode evaluation.
//!
//! The substrate is deliberately *analytic*, not packet-level: the
//! paper's evaluation needs hop-weighted byte counts and a
//! request-latency model, not TCP dynamics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cost;
pub mod fault;
pub mod proxystore;
pub mod queueing;
pub mod routing;
pub mod topology;

pub use cluster::{Cluster, ClusterMap};
pub use cost::{CostModel, LatencyModel, TrafficAccount};
pub use fault::{FaultConfig, FaultPlan, FaultRate, FaultWindow, RetrySchedule};
pub use proxystore::ProxyStore;
pub use routing::Router;
pub use topology::{NodeKind, Topology, TopologyBuilder};
