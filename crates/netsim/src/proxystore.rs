//! Proxy replica storage.
//!
//! A service proxy holds, for each home server it fronts, a replica of
//! that server's most popular documents, bounded by a per-server quota
//! `B_i` (the allocation the §2 optimizer computes) and the proxy-wide
//! capacity `B_0 = Σ B_i`.
//!
//! Documents are installed **most popular first** — that ordering is the
//! definition of `H_i(b)` ("disseminating the most popular b bytes") —
//! so the eviction order for §2.3's dynamic load shedding ("when the
//! proxy becomes overloaded, B₀ is reduced, thus forcing more of the
//! requests back to the servers") is simply the reverse of installation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use specweb_core::ids::{DocId, ServerId};
use specweb_core::units::Bytes;
use specweb_core::{CoreError, Result};

/// The replica a proxy holds for one home server.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ServerReplica {
    quota: Bytes,
    used: Bytes,
    /// Installed documents in popularity order (most popular first).
    docs: Vec<(DocId, Bytes)>,
    /// Membership index for hit checks (a BTreeMap: the store derives
    /// Serialize, so its layout must not follow hash iteration order).
    member: BTreeMap<DocId, Bytes>,
}

/// A proxy's document store with per-server quotas.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProxyStore {
    capacity: Bytes,
    used: Bytes,
    replicas: BTreeMap<ServerId, ServerReplica>,
}

impl ProxyStore {
    /// Creates a store with total capacity `B_0`.
    pub fn new(capacity: Bytes) -> Self {
        ProxyStore {
            capacity,
            used: Bytes::ZERO,
            replicas: BTreeMap::new(),
        }
    }

    /// Total capacity `B_0`.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Sets the quota `B_i` for `server`. Shrinking a quota below the
    /// replica's current usage evicts least-popular documents to fit.
    pub fn set_quota(&mut self, server: ServerId, quota: Bytes) {
        let rep = self.replicas.entry(server).or_default();
        rep.quota = quota;
        while rep.used > rep.quota {
            // used > 0 implies docs; an empty replica just ends the loop.
            let Some((doc, size)) = rep.docs.pop() else {
                break;
            };
            rep.member.remove(&doc);
            rep.used -= size;
            self.used -= size;
        }
    }

    /// The quota currently assigned to `server` (zero if unknown).
    pub fn quota(&self, server: ServerId) -> Bytes {
        self.replicas
            .get(&server)
            .map(|r| r.quota)
            .unwrap_or(Bytes::ZERO)
    }

    /// Bytes used by `server`'s replica.
    pub fn used_by(&self, server: ServerId) -> Bytes {
        self.replicas
            .get(&server)
            .map(|r| r.used)
            .unwrap_or(Bytes::ZERO)
    }

    /// Installs a document into `server`'s replica. Call in decreasing
    /// popularity order. Fails (without side effects) if the document
    /// would exceed the server quota or the proxy capacity; the caller
    /// simply stops disseminating at that point.
    pub fn install(&mut self, server: ServerId, doc: DocId, size: Bytes) -> Result<()> {
        let rep = self.replicas.entry(server).or_default();
        if rep.member.contains_key(&doc) {
            return Ok(()); // idempotent: re-dissemination of a held doc
        }
        if rep.used + size > rep.quota {
            return Err(CoreError::invalid_config(
                "proxy.quota",
                format!("{doc} ({size}) exceeds {server}'s remaining quota"),
            ));
        }
        if self.used + size > self.capacity {
            return Err(CoreError::invalid_config(
                "proxy.capacity",
                format!("{doc} ({size}) exceeds proxy capacity"),
            ));
        }
        rep.docs.push((doc, size));
        rep.member.insert(doc, size);
        rep.used += size;
        self.used += size;
        Ok(())
    }

    /// Whether the proxy can serve `doc` on behalf of `server`.
    pub fn contains(&self, server: ServerId, doc: DocId) -> bool {
        self.replicas
            .get(&server)
            .is_some_and(|r| r.member.contains_key(&doc))
    }

    /// Number of documents held for `server`.
    pub fn doc_count(&self, server: ServerId) -> usize {
        self.replicas.get(&server).map_or(0, |r| r.docs.len())
    }

    /// §2.3 dynamic load shedding: scales every server quota by `factor`
    /// (in `[0, 1]`), evicting least-popular documents as needed, which
    /// pushes the shed fraction of requests back to the home servers.
    pub fn shed(&mut self, factor: f64) -> Result<()> {
        if !(0.0..=1.0).contains(&factor) {
            return Err(CoreError::invalid_config(
                "proxy.shed_factor",
                format!("must be in [0, 1], got {factor}"),
            ));
        }
        let servers: Vec<ServerId> = self.replicas.keys().copied().collect();
        for s in servers {
            let new_quota = Bytes::new((self.replicas[&s].quota.as_f64() * factor).floor() as u64);
            self.set_quota(s, new_quota);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: ServerId = ServerId(0);

    fn store_with_quota(cap: u64, quota: u64) -> ProxyStore {
        let mut p = ProxyStore::new(Bytes::new(cap));
        p.set_quota(S, Bytes::new(quota));
        p
    }

    #[test]
    fn install_and_hit() {
        let mut p = store_with_quota(1_000, 500);
        p.install(S, DocId(1), Bytes::new(200)).unwrap();
        p.install(S, DocId(2), Bytes::new(300)).unwrap();
        assert!(p.contains(S, DocId(1)));
        assert!(p.contains(S, DocId(2)));
        assert!(!p.contains(S, DocId(3)));
        assert!(!p.contains(ServerId(9), DocId(1)));
        assert_eq!(p.used(), Bytes::new(500));
        assert_eq!(p.used_by(S), Bytes::new(500));
        assert_eq!(p.doc_count(S), 2);
    }

    #[test]
    fn install_is_idempotent() {
        let mut p = store_with_quota(1_000, 500);
        p.install(S, DocId(1), Bytes::new(200)).unwrap();
        p.install(S, DocId(1), Bytes::new(200)).unwrap();
        assert_eq!(p.used(), Bytes::new(200));
        assert_eq!(p.doc_count(S), 1);
    }

    #[test]
    fn quota_is_enforced() {
        let mut p = store_with_quota(1_000, 250);
        p.install(S, DocId(1), Bytes::new(200)).unwrap();
        assert!(p.install(S, DocId(2), Bytes::new(100)).is_err());
        // Failure has no side effects.
        assert_eq!(p.used(), Bytes::new(200));
        assert!(!p.contains(S, DocId(2)));
    }

    #[test]
    fn capacity_is_enforced_across_servers() {
        let mut p = ProxyStore::new(Bytes::new(300));
        p.set_quota(ServerId(0), Bytes::new(250));
        p.set_quota(ServerId(1), Bytes::new(250));
        p.install(ServerId(0), DocId(1), Bytes::new(200)).unwrap();
        // Within server 1's quota but over the proxy capacity.
        assert!(p.install(ServerId(1), DocId(2), Bytes::new(200)).is_err());
    }

    #[test]
    fn shrinking_quota_evicts_least_popular_first() {
        let mut p = store_with_quota(1_000, 600);
        p.install(S, DocId(1), Bytes::new(200)).unwrap(); // most popular
        p.install(S, DocId(2), Bytes::new(200)).unwrap();
        p.install(S, DocId(3), Bytes::new(200)).unwrap(); // least popular
        p.set_quota(S, Bytes::new(400));
        assert!(p.contains(S, DocId(1)));
        assert!(p.contains(S, DocId(2)));
        assert!(!p.contains(S, DocId(3)), "least popular must go first");
        assert_eq!(p.used(), Bytes::new(400));
    }

    #[test]
    fn shed_scales_all_quotas() {
        let mut p = ProxyStore::new(Bytes::new(2_000));
        p.set_quota(ServerId(0), Bytes::new(400));
        p.set_quota(ServerId(1), Bytes::new(600));
        p.install(ServerId(0), DocId(1), Bytes::new(400)).unwrap();
        p.install(ServerId(1), DocId(2), Bytes::new(300)).unwrap();
        p.install(ServerId(1), DocId(3), Bytes::new(300)).unwrap();
        p.shed(0.5).unwrap();
        assert_eq!(p.quota(ServerId(0)), Bytes::new(200));
        assert_eq!(p.quota(ServerId(1)), Bytes::new(300));
        // Server 0's single 400 B doc no longer fits its 200 B quota.
        assert!(!p.contains(ServerId(0), DocId(1)));
        // Server 1 keeps its most popular doc only.
        assert!(p.contains(ServerId(1), DocId(2)));
        assert!(!p.contains(ServerId(1), DocId(3)));
    }

    #[test]
    fn shed_rejects_bad_factor() {
        let mut p = ProxyStore::new(Bytes::new(100));
        assert!(p.shed(1.5).is_err());
        assert!(p.shed(-0.1).is_err());
        assert!(p.shed(1.0).is_ok());
    }

    #[test]
    fn shed_to_zero_forces_every_request_back_to_the_home_server() {
        let mut p = store_with_quota(1_000, 600);
        let docs = [DocId(1), DocId(2), DocId(3)];
        for d in docs {
            p.install(S, d, Bytes::new(200)).unwrap();
        }
        // Before shedding the proxy absorbs every request; afterwards
        // they all fall through — none are lost, just served upstream.
        let route = |p: &ProxyStore| {
            let (mut proxy_hits, mut origin_hits) = (0, 0);
            for d in docs {
                if p.contains(S, d) {
                    proxy_hits += 1;
                } else {
                    origin_hits += 1;
                }
            }
            (proxy_hits, origin_hits)
        };
        assert_eq!(route(&p), (3, 0));
        p.shed(0.0).unwrap();
        assert_eq!(route(&p), (0, 3), "shed work lands on the home server");
        assert_eq!(p.used(), Bytes::ZERO);
    }

    #[test]
    fn counters_are_conserved_through_shed_and_recovery() {
        let mut p = ProxyStore::new(Bytes::new(2_000));
        p.set_quota(ServerId(0), Bytes::new(600));
        p.set_quota(ServerId(1), Bytes::new(400));
        p.install(ServerId(0), DocId(1), Bytes::new(300)).unwrap();
        p.install(ServerId(0), DocId(2), Bytes::new(300)).unwrap();
        p.install(ServerId(1), DocId(3), Bytes::new(400)).unwrap();

        let check = |p: &ProxyStore| {
            let total = p.used_by(ServerId(0)) + p.used_by(ServerId(1));
            assert_eq!(p.used(), total, "proxy total must equal replica sum");
            assert!(p.used() <= p.capacity());
            assert!(p.used_by(ServerId(0)) <= p.quota(ServerId(0)));
            assert!(p.used_by(ServerId(1)) <= p.quota(ServerId(1)));
        };
        check(&p);
        p.shed(0.5).unwrap();
        check(&p);
        p.shed(0.0).unwrap();
        check(&p);
        assert_eq!(p.used(), Bytes::ZERO);
        // Recovery: quotas restored, the store accepts replicas again.
        p.set_quota(ServerId(0), Bytes::new(600));
        p.install(ServerId(0), DocId(1), Bytes::new(300)).unwrap();
        check(&p);
    }

    #[test]
    fn recovery_after_shedding_restores_service() {
        let mut p = store_with_quota(1_000, 400);
        p.install(S, DocId(1), Bytes::new(200)).unwrap(); // most popular
        p.install(S, DocId(2), Bytes::new(200)).unwrap();
        p.shed(0.5).unwrap();
        assert!(p.contains(S, DocId(1)), "survivors are the most popular");
        assert!(!p.contains(S, DocId(2)));
        // Load subsides: the quota is restored and the next
        // dissemination cycle re-installs what was evicted.
        p.set_quota(S, Bytes::new(400));
        p.install(S, DocId(2), Bytes::new(200)).unwrap();
        assert!(p.contains(S, DocId(1)));
        assert!(p.contains(S, DocId(2)));
        assert_eq!(p.used(), Bytes::new(400));
        assert_eq!(p.doc_count(S), 2);
    }

    #[test]
    fn unknown_server_queries_are_zero() {
        let p = ProxyStore::new(Bytes::new(100));
        assert_eq!(p.quota(S), Bytes::ZERO);
        assert_eq!(p.used_by(S), Bytes::ZERO);
        assert_eq!(p.doc_count(S), 0);
    }
}
