//! Deterministic fault injection for degraded-mode evaluation.
//!
//! The paper evaluates dissemination and speculation on a healthy
//! network. A robustness question it leaves open is how the protocols
//! behave when the substrate misbehaves: links fail and recover, proxies
//! crash, node capacity degrades. This module generates a **fault plan**
//! — a fixed schedule of fault windows derived from a [`SeedTree`] — that
//! the simulators replay against. Because the plan is materialized up
//! front (not sampled during replay), a given seed produces bit-for-bit
//! identical degraded-mode results on every run.
//!
//! Fault classes (each an independent renewal process per node, with
//! exponentially distributed up- and down-times):
//!
//! * **link faults** — the edge from a node to its parent is down; any
//!   request whose path crosses the edge cannot be served through it;
//! * **link delays** — the edge is up but slow by a constant factor
//!   (latency inflation);
//! * **proxy crashes** — an interior node loses its replica service
//!   until it recovers (requests fall through toward the home server);
//! * **capacity faults** — an interior node can only serve a fraction
//!   of the requests it sees while the window lasts;
//! * **slow clients** — a leaf drains responses slowly (its fetch
//!   latency is inflated), the classic event-loop stressor;
//! * **partial writes** — a leaf's transfers fragment into tiny pieces;
//!   a speculative push caught in the window arrives truncated and is
//!   re-sent or wasted;
//! * **stalls** — a leaf goes completely quiet mid-session and resumes
//!   when the window ends; its pending requests are deferred.
//!
//! The three client-side classes model the degraded peers the
//! `specweb-serve` event loop must absorb without pinning threads; the
//! serve chaos harness replays the same windows against real sockets.

use std::collections::BTreeMap;

use rand::Rng as _;
use serde::{Deserialize, Serialize};
use specweb_core::ids::NodeId;
use specweb_core::rng::SeedTree;
use specweb_core::time::{Duration, SimTime};
use specweb_core::{CoreError, Result};

use crate::topology::Topology;

/// A half-open interval `[start, end)` during which a fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub start: SimTime,
    /// First instant after recovery.
    pub end: SimTime,
}

impl FaultWindow {
    /// Is the fault active at `t`?
    #[inline]
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Mean up/down times of one renewal-process fault class.
///
/// `Duration::INFINITE` for `mean_up` disables the class entirely.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultRate {
    /// Mean time between fault onsets (exponential).
    pub mean_up: Duration,
    /// Mean time to recovery (exponential).
    pub mean_down: Duration,
}

impl FaultRate {
    /// A disabled fault class.
    pub const OFF: FaultRate = FaultRate {
        mean_up: Duration::INFINITE,
        mean_down: Duration::ZERO,
    };

    fn enabled(&self) -> bool {
        !self.mean_up.is_infinite()
    }

    fn validate(&self, what: &'static str) -> Result<()> {
        if self.enabled() && (self.mean_up.as_millis() == 0 || self.mean_down.as_millis() == 0) {
            return Err(CoreError::invalid_config(
                what,
                "mean_up and mean_down must be positive when the class is enabled",
            ));
        }
        Ok(())
    }
}

/// Configuration for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultConfig {
    /// The span of simulated time the plan covers.
    pub horizon: Duration,
    /// Link (edge-to-parent) failure process, per non-root node.
    pub link: FaultRate,
    /// Link slowdown process, per non-root node.
    pub slow: FaultRate,
    /// Latency multiplier while a link is slow (> 1).
    pub slow_factor: f64,
    /// Proxy crash/recovery process, per interior node.
    pub crash: FaultRate,
    /// Capacity-degradation process, per interior node.
    pub capacity: FaultRate,
    /// Fraction of request-serving capacity left during a capacity
    /// fault (in `(0, 1]`).
    pub capacity_factor: f64,
    /// Slow-client process, per leaf node: the client drains its
    /// responses slowly, inflating its fetch latency.
    pub slow_client: FaultRate,
    /// Fetch-latency multiplier while a client is slow (≥ 1).
    pub slow_client_factor: f64,
    /// Partial-write process, per leaf node: transfers fragment into
    /// tiny pieces; pushes caught in the window arrive truncated.
    pub partial_write: FaultRate,
    /// Stall process, per leaf node: the client goes silent until the
    /// window ends; its requests are deferred.
    pub stall: FaultRate,
}

impl FaultConfig {
    /// A mild default: most of the time everything is healthy, but each
    /// class fires a handful of times over a multi-week horizon.
    pub fn light(horizon: Duration) -> FaultConfig {
        FaultConfig {
            horizon,
            link: FaultRate {
                mean_up: Duration::from_days(6),
                mean_down: Duration::from_secs(3 * 3600),
            },
            slow: FaultRate {
                mean_up: Duration::from_days(3),
                mean_down: Duration::from_secs(6 * 3600),
            },
            slow_factor: 4.0,
            crash: FaultRate {
                mean_up: Duration::from_days(8),
                mean_down: Duration::from_secs(12 * 3600),
            },
            capacity: FaultRate {
                mean_up: Duration::from_days(4),
                mean_down: Duration::from_secs(8 * 3600),
            },
            capacity_factor: 0.25,
            // The client-side classes are off in the mild preset so the
            // committed degraded-mode experiment results are unchanged;
            // `chaotic` turns them on.
            slow_client: FaultRate::OFF,
            slow_client_factor: 1.0,
            partial_write: FaultRate::OFF,
            stall: FaultRate::OFF,
        }
    }

    /// The serve-chaos preset: everything in [`FaultConfig::light`]
    /// plus the client-side classes (slow clients, partial writes,
    /// stalls), with rates scaled off the horizon so a plan of any span
    /// — multi-week simulations or a seconds-long chaos run against
    /// real sockets — sees each class fire several times.
    pub fn chaotic(horizon: Duration) -> FaultConfig {
        let frac = |div: u64| Duration::from_millis((horizon.as_millis() / div).max(1));
        FaultConfig {
            slow_client: FaultRate {
                mean_up: frac(6),
                mean_down: frac(12),
            },
            slow_client_factor: 3.0,
            partial_write: FaultRate {
                mean_up: frac(8),
                mean_down: frac(16),
            },
            stall: FaultRate {
                mean_up: frac(8),
                mean_down: frac(24),
            },
            ..FaultConfig::light(horizon)
        }
    }

    fn validate(&self) -> Result<()> {
        if self.horizon.as_millis() == 0 {
            return Err(CoreError::invalid_config(
                "fault.horizon",
                "must be positive",
            ));
        }
        self.link.validate("fault.link")?;
        self.slow.validate("fault.slow")?;
        self.crash.validate("fault.crash")?;
        self.capacity.validate("fault.capacity")?;
        self.slow_client.validate("fault.slow_client")?;
        self.partial_write.validate("fault.partial_write")?;
        self.stall.validate("fault.stall")?;
        if self.slow_client.enabled() && self.slow_client_factor < 1.0 {
            return Err(CoreError::invalid_config(
                "fault.slow_client_factor",
                format!("must be ≥ 1, got {}", self.slow_client_factor),
            ));
        }
        if self.slow.enabled() && self.slow_factor < 1.0 {
            return Err(CoreError::invalid_config(
                "fault.slow_factor",
                format!("must be ≥ 1, got {}", self.slow_factor),
            ));
        }
        if self.capacity.enabled() && !(self.capacity_factor > 0.0 && self.capacity_factor <= 1.0) {
            return Err(CoreError::invalid_config(
                "fault.capacity_factor",
                format!("must be in (0, 1], got {}", self.capacity_factor),
            ));
        }
        Ok(())
    }
}

/// A deterministic client retry policy for degraded-mode replays: after
/// a failed attempt `k` (0-based), wait `min(base · 2^k, cap)` and try
/// again, up to `max_attempts` retries. No jitter — replays must be
/// bit-for-bit reproducible; the live client adds seeded jitter instead.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RetrySchedule {
    /// Maximum number of retries after the initial attempt.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
}

impl Default for RetrySchedule {
    fn default() -> Self {
        RetrySchedule {
            max_attempts: 4,
            base: Duration::from_secs(2),
            cap: Duration::from_secs(60),
        }
    }
}

impl RetrySchedule {
    /// Backoff before retry `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let ms = self
            .base
            .as_millis()
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        Duration::from_millis(ms.min(self.cap.as_millis()))
    }

    /// Validates the schedule.
    pub fn validate(&self) -> Result<()> {
        if self.base.as_millis() == 0 || self.cap < self.base {
            return Err(CoreError::invalid_config(
                "retry.schedule",
                "base must be positive and cap ≥ base",
            ));
        }
        Ok(())
    }
}

/// A materialized, deterministic schedule of fault windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// End of the covered span.
    pub horizon: SimTime,
    /// Latency multiplier during a slow window.
    pub slow_factor: f64,
    /// Serving-capacity fraction during a capacity window.
    pub capacity_factor: f64,
    /// Down-windows of the edge `node → parent(node)`.
    pub link_down: BTreeMap<NodeId, Vec<FaultWindow>>,
    /// Slow-windows of the edge `node → parent(node)`.
    pub link_slow: BTreeMap<NodeId, Vec<FaultWindow>>,
    /// Crash windows of interior (proxy-candidate) nodes.
    pub crashes: BTreeMap<NodeId, Vec<FaultWindow>>,
    /// Capacity-fault windows of interior nodes.
    pub capacity: BTreeMap<NodeId, Vec<FaultWindow>>,
    /// Fetch-latency multiplier during a slow-client window.
    pub slow_client_factor: f64,
    /// Slow-client windows of leaf nodes.
    pub slow_clients: BTreeMap<NodeId, Vec<FaultWindow>>,
    /// Partial-write windows of leaf nodes.
    pub partial_writes: BTreeMap<NodeId, Vec<FaultWindow>>,
    /// Stall windows of leaf nodes.
    pub stalls: BTreeMap<NodeId, Vec<FaultWindow>>,
}

/// Draws an exponential duration with the given mean (≥ 1 ms so renewal
/// processes always advance).
fn exp_duration(rng: &mut specweb_core::rng::Rng, mean: Duration) -> Duration {
    let u: f64 = rng.gen();
    let ms = -(1.0 - u).ln() * mean.as_millis() as f64;
    Duration::from_millis((ms as u64).max(1))
}

/// One renewal process: alternate exponential up- and down-times until
/// the horizon.
fn renewal_windows(seed: &SeedTree, rate: &FaultRate, horizon: Duration) -> Vec<FaultWindow> {
    if !rate.enabled() {
        return Vec::new();
    }
    let mut rng = seed.rng();
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO.saturating_add(horizon);
    loop {
        t = t.saturating_add(exp_duration(&mut rng, rate.mean_up));
        if t >= end {
            break;
        }
        let down_until = t.saturating_add(exp_duration(&mut rng, rate.mean_down));
        out.push(FaultWindow {
            start: t,
            end: down_until.min(end),
        });
        t = down_until;
        if t >= end {
            break;
        }
    }
    out
}

fn active(windows: Option<&Vec<FaultWindow>>, t: SimTime) -> bool {
    // Windows are few and sorted; a linear scan with early exit is
    // cheaper than binary search at these sizes.
    windows.is_some_and(|ws| {
        ws.iter()
            .take_while(|w| w.start <= t)
            .any(|w| w.contains(t))
    })
}

impl FaultPlan {
    /// A plan with no faults at all (the healthy baseline).
    pub fn none() -> FaultPlan {
        FaultPlan {
            horizon: SimTime::ZERO,
            slow_factor: 1.0,
            capacity_factor: 1.0,
            link_down: BTreeMap::new(),
            link_slow: BTreeMap::new(),
            crashes: BTreeMap::new(),
            capacity: BTreeMap::new(),
            slow_client_factor: 1.0,
            slow_clients: BTreeMap::new(),
            partial_writes: BTreeMap::new(),
            stalls: BTreeMap::new(),
        }
    }

    /// Generates the fault schedule for `topo` from a seed.
    ///
    /// Link classes run on every non-root node (the edge to its
    /// parent); crash and capacity classes on interior nodes only —
    /// client leaves have no service to lose and the root is the home
    /// server itself, whose load is what the experiment measures. The
    /// client-side classes (slow client, partial write, stall) run on
    /// leaf nodes, where the clients live.
    pub fn generate(seed: &SeedTree, topo: &Topology, cfg: &FaultConfig) -> Result<FaultPlan> {
        cfg.validate()?;
        let mut plan = FaultPlan {
            horizon: SimTime::ZERO.saturating_add(cfg.horizon),
            slow_factor: if cfg.slow.enabled() {
                cfg.slow_factor
            } else {
                1.0
            },
            capacity_factor: if cfg.capacity.enabled() {
                cfg.capacity_factor
            } else {
                1.0
            },
            link_down: BTreeMap::new(),
            link_slow: BTreeMap::new(),
            crashes: BTreeMap::new(),
            capacity: BTreeMap::new(),
            slow_client_factor: if cfg.slow_client.enabled() {
                cfg.slow_client_factor
            } else {
                1.0
            },
            slow_clients: BTreeMap::new(),
            partial_writes: BTreeMap::new(),
            stalls: BTreeMap::new(),
        };
        for raw in 0..topo.len() as u32 {
            let node = NodeId::new(raw);
            if topo.parent(node) != node {
                let w = renewal_windows(
                    &seed.child_idx("link-down", raw.into()),
                    &cfg.link,
                    cfg.horizon,
                );
                if !w.is_empty() {
                    plan.link_down.insert(node, w);
                }
                let w = renewal_windows(
                    &seed.child_idx("link-slow", raw.into()),
                    &cfg.slow,
                    cfg.horizon,
                );
                if !w.is_empty() {
                    plan.link_slow.insert(node, w);
                }
            }
        }
        for node in topo.interior_nodes() {
            let raw: u64 = node.raw().into();
            let w = renewal_windows(&seed.child_idx("crash", raw), &cfg.crash, cfg.horizon);
            if !w.is_empty() {
                plan.crashes.insert(node, w);
            }
            let w = renewal_windows(&seed.child_idx("capacity", raw), &cfg.capacity, cfg.horizon);
            if !w.is_empty() {
                plan.capacity.insert(node, w);
            }
        }
        for &node in topo.leaves() {
            let raw: u64 = node.raw().into();
            let w = renewal_windows(
                &seed.child_idx("slow-client", raw),
                &cfg.slow_client,
                cfg.horizon,
            );
            if !w.is_empty() {
                plan.slow_clients.insert(node, w);
            }
            let w = renewal_windows(
                &seed.child_idx("partial-write", raw),
                &cfg.partial_write,
                cfg.horizon,
            );
            if !w.is_empty() {
                plan.partial_writes.insert(node, w);
            }
            let w = renewal_windows(&seed.child_idx("stall", raw), &cfg.stall, cfg.horizon);
            if !w.is_empty() {
                plan.stalls.insert(node, w);
            }
        }
        Ok(plan)
    }

    /// Is the edge from `node` to its parent usable at `t`?
    pub fn link_up(&self, node: NodeId, t: SimTime) -> bool {
        !active(self.link_down.get(&node), t)
    }

    /// Is the proxy at `node` alive at `t`?
    pub fn proxy_up(&self, node: NodeId, t: SimTime) -> bool {
        !active(self.crashes.get(&node), t)
    }

    /// Fraction of serving capacity `node` has at `t` (1 when healthy).
    pub fn capacity_factor(&self, node: NodeId, t: SimTime) -> f64 {
        if active(self.capacity.get(&node), t) {
            self.capacity_factor
        } else {
            1.0
        }
    }

    /// Is the edge from `node` to its parent slow at `t`? Returns the
    /// latency multiplier for that single edge (1 when healthy).
    pub fn edge_delay_factor(&self, node: NodeId, t: SimTime) -> f64 {
        if active(self.link_slow.get(&node), t) {
            self.slow_factor
        } else {
            1.0
        }
    }

    /// Fetch-latency multiplier for the client at leaf `node` at `t`
    /// (1 when the client drains at full speed).
    pub fn client_slow_factor(&self, node: NodeId, t: SimTime) -> f64 {
        if active(self.slow_clients.get(&node), t) {
            self.slow_client_factor
        } else {
            1.0
        }
    }

    /// Is the client at leaf `node` fragmenting its transfers into
    /// partial writes at `t`?
    pub fn partial_write_active(&self, node: NodeId, t: SimTime) -> bool {
        active(self.partial_writes.get(&node), t)
    }

    /// If the client at leaf `node` is stalled at `t`, the first
    /// instant it resumes; `None` when it is not stalled.
    pub fn stalled_until(&self, node: NodeId, t: SimTime) -> Option<SimTime> {
        self.stalls.get(&node).and_then(|ws| {
            ws.iter()
                .take_while(|w| w.start <= t)
                .find(|w| w.contains(t))
                .map(|w| w.end)
        })
    }

    /// Are all the edges owned by `edges` (each node names the edge to
    /// its parent) usable at `t`?
    pub fn edges_up(&self, edges: &[NodeId], t: SimTime) -> bool {
        edges.iter().all(|&n| self.link_up(n, t))
    }

    /// Combined latency multiplier over a set of edges — the product of
    /// per-edge slowdowns.
    pub fn edges_delay_factor(&self, edges: &[NodeId], t: SimTime) -> f64 {
        edges
            .iter()
            .map(|&n| self.edge_delay_factor(n, t))
            .product()
    }

    /// The earliest time ≥ `t` at which no edge in `edges` is down, or
    /// `None` if that never happens before the horizon. Used by retry
    /// models to decide whether a deferred request can ever succeed.
    pub fn edges_recovery(&self, edges: &[NodeId], t: SimTime) -> Option<SimTime> {
        let mut at = t;
        // Each iteration either returns or advances `at` past the end of
        // some active window, so this terminates (windows are finite).
        loop {
            let mut blocked_until: Option<SimTime> = None;
            for &n in edges {
                if let Some(ws) = self.link_down.get(&n) {
                    for w in ws.iter().take_while(|w| w.start <= at) {
                        if w.contains(at) {
                            blocked_until = Some(blocked_until.map_or(w.end, |b| b.max(w.end)));
                        }
                    }
                }
            }
            match blocked_until {
                None => return Some(at),
                Some(b) if b >= self.horizon => return None,
                Some(b) => at = b,
            }
        }
    }

    /// Collects the edge-owning nodes on the path from `from` up to
    /// ancestor `to` (each returned node names the edge to its parent).
    fn edges_between(topo: &Topology, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut n = from;
        while n != to {
            out.push(n);
            let p = topo.parent(n);
            if p == n {
                // `to` was not an ancestor; the full root path is the
                // requirement.
                break;
            }
            n = p;
        }
        out
    }

    /// Is every edge on the path from `from` up to ancestor `to` usable
    /// at `t`? (`from == to` is trivially reachable.)
    pub fn path_up(&self, topo: &Topology, from: NodeId, to: NodeId, t: SimTime) -> bool {
        self.edges_up(&Self::edges_between(topo, from, to), t)
    }

    /// Combined latency multiplier along the path from `from` up to
    /// ancestor `to` at `t` — the product of per-edge slowdowns.
    pub fn path_delay_factor(&self, topo: &Topology, from: NodeId, to: NodeId, t: SimTime) -> f64 {
        self.edges_delay_factor(&Self::edges_between(topo, from, to), t)
    }

    /// The earliest time ≥ `t` at which the path from `from` up to
    /// ancestor `to` has no down edge, or `None` if that never happens
    /// before the horizon.
    pub fn path_recovery(
        &self,
        topo: &Topology,
        from: NodeId,
        to: NodeId,
        t: SimTime,
    ) -> Option<SimTime> {
        self.edges_recovery(&Self::edges_between(topo, from, to), t)
    }

    /// Total number of fault windows in the plan (all classes).
    pub fn n_windows(&self) -> usize {
        self.link_down
            .values()
            .chain(self.link_slow.values())
            .chain(self.crashes.values())
            .chain(self.capacity.values())
            .chain(self.slow_clients.values())
            .chain(self.partial_writes.values())
            .chain(self.stalls.values())
            .map(Vec::len)
            .sum()
    }

    /// Publishes the injected-fault log into an observability bundle:
    /// per-class `netsim.fault_*_windows` counters, the
    /// `netsim.faults_injected` total, and one deterministic tracer
    /// event per window (stamped with the window's start in sim time).
    ///
    /// The plan is materialized up front from the seed tree, so
    /// everything recorded here sits on the deterministic channel.
    pub fn record_to(&self, obs: &specweb_core::obs::Obs) {
        let classes: [(&str, &BTreeMap<NodeId, Vec<FaultWindow>>); 7] = [
            ("link_down", &self.link_down),
            ("link_slow", &self.link_slow),
            ("crash", &self.crashes),
            ("capacity", &self.capacity),
            ("slow_client", &self.slow_clients),
            ("partial_write", &self.partial_writes),
            ("stall", &self.stalls),
        ];
        for (class, map) in classes {
            let windows: u64 = map.values().map(|ws| ws.len() as u64).sum();
            if windows == 0 {
                continue;
            }
            obs.metrics
                .counter(&format!("netsim.fault_{class}_windows"))
                .add(windows);
            for (node, ws) in map {
                for w in ws {
                    obs.events.event(
                        w.start,
                        "netsim",
                        &format!("fault.{class}"),
                        format!(
                            "node={} window_ms=[{}..{})",
                            node.raw(),
                            w.start.as_millis(),
                            w.end.as_millis()
                        ),
                    );
                }
            }
        }
        obs.metrics
            .counter("netsim.faults_injected")
            .add(self.n_windows() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::balanced(2, 3, 4)
    }

    fn cfg() -> FaultConfig {
        FaultConfig::light(Duration::from_days(30))
    }

    #[test]
    fn generation_is_deterministic_bit_for_bit() {
        let t = topo();
        let a = FaultPlan::generate(&SeedTree::new(11), &t, &cfg()).unwrap();
        let b = FaultPlan::generate(&SeedTree::new(11), &t, &cfg()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = FaultPlan::generate(&SeedTree::new(12), &t, &cfg()).unwrap();
        assert_ne!(a, c, "different seeds must give different plans");
    }

    #[test]
    fn windows_are_sorted_disjoint_and_within_horizon() {
        let t = topo();
        let plan = FaultPlan::generate(&SeedTree::new(5), &t, &cfg()).unwrap();
        assert!(plan.n_windows() > 0, "light config over 30 days is quiet");
        for ws in plan
            .link_down
            .values()
            .chain(plan.link_slow.values())
            .chain(plan.crashes.values())
            .chain(plan.capacity.values())
        {
            for w in ws {
                assert!(w.start < w.end);
                assert!(w.end <= plan.horizon);
            }
            for pair in ws.windows(2) {
                assert!(pair[0].end <= pair[1].start, "overlapping windows");
            }
        }
    }

    #[test]
    fn record_to_publishes_the_injected_fault_log() {
        use specweb_core::obs::{MetricValue, Obs};
        let plan = FaultPlan::generate(&SeedTree::new(5), &topo(), &cfg()).unwrap();
        let obs = Obs::new();
        plan.record_to(&obs);
        let snap = obs.snapshot();
        assert_eq!(
            snap.deterministic["netsim.faults_injected"],
            MetricValue::Counter {
                value: plan.n_windows() as u64
            }
        );
        assert!(snap.wallclock.is_empty(), "fault log is deterministic");
        let events = obs.events.deterministic_events();
        let (dropped, _) = obs.events.dropped();
        assert_eq!(events.len() as u64 + dropped, plan.n_windows() as u64);
        assert!(events.iter().all(|e| e.subsystem == "netsim"));
        // Recording the same plan twice must double the counters —
        // deterministic replays merge additively.
        plan.record_to(&obs);
        assert_eq!(
            obs.snapshot().deterministic["netsim.faults_injected"],
            MetricValue::Counter {
                value: 2 * plan.n_windows() as u64
            }
        );
    }

    #[test]
    fn queries_reflect_windows() {
        let t = topo();
        let mut plan = FaultPlan::none();
        plan.horizon = SimTime::from_days(10);
        let node = t.interior_nodes()[0];
        let w = FaultWindow {
            start: SimTime::from_secs(100),
            end: SimTime::from_secs(200),
        };
        plan.crashes.insert(node, vec![w]);
        assert!(plan.proxy_up(node, SimTime::from_secs(99)));
        assert!(!plan.proxy_up(node, SimTime::from_secs(100)));
        assert!(!plan.proxy_up(node, SimTime::from_secs(199)));
        assert!(plan.proxy_up(node, SimTime::from_secs(200)));

        plan.link_down.insert(node, vec![w]);
        let leaf = *t
            .leaves()
            .iter()
            .find(|&&l| t.is_ancestor(node, l))
            .unwrap();
        let root = NodeId::new(0);
        assert!(!plan.path_up(&t, leaf, root, SimTime::from_secs(150)));
        assert!(plan.path_up(&t, leaf, root, SimTime::from_secs(250)));
        // Below the faulty edge the path is clean.
        assert!(plan.path_up(&t, leaf, node, SimTime::from_secs(150)));
        assert_eq!(
            plan.path_recovery(&t, leaf, root, SimTime::from_secs(150)),
            Some(SimTime::from_secs(200))
        );
    }

    #[test]
    fn delay_factors_multiply_along_the_path() {
        let t = topo();
        let mut plan = FaultPlan::none();
        plan.horizon = SimTime::from_days(10);
        plan.slow_factor = 3.0;
        let leaf = t.leaves()[0];
        let mid = t.parent(leaf);
        let w = FaultWindow {
            start: SimTime::ZERO,
            end: SimTime::from_days(10),
        };
        plan.link_slow.insert(leaf, vec![w]);
        plan.link_slow.insert(mid, vec![w]);
        let root = NodeId::new(0);
        let f = plan.path_delay_factor(&t, leaf, root, SimTime::from_secs(5));
        assert!((f - 9.0).abs() < 1e-12, "expected 3×3, got {f}");
    }

    #[test]
    fn disabled_classes_generate_nothing() {
        let t = topo();
        let mut c = cfg();
        c.link = FaultRate::OFF;
        c.slow = FaultRate::OFF;
        c.crash = FaultRate::OFF;
        c.capacity = FaultRate::OFF;
        let plan = FaultPlan::generate(&SeedTree::new(9), &t, &c).unwrap();
        assert_eq!(plan.n_windows(), 0);
        assert!(plan.link_up(NodeId::new(3), SimTime::from_secs(1)));
        assert_eq!(plan.capacity_factor(NodeId::new(1), SimTime::ZERO), 1.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let t = topo();
        let mut c = cfg();
        c.capacity_factor = 0.0;
        assert!(FaultPlan::generate(&SeedTree::new(1), &t, &c).is_err());
        let mut c = cfg();
        c.slow_factor = 0.5;
        assert!(FaultPlan::generate(&SeedTree::new(1), &t, &c).is_err());
        let mut c = cfg();
        c.horizon = Duration::ZERO;
        assert!(FaultPlan::generate(&SeedTree::new(1), &t, &c).is_err());
        let mut c = cfg();
        c.link.mean_up = Duration::ZERO;
        assert!(FaultPlan::generate(&SeedTree::new(1), &t, &c).is_err());
    }

    #[test]
    fn chaotic_preset_generates_client_side_windows_on_leaves_only() {
        let t = topo();
        let cfg = FaultConfig::chaotic(Duration::from_days(30));
        let plan = FaultPlan::generate(&SeedTree::new(31), &t, &cfg).unwrap();
        let leaves: std::collections::BTreeSet<NodeId> = t.leaves().iter().copied().collect();
        for map in [&plan.slow_clients, &plan.partial_writes, &plan.stalls] {
            assert!(!map.is_empty(), "chaotic config over 30 days is quiet");
            assert!(map.keys().all(|n| leaves.contains(n)));
        }
        // Determinism: same seed, same plan, bit for bit.
        let again = FaultPlan::generate(&SeedTree::new(31), &t, &cfg).unwrap();
        assert_eq!(plan, again);
        // The light preset keeps the new classes silent.
        let light = FaultPlan::generate(
            &SeedTree::new(31),
            &t,
            &FaultConfig::light(Duration::from_days(30)),
        )
        .unwrap();
        assert!(light.slow_clients.is_empty());
        assert!(light.partial_writes.is_empty());
        assert!(light.stalls.is_empty());
        assert_eq!(light.slow_client_factor, 1.0);
    }

    #[test]
    fn client_side_queries_reflect_windows() {
        let t = topo();
        let mut plan = FaultPlan::none();
        plan.horizon = SimTime::from_days(10);
        plan.slow_client_factor = 3.0;
        let leaf = t.leaves()[0];
        let w = FaultWindow {
            start: SimTime::from_secs(100),
            end: SimTime::from_secs(200),
        };
        plan.slow_clients.insert(leaf, vec![w]);
        plan.partial_writes.insert(leaf, vec![w]);
        plan.stalls.insert(leaf, vec![w]);
        assert_eq!(plan.client_slow_factor(leaf, SimTime::from_secs(99)), 1.0);
        assert_eq!(plan.client_slow_factor(leaf, SimTime::from_secs(150)), 3.0);
        assert!(!plan.partial_write_active(leaf, SimTime::from_secs(99)));
        assert!(plan.partial_write_active(leaf, SimTime::from_secs(150)));
        assert_eq!(plan.stalled_until(leaf, SimTime::from_secs(99)), None);
        assert_eq!(
            plan.stalled_until(leaf, SimTime::from_secs(150)),
            Some(SimTime::from_secs(200))
        );
        assert_eq!(plan.stalled_until(leaf, SimTime::from_secs(200)), None);
        // Other leaves are untouched.
        let other = t.leaves()[1];
        assert_eq!(plan.client_slow_factor(other, SimTime::from_secs(150)), 1.0);
        assert_eq!(plan.n_windows(), 3);
    }

    #[test]
    fn invalid_client_side_configs_are_rejected() {
        let t = topo();
        let mut c = FaultConfig::chaotic(Duration::from_days(10));
        c.slow_client_factor = 0.5;
        assert!(FaultPlan::generate(&SeedTree::new(1), &t, &c).is_err());
        let mut c = FaultConfig::chaotic(Duration::from_days(10));
        c.stall.mean_down = Duration::ZERO;
        assert!(FaultPlan::generate(&SeedTree::new(1), &t, &c).is_err());
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let t = topo();
        let plan = FaultPlan::generate(&SeedTree::new(21), &t, &cfg()).unwrap();
        let text = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(plan, back);
    }
}
