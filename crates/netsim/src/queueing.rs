//! Server queueing analysis (M/G/1).
//!
//! The paper measures *server load* as a request count and weighs it
//! against traffic through `ServCost : CommCost = 10,000 : 1`. What that
//! ratio is really standing in for is queueing: a 1995 HTTP daemon
//! forked per request, and response time exploded as utilization
//! approached 1. This module makes the connection quantitative with the
//! standard M/G/1 model (Poisson arrivals, general service times), via
//! the Pollaczek–Khinchine formula:
//!
//! ```text
//! W = ρ·(1 + c²) / (2·(1 − ρ)) · E[S]      (mean wait in queue)
//! T = W + E[S]                              (mean response time)
//! ```
//!
//! where `ρ = λ·E[S]` is utilization and `c²` the squared coefficient of
//! variation of service times. Heavy-tailed 1995 responses make `c²` a
//! first-class input (exponential service = 1; measured web service
//! times were far burstier).
//!
//! The harness uses this to turn a speculative-service "−35% server
//! load" into "response time at the server falls from 1.9 s to 210 ms
//! at peak hour" — the operator-facing version of the paper's claim.

use serde::{Deserialize, Serialize};
use specweb_core::{CoreError, Result};

/// An M/G/1 server model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1 {
    /// Mean service time per request, in seconds.
    pub mean_service_secs: f64,
    /// Squared coefficient of variation of service time
    /// (`Var[S]/E[S]²`; 0 = deterministic, 1 = exponential, >1 bursty).
    pub scv: f64,
}

impl Mg1 {
    /// Creates a model; both parameters must be non-negative and finite,
    /// service time positive.
    pub fn new(mean_service_secs: f64, scv: f64) -> Result<Self> {
        if !(mean_service_secs.is_finite() && mean_service_secs > 0.0) {
            return Err(CoreError::invalid_config(
                "mg1.mean_service_secs",
                "must be positive",
            ));
        }
        if !(scv.is_finite() && scv >= 0.0) {
            return Err(CoreError::invalid_config("mg1.scv", "must be ≥ 0"));
        }
        Ok(Mg1 {
            mean_service_secs,
            scv,
        })
    }

    /// A 1995-flavored HTTP daemon: 50 ms mean service, bursty
    /// (`c² = 4`: most responses are small, a few are huge).
    pub fn httpd_1995() -> Mg1 {
        Mg1 {
            mean_service_secs: 0.05,
            scv: 4.0,
        }
    }

    /// Server utilization at an arrival rate of `lambda` requests/s.
    pub fn utilization(&self, lambda: f64) -> f64 {
        lambda * self.mean_service_secs
    }

    /// Mean response time (queue wait + service), in seconds, at
    /// `lambda` requests/s. Returns `None` when the server is saturated
    /// (`ρ ≥ 1`): the queue has no steady state.
    pub fn mean_response_secs(&self, lambda: f64) -> Option<f64> {
        if lambda < 0.0 || !lambda.is_finite() {
            return None;
        }
        let rho = self.utilization(lambda);
        if rho >= 1.0 {
            return None;
        }
        let wait = rho * (1.0 + self.scv) / (2.0 * (1.0 - rho)) * self.mean_service_secs;
        Some(wait + self.mean_service_secs)
    }

    /// The arrival rate at which mean response time reaches
    /// `target_secs` — the server's effective capacity under a latency
    /// SLO. Solves the P-K formula for λ (closed form: the response time
    /// is a rational function of ρ).
    pub fn capacity_for_response(&self, target_secs: f64) -> Result<f64> {
        let s = self.mean_service_secs;
        if !(target_secs.is_finite() && target_secs > s) {
            return Err(CoreError::invalid_config(
                "mg1.target_secs",
                format!("must exceed the service time {s}"),
            ));
        }
        // T = s + ρ(1+c²)s / (2(1−ρ))  ⇒  ρ = (T−s) / ((T−s) + s(1+c²)/2)
        let excess = target_secs - s;
        let rho = excess / (excess + s * (1.0 + self.scv) / 2.0);
        Ok(rho / s)
    }
}

/// How a server-load reduction moves the operating point: response time
/// before and after reducing the arrival rate by `load_reduction`
/// (e.g. 0.35 for the paper's −35%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadReliefOutcome {
    /// Utilization before.
    pub rho_before: f64,
    /// Utilization after.
    pub rho_after: f64,
    /// Mean response time before, seconds (`None` = saturated).
    pub response_before: Option<f64>,
    /// Mean response time after, seconds.
    pub response_after: Option<f64>,
}

/// Evaluates the effect of a fractional load reduction at a given
/// arrival rate.
pub fn load_relief(model: &Mg1, lambda: f64, load_reduction: f64) -> Result<LoadReliefOutcome> {
    if !(0.0..=1.0).contains(&load_reduction) {
        return Err(CoreError::invalid_config(
            "mg1.load_reduction",
            "must be in [0, 1]",
        ));
    }
    let after = lambda * (1.0 - load_reduction);
    Ok(LoadReliefOutcome {
        rho_before: model.utilization(lambda),
        rho_after: model.utilization(after),
        response_before: model.mean_response_secs(lambda),
        response_after: model.mean_response_secs(after),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_special_case_matches_textbook() {
        // With c² = 1 (exponential service), M/G/1 reduces to M/M/1:
        // T = 1/(μ − λ).
        let m = Mg1::new(0.1, 1.0).unwrap(); // μ = 10/s
        for lambda in [1.0, 5.0, 9.0] {
            let t = m.mean_response_secs(lambda).unwrap();
            let expect = 1.0 / (10.0 - lambda);
            assert!((t - expect).abs() < 1e-12, "λ={lambda}: {t} vs {expect}");
        }
    }

    #[test]
    fn deterministic_service_halves_the_wait() {
        // c² = 0 halves the queueing term relative to c² = 1.
        let exp = Mg1::new(0.1, 1.0).unwrap();
        let det = Mg1::new(0.1, 0.0).unwrap();
        let lambda = 8.0;
        let wq_exp = exp.mean_response_secs(lambda).unwrap() - 0.1;
        let wq_det = det.mean_response_secs(lambda).unwrap() - 0.1;
        assert!((wq_det - wq_exp / 2.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_returns_none() {
        let m = Mg1::new(0.1, 1.0).unwrap();
        assert!(m.mean_response_secs(10.0).is_none()); // ρ = 1
        assert!(m.mean_response_secs(20.0).is_none());
        assert!(m.mean_response_secs(f64::NAN).is_none());
        assert!(m.mean_response_secs(9.99).is_some());
    }

    #[test]
    fn response_time_explodes_near_saturation() {
        let m = Mg1::httpd_1995();
        let t50 = m.mean_response_secs(10.0).unwrap(); // ρ = 0.5
        let t90 = m.mean_response_secs(18.0).unwrap(); // ρ = 0.9
        let t98 = m.mean_response_secs(19.6).unwrap(); // ρ = 0.98
        assert!(t90 > 3.0 * t50, "t90 {t90} vs t50 {t50}");
        assert!(t98 > 4.0 * t90, "t98 {t98} vs t90 {t90}");
    }

    #[test]
    fn capacity_inverts_response() {
        let m = Mg1::httpd_1995();
        for target in [0.1, 0.5, 2.0] {
            let lambda = m.capacity_for_response(target).unwrap();
            let t = m.mean_response_secs(lambda).unwrap();
            assert!((t - target).abs() < 1e-9, "target {target}: got {t}");
        }
        assert!(m.capacity_for_response(0.01).is_err()); // below service time
    }

    #[test]
    fn load_relief_rescues_a_saturated_server() {
        let m = Mg1::httpd_1995(); // capacity 20/s
                                   // 21 req/s: saturated. A 35% reduction (the paper's +10%-traffic
                                   // operating point) brings it to ρ = 0.68 and finite latency.
        let out = load_relief(&m, 21.0, 0.35).unwrap();
        assert!(out.rho_before > 1.0);
        assert!(out.response_before.is_none());
        assert!(out.rho_after < 0.7);
        let t = out.response_after.unwrap();
        assert!(t < 0.5, "relieved response {t}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Mg1::new(0.0, 1.0).is_err());
        assert!(Mg1::new(0.1, -1.0).is_err());
        assert!(Mg1::new(f64::NAN, 1.0).is_err());
        let m = Mg1::httpd_1995();
        assert!(load_relief(&m, 1.0, 1.5).is_err());
    }
}
