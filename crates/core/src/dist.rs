//! Probability distributions and the paper's exponential popularity model.
//!
//! The workload model needs three families of distributions that 1995-era
//! WWW measurement work (Cunha, Bestavros & Crovella, BU-CS-95-010)
//! established for web traffic:
//!
//! * **Zipf-like document popularity** — request frequency of the `r`-th
//!   most popular document ∝ `1/r^θ`;
//! * **heavy-tailed document sizes** — a log-normal body with a bounded
//!   Pareto tail;
//! * **exponential inter-arrival / think times** within sessions.
//!
//! On top of those sits the paper's analytical device (§2.2): the
//! **exponential popularity model** `H(b) = 1 − exp(−λ b)`, the probability
//! that a request hits the most popular `b` bytes of a server, together
//! with the estimation of `λ` from an empirical hit curve.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::stats::slope_through_origin;
use crate::units::Bytes;

// ---------------------------------------------------------------------------
// Zipf popularity
// ---------------------------------------------------------------------------

/// Zipf-like popularity over `n` ranked items: weight of rank `r`
/// (1-based) is `1/r^theta`, normalized.
///
/// `theta = 1` is classic Zipf; WWW server traces of the period fit
/// `theta ≈ 0.8–1.0`. The struct precomputes the cumulative distribution
/// for O(log n) sampling and exposes the raw weights for analytic use.
///
/// ```
/// use specweb_core::dist::Zipf;
/// let z = Zipf::new(100, 1.0).unwrap();
/// assert!(z.weight(0) > z.weight(99));        // rank 1 beats rank 100
/// assert!(z.head_mass(10) > 0.3);             // the head is heavy
/// let total: f64 = z.weights().iter().sum();
/// assert!((total - 1.0).abs() < 1e-9);        // normalized
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zipf {
    theta: f64,
    /// Normalized per-rank probabilities, rank 0 = most popular.
    weights: Vec<f64>,
    /// Cumulative probabilities for inverse-CDF sampling.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` items with exponent `theta`.
    pub fn new(n: usize, theta: f64) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::invalid_config("zipf.n", "must be positive"));
        }
        if !theta.is_finite() || theta < 0.0 {
            return Err(CoreError::invalid_config(
                "zipf.theta",
                format!("must be finite and non-negative, got {theta}"),
            ));
        }
        let mut weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-theta)).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        // Capacity hint only — `n` arrives scale-tainted from callers
        // (client/page counts); cap the reservation, the vec still grows.
        let mut cdf = Vec::with_capacity(n.min(1 << 24));
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cdf.push(acc);
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf {
            theta,
            weights,
            cdf,
        })
    }

    /// The exponent.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of ranks.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the distribution is over zero items (never true — `new`
    /// rejects `n = 0` — but required for the `len` idiom).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Probability of rank `r` (0-based, 0 = most popular).
    #[inline]
    pub fn weight(&self, r: usize) -> f64 {
        self.weights[r]
    }

    /// All normalized weights, most popular first.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Samples a rank (0-based) by inverse-CDF lookup.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf > u.
        self.cdf.partition_point(|&c| c <= u).min(self.len() - 1)
    }

    /// Fraction of probability mass held by the `k` most popular ranks.
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[k.min(self.len()) - 1]
        }
    }
}

/// Fits a Zipf exponent `theta` to observed per-item counts by least
/// squares on the log-log rank/frequency line (`ln f_r = c − θ·ln r`).
///
/// Counts are sorted descending internally; zero counts are dropped.
/// Returns an error for fewer than three distinct ranks — a line needs
/// slack to be meaningful.
///
/// ```
/// use specweb_core::dist::{fit_zipf_theta, Zipf};
/// use specweb_core::rng::SeedTree;
/// // Sample from a known Zipf and recover its exponent.
/// let z = Zipf::new(200, 0.9).unwrap();
/// let mut rng = SeedTree::new(1).child("fit").rng();
/// let mut counts = vec![0u64; 200];
/// for _ in 0..200_000 { counts[z.sample(&mut rng)] += 1; }
/// let theta = fit_zipf_theta(&counts).unwrap();
/// assert!((theta - 0.9).abs() < 0.1, "fit {theta}");
/// ```
pub fn fit_zipf_theta(counts: &[u64]) -> Result<f64> {
    let mut sorted: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    if sorted.len() < 3 {
        return Err(CoreError::Estimation(
            "zipf fit needs at least three non-zero counts".into(),
        ));
    }
    // Ordinary least squares on (ln r, ln f_r), slope = −θ.
    let n = sorted.len() as f64;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (i, &c) in sorted.iter().enumerate() {
        let x = ((i + 1) as f64).ln();
        let y = (c as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return Err(CoreError::Estimation("degenerate rank axis".into()));
    }
    let slope = (n * sxy - sx * sy) / denom;
    Ok(-slope)
}

// ---------------------------------------------------------------------------
// Bounded Pareto (document-size tail)
// ---------------------------------------------------------------------------

/// Bounded Pareto distribution on `[lo, hi]` with shape `alpha`.
///
/// The BU client traces measured document sizes with a Pareto tail of
/// shape ≈ 1.1–1.5; bounding the support keeps simulated catalogs from
/// containing physically absurd objects while preserving heavy-tailedness.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates the distribution; requires `0 < lo < hi` and `alpha > 0`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Result<Self> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(CoreError::invalid_config("pareto.alpha", "must be > 0"));
        }
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi) {
            return Err(CoreError::invalid_config(
                "pareto.bounds",
                format!("need 0 < lo < hi, got lo={lo} hi={hi}"),
            ));
        }
        Ok(BoundedPareto { alpha, lo, hi })
    }

    /// Shape parameter.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Inverse CDF at `u ∈ [0, 1)`.
    pub fn inv_cdf(&self, u: f64) -> f64 {
        let (a, l, h) = (self.alpha, self.lo, self.hi);
        let la = l.powf(a);
        let ha = h.powf(a);
        // Standard bounded-Pareto inversion.
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a);
        x.clamp(l, h)
    }

    /// Samples one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inv_cdf(rng.gen())
    }

    /// Samples a byte count.
    pub fn sample_bytes<R: Rng + ?Sized>(&self, rng: &mut R) -> Bytes {
        Bytes::new(self.sample(rng).round().max(1.0) as u64)
    }
}

// ---------------------------------------------------------------------------
// Exponential popularity model (paper §2.2)
// ---------------------------------------------------------------------------

/// The paper's exponential popularity model:
/// `H(b) = 1 − exp(−λ b)` — the probability that a request for a server's
/// documents can be satisfied by a replica of that server's most popular
/// `b` bytes. Its density is `h(b) = λ exp(−λ b)` (eq. 3).
///
/// The paper estimates `λ = 6.247 × 10⁻⁷` for `cs-www.bu.edu` — i.e.
/// replicating the hottest ~1.6 MB covers 63% of requests.
///
/// ```
/// use specweb_core::dist::ExponentialPopularity;
/// use specweb_core::Bytes;
/// let m = ExponentialPopularity::new(ExponentialPopularity::BU_WWW_LAMBDA).unwrap();
/// // The paper's §2.3 example: 90% shielding needs ≈3.7 MB per server.
/// let b = m.bytes_for_fraction(0.9).unwrap();
/// assert!((b.as_f64() / 1e6 - 3.69).abs() < 0.1);
/// assert!((m.hit_probability(b) - 0.9).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialPopularity {
    lambda: f64,
}

impl ExponentialPopularity {
    /// The paper's measured value for `cs-www.bu.edu`.
    pub const BU_WWW_LAMBDA: f64 = 6.247e-7;

    /// Creates a model with rate `lambda` (per byte); must be positive.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(CoreError::invalid_config(
                "popularity.lambda",
                format!("must be positive, got {lambda}"),
            ));
        }
        Ok(ExponentialPopularity { lambda })
    }

    /// The rate parameter λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Hit probability `H(b) = 1 − exp(−λ b)` for a replica of `b` bytes.
    #[inline]
    pub fn hit_probability(&self, b: Bytes) -> f64 {
        1.0 - (-self.lambda * b.as_f64()).exp()
    }

    /// Density `h(b) = λ exp(−λ b)` (eq. 3).
    #[inline]
    pub fn density(&self, b: Bytes) -> f64 {
        self.lambda * (-self.lambda * b.as_f64()).exp()
    }

    /// Inverse of `H`: the replica size needed to intercept a fraction
    /// `alpha` of requests — `b = ln(1/(1−α)) / λ` (the per-server form
    /// of eq. 10). `alpha` must be in `[0, 1)`.
    pub fn bytes_for_fraction(&self, alpha: f64) -> Result<Bytes> {
        if !(0.0..1.0).contains(&alpha) {
            return Err(CoreError::invalid_config(
                "popularity.alpha",
                format!("must be in [0, 1), got {alpha}"),
            ));
        }
        let b = -(1.0 - alpha).ln() / self.lambda;
        Ok(Bytes::new(b.ceil() as u64))
    }
}

// ---------------------------------------------------------------------------
// Empirical hit curves and λ estimation
// ---------------------------------------------------------------------------

/// An empirical hit curve: points `(b_k, H_k)` where `H_k` is the fraction
/// of requests satisfied by replicating the most popular `b_k` bytes.
///
/// Built from per-document `(size, request_count)` pairs; documents are
/// ranked by request **density** (requests per byte), which is both the
/// optimal replica packing and what the paper's equal-size 256 KB block
/// ranking reduces to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HitCurve {
    /// Cumulative bytes after each document, ascending.
    bytes: Vec<u64>,
    /// Cumulative request fraction after each document, ascending in (0, 1].
    hits: Vec<f64>,
    total_requests: u64,
    total_bytes: u64,
}

impl HitCurve {
    /// Builds a hit curve from per-document `(size, requests)` pairs.
    /// Documents with zero requests contribute bytes only at the tail and
    /// are dropped (they never improve the curve).
    pub fn from_documents(docs: &[(Bytes, u64)]) -> Result<Self> {
        let total_requests: u64 = docs.iter().map(|&(_, r)| r).sum();
        if total_requests == 0 {
            return Err(CoreError::Estimation(
                "hit curve needs at least one request".into(),
            ));
        }
        let mut ranked: Vec<(u64, u64)> = docs
            .iter()
            .filter(|&&(_, r)| r > 0)
            .map(|&(s, r)| (s.get().max(1), r))
            .collect();
        // Rank by requests-per-byte, descending; ties broken by smaller
        // size first (denser packing).
        ranked.sort_by(|a, b| {
            let da = a.1 as f64 / a.0 as f64;
            let db = b.1 as f64 / b.0 as f64;
            db.total_cmp(&da).then(a.0.cmp(&b.0))
        });
        // lint:allow(W3): capacity equals ranked.len(), a vec already materialized above
        let mut bytes = Vec::with_capacity(ranked.len());
        // lint:allow(W3): capacity equals ranked.len(), a vec already materialized above
        let mut hits = Vec::with_capacity(ranked.len());
        let mut cum_b = 0u64;
        let mut cum_r = 0u64;
        for (s, r) in ranked {
            cum_b = cum_b.saturating_add(s);
            cum_r = cum_r.saturating_add(r);
            bytes.push(cum_b);
            hits.push(cum_r as f64 / total_requests as f64);
        }
        Ok(HitCurve {
            bytes,
            hits,
            total_requests,
            total_bytes: cum_b,
        })
    }

    /// Number of (requested) documents on the curve.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the curve is empty (never true after `from_documents`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Total requests across all documents.
    #[inline]
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Total bytes of requested documents.
    #[inline]
    pub fn total_bytes(&self) -> Bytes {
        Bytes::new(self.total_bytes)
    }

    /// Empirical `H(b)`: fraction of requests satisfied by the best
    /// replica of at most `b` bytes (step interpolation: only whole
    /// documents are replicated).
    pub fn hit_fraction(&self, b: Bytes) -> f64 {
        let idx = self.bytes.partition_point(|&x| x <= b.get());
        if idx == 0 {
            0.0
        } else {
            self.hits[idx - 1]
        }
    }

    /// The curve's points as `(cumulative_bytes, hit_fraction)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (Bytes, f64)> + '_ {
        self.bytes
            .iter()
            .zip(&self.hits)
            .map(|(&b, &h)| (Bytes::new(b), h))
    }

    /// Fits λ by least squares on the linearized model
    /// `−ln(1 − H) = λ b` (regression through the origin), using points
    /// with `H < cap` (points too close to 1 have exploding transforms;
    /// the paper's curves saturate well before the catalog tail).
    pub fn fit_lambda(&self, cap: f64) -> Result<ExponentialPopularity> {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (b, h) in self.bytes.iter().zip(&self.hits) {
            if *h < cap {
                xs.push(*b as f64);
                ys.push(-(1.0 - h).ln());
            }
        }
        let lambda = slope_through_origin(&xs, &ys)
            .ok_or_else(|| CoreError::Estimation("hit curve too degenerate to fit λ".into()))?;
        ExponentialPopularity::new(lambda)
    }

    /// Fits λ from a single anchor point: the replica fraction `frac` of
    /// total bytes and the hit rate the curve achieves there, solving
    /// `H = 1 − exp(−λ b)` for λ. A robust quick estimate when the curve
    /// is too jagged for regression.
    pub fn fit_lambda_at(&self, frac: f64) -> Result<ExponentialPopularity> {
        if !(0.0 < frac && frac <= 1.0) {
            return Err(CoreError::invalid_config("fit.frac", "must be in (0, 1]"));
        }
        let b = (self.total_bytes as f64 * frac).max(1.0);
        let h = self.hit_fraction(Bytes::new(b as u64)).min(1.0 - 1e-12);
        if h <= 0.0 {
            return Err(CoreError::Estimation(
                "anchor point has zero hit rate".into(),
            ));
        }
        ExponentialPopularity::new(-(1.0 - h).ln() / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedTree;

    #[test]
    fn zipf_weights_normalized_and_monotone() {
        let z = Zipf::new(100, 1.0).unwrap();
        let sum: f64 = z.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for w in z.weights().windows(2) {
            assert!(w[0] >= w[1], "weights must decrease with rank");
        }
        assert!(z.weight(0) > z.weight(99));
    }

    #[test]
    fn zipf_head_mass() {
        let z = Zipf::new(1000, 1.0).unwrap();
        assert_eq!(z.head_mass(0), 0.0);
        assert!((z.head_mass(1000) - 1.0).abs() < 1e-12);
        // With θ=1 over 1000 items the top 10% holds well over half the mass.
        assert!(z.head_mass(100) > 0.6, "got {}", z.head_mass(100));
    }

    #[test]
    fn zipf_sampling_matches_weights() {
        let z = Zipf::new(50, 0.9).unwrap();
        let mut rng = SeedTree::new(1).child("zipf").rng();
        let n = 200_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 5, 20] {
            let emp = counts[r] as f64 / n as f64;
            let exp = z.weight(r);
            assert!(
                (emp - exp).abs() < 0.01,
                "rank {r}: empirical {emp} vs expected {exp}"
            );
        }
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for r in 0..4 {
            assert!((z.weight(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_rejects_bad_input() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
    }

    #[test]
    fn zipf_fit_recovers_theta() {
        for theta in [0.6, 1.0, 1.3] {
            let z = Zipf::new(300, theta).unwrap();
            let mut rng = SeedTree::new(77).child("zfit").rng();
            let mut counts = vec![0u64; 300];
            for _ in 0..300_000 {
                counts[z.sample(&mut rng)] += 1;
            }
            let fit = fit_zipf_theta(&counts).unwrap();
            assert!((fit - theta).abs() < 0.15, "θ={theta}: fit {fit}");
        }
    }

    #[test]
    fn zipf_fit_rejects_degenerate_input() {
        assert!(fit_zipf_theta(&[]).is_err());
        assert!(fit_zipf_theta(&[5, 3]).is_err());
        assert!(fit_zipf_theta(&[0, 0, 0]).is_err());
        // Uniform counts fit θ ≈ 0.
        let theta = fit_zipf_theta(&[10, 10, 10, 10, 10]).unwrap();
        assert!(theta.abs() < 1e-9);
    }

    #[test]
    fn pareto_respects_bounds() {
        let p = BoundedPareto::new(1.2, 100.0, 1_000_000.0).unwrap();
        let mut rng = SeedTree::new(2).child("pareto").rng();
        for _ in 0..10_000 {
            let x = p.sample(&mut rng);
            assert!((100.0..=1_000_000.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // Median far below mean is the heavy-tail signature.
        let p = BoundedPareto::new(1.1, 1_000.0, 10_000_000.0).unwrap();
        let mut rng = SeedTree::new(3).child("pareto2").rng();
        let mut xs: Vec<f64> = (0..20_000).map(|_| p.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean > 2.0 * median, "mean {mean} median {median}");
    }

    #[test]
    fn pareto_inv_cdf_endpoints() {
        let p = BoundedPareto::new(1.5, 10.0, 1000.0).unwrap();
        assert!((p.inv_cdf(0.0) - 10.0).abs() < 1e-6);
        assert!(p.inv_cdf(0.999999) <= 1000.0 + 1e-6);
    }

    #[test]
    fn pareto_rejects_bad_input() {
        assert!(BoundedPareto::new(0.0, 1.0, 2.0).is_err());
        assert!(BoundedPareto::new(1.0, 2.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn pareto_sample_bytes_at_least_one() {
        // Sub-byte samples round up to 1 byte.
        let p = BoundedPareto::new(1.2, 0.1, 2.0).unwrap();
        let mut rng = SeedTree::new(4).child("b").rng();
        assert!(p.sample_bytes(&mut rng).get() >= 1);
    }

    #[test]
    fn exponential_model_basics() {
        let m = ExponentialPopularity::new(ExponentialPopularity::BU_WWW_LAMBDA).unwrap();
        assert!((m.hit_probability(Bytes::ZERO)).abs() < 1e-12);
        // λ·b = 1 → H = 1 − e⁻¹ ≈ 0.632.
        let b = Bytes::new((1.0 / m.lambda()).round() as u64);
        assert!((m.hit_probability(b) - 0.632).abs() < 0.01);
        assert!(m.density(Bytes::ZERO) > m.density(Bytes::from_mib(10)));
    }

    #[test]
    fn exponential_model_paper_sizing_example() {
        // §2.3: λ = 6.247e-7, α = 0.9 per server ⇒ ≈ 3.686 MB per server,
        // ×10 servers ≈ 36 MB.
        let m = ExponentialPopularity::new(6.247e-7).unwrap();
        let per_server = m.bytes_for_fraction(0.9).unwrap();
        let total_mb = per_server.get() as f64 * 10.0 / 1e6;
        assert!(
            (total_mb - 36.0).abs() < 1.0,
            "paper says ≈36 MB, got {total_mb:.1} MB"
        );
    }

    #[test]
    fn exponential_model_inverse_roundtrip() {
        let m = ExponentialPopularity::new(1e-6).unwrap();
        for alpha in [0.1, 0.5, 0.9, 0.99] {
            let b = m.bytes_for_fraction(alpha).unwrap();
            let h = m.hit_probability(b);
            assert!((h - alpha).abs() < 1e-3, "α={alpha} → H={h}");
        }
    }

    #[test]
    fn exponential_model_rejects_bad_input() {
        assert!(ExponentialPopularity::new(0.0).is_err());
        assert!(ExponentialPopularity::new(-1.0).is_err());
        assert!(ExponentialPopularity::new(f64::NAN).is_err());
        let m = ExponentialPopularity::new(1e-6).unwrap();
        assert!(m.bytes_for_fraction(1.0).is_err());
        assert!(m.bytes_for_fraction(-0.1).is_err());
    }

    fn synthetic_exponential_docs(lambda: f64, n: usize) -> Vec<(Bytes, u64)> {
        // Build equal-size documents whose cumulative hit curve follows
        // H(b) = 1 − exp(−λ b) exactly, then check the fit recovers λ.
        let size = 10_000u64;
        let mut docs = Vec::with_capacity(n);
        let mut prev = 0.0;
        for k in 1..=n {
            let b = (k as u64 * size) as f64;
            let h = 1.0 - (-lambda * b).exp();
            let share = h - prev;
            prev = h;
            docs.push((Bytes::new(size), (share * 1e9) as u64));
        }
        docs
    }

    #[test]
    fn hit_curve_fit_recovers_lambda() {
        // Use enough documents that H(b_max) ≈ 1: the empirical curve is
        // normalized by *observed* requests, so an unsaturated synthetic
        // curve would be rescaled and bias the fit.
        let lambda = 5e-7;
        let docs = synthetic_exponential_docs(lambda, 2_000);
        let curve = HitCurve::from_documents(&docs).unwrap();
        let fit = curve.fit_lambda(0.98).unwrap();
        let rel = (fit.lambda() - lambda).abs() / lambda;
        assert!(rel < 0.05, "fit λ={} true λ={lambda}", fit.lambda());
        let fit2 = curve.fit_lambda_at(0.25).unwrap();
        let rel2 = (fit2.lambda() - lambda).abs() / lambda;
        assert!(rel2 < 0.1, "anchor fit λ={}", fit2.lambda());
    }

    #[test]
    fn hit_curve_orders_by_density() {
        // A tiny hot doc must come before a huge lukewarm one.
        let docs = vec![
            (Bytes::new(1_000_000), 100u64), // 0.0001 req/B
            (Bytes::new(1_000), 50u64),      // 0.05 req/B
        ];
        let c = HitCurve::from_documents(&docs).unwrap();
        // After the first 1 KB we already have 50/150 of the hits.
        let h = c.hit_fraction(Bytes::new(1_000));
        assert!((h - 50.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn hit_curve_monotone_and_bounded() {
        let docs: Vec<(Bytes, u64)> = (1..=100).map(|i| (Bytes::new(i * 100), 1000 / i)).collect();
        let c = HitCurve::from_documents(&docs).unwrap();
        let pts: Vec<(Bytes, f64)> = c.points().collect();
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
        assert_eq!(c.hit_fraction(Bytes::ZERO), 0.0);
        assert!((c.hit_fraction(c.total_bytes()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hit_curve_ignores_unrequested_docs() {
        let docs = vec![
            (Bytes::new(100), 10u64),
            (Bytes::new(1_000_000), 0u64), // never requested
        ];
        let c = HitCurve::from_documents(&docs).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_bytes(), Bytes::new(100));
    }

    #[test]
    fn hit_curve_rejects_empty() {
        assert!(HitCurve::from_documents(&[]).is_err());
        assert!(HitCurve::from_documents(&[(Bytes::new(10), 0)]).is_err());
    }
}
