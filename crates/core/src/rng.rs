//! Deterministic, splittable randomness.
//!
//! Every experiment in the workspace must be reproducible from a single
//! `u64` master seed — the paper's evaluation is trace-driven, so two
//! runs with the same seed must produce byte-identical traces and
//! therefore identical metrics. The simulators also need *independent*
//! random streams for independent concerns (document sizes vs. client
//! arrivals vs. link choices); drawing them all from one sequential RNG
//! would make adding a parameter to one component silently reshuffle
//! every other component. [`SeedTree`] solves this by deriving child
//! seeds with a SplitMix64 hash of `(seed, label)` pairs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The workspace-standard RNG. `StdRng` is seedable, portable across
/// platforms and fast enough for simulation workloads.
pub type Rng = StdRng;

/// SplitMix64 finalizer — the standard 64-bit mixing function, used here
/// to derive statistically independent child seeds.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a label string into the seed stream (FNV-1a then SplitMix64).
#[inline]
fn mix_label(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    splitmix64(seed ^ h)
}

/// A node in a deterministic seed-derivation tree.
///
/// ```
/// use specweb_core::rng::SeedTree;
/// use rand::Rng as _;
///
/// let root = SeedTree::new(42);
/// let mut sizes = root.child("doc-sizes").rng();
/// let mut arrivals = root.child("arrivals").rng();
/// // The two streams are independent and each reproducible:
/// let a: u64 = sizes.gen();
/// let b: u64 = arrivals.gen();
/// assert_ne!(a, b);
/// assert_eq!(SeedTree::new(42).child("doc-sizes").rng().gen::<u64>(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// Creates the root of a seed tree from a master seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SeedTree { seed }
    }

    /// The seed at this node.
    #[inline]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a labeled child node. Distinct labels yield independent
    /// streams; the same label always yields the same stream.
    #[inline]
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree {
            seed: mix_label(self.seed, label),
        }
    }

    /// Derives an indexed child node (e.g. one stream per client).
    #[inline]
    pub fn child_idx(&self, label: &str, idx: u64) -> SeedTree {
        SeedTree {
            seed: splitmix64(mix_label(self.seed, label) ^ splitmix64(idx)),
        }
    }

    /// Materializes an RNG seeded at this node.
    #[inline]
    pub fn rng(&self) -> Rng {
        StdRng::seed_from_u64(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn same_label_same_stream() {
        let t = SeedTree::new(7);
        assert_eq!(t.child("a").seed(), t.child("a").seed());
        assert_eq!(
            t.child("a").rng().gen::<u64>(),
            t.child("a").rng().gen::<u64>()
        );
    }

    #[test]
    fn different_labels_differ() {
        let t = SeedTree::new(7);
        assert_ne!(t.child("a").seed(), t.child("b").seed());
        assert_ne!(t.child("a").seed(), t.seed());
    }

    #[test]
    fn indexed_children_differ() {
        let t = SeedTree::new(7);
        let s: Vec<u64> = (0..100).map(|i| t.child_idx("c", i).seed()).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len(), "indexed child seeds collided");
    }

    #[test]
    fn different_roots_differ() {
        assert_ne!(
            SeedTree::new(1).child("a").seed(),
            SeedTree::new(2).child("a").seed()
        );
    }

    #[test]
    fn nesting_is_order_sensitive() {
        let t = SeedTree::new(9);
        assert_ne!(
            t.child("a").child("b").seed(),
            t.child("b").child("a").seed()
        );
    }

    #[test]
    fn splitmix_known_values_are_stable() {
        // Pin the derivation so a refactor cannot silently change every
        // experiment's trace.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn rng_stream_looks_uniform() {
        // Cheap sanity check: mean of 10k uniform [0,1) draws near 0.5.
        let mut rng = SeedTree::new(3).child("u").rng();
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
