//! Workspace-wide error type.
//!
//! The crates in this workspace are libraries first: they return typed
//! errors instead of panicking, and the single [`CoreError`] enum keeps
//! the `?` plumbing uniform across crates without pulling in an error
//! framework dependency.

use std::fmt;

/// Errors produced anywhere in the `specweb` workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value was out of its legal range.
    InvalidConfig {
        /// Name of the offending parameter.
        param: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An id referred to an entity that does not exist.
    UnknownId {
        /// The id space ("doc", "client", "server", "node").
        kind: &'static str,
        /// The raw id value.
        id: u32,
    },
    /// Numeric fitting/estimation failed (e.g. degenerate input curve).
    Estimation(String),
    /// A log line or serialized artifact could not be parsed.
    Parse {
        /// One-based line number, when known (0 = unknown).
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// An I/O failure, flattened to a string so the error stays `Clone`.
    Io(String),
    /// A peer violated the wire protocol (malformed message, oversized
    /// line, digest past the cardinality cap, …).
    Protocol {
        /// What the peer sent, or how it broke the framing.
        reason: String,
    },
    /// A server refused or degraded service because it is overloaded.
    Overload {
        /// What the server shed ("speculation", "connection", …).
        shed: &'static str,
        /// Human-readable context (active connections, limits, …).
        detail: String,
    },
}

impl CoreError {
    /// Convenience constructor for configuration errors.
    pub fn invalid_config(param: &'static str, reason: impl Into<String>) -> Self {
        CoreError::InvalidConfig {
            param,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, reason: impl Into<String>) -> Self {
        CoreError::Parse {
            line,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for wire-protocol violations.
    pub fn protocol(reason: impl Into<String>) -> Self {
        CoreError::Protocol {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for overload refusals.
    pub fn overload(shed: &'static str, detail: impl Into<String>) -> Self {
        CoreError::Overload {
            shed,
            detail: detail.into(),
        }
    }

    /// True for failures worth retrying after a backoff: transient
    /// overload and I/O hiccups. Protocol and configuration errors are
    /// deterministic — retrying resends the same poison.
    pub fn is_transient(&self) -> bool {
        matches!(self, CoreError::Io(_) | CoreError::Overload { .. })
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { param, reason } => {
                write!(f, "invalid configuration `{param}`: {reason}")
            }
            CoreError::UnknownId { kind, id } => {
                write!(f, "unknown {kind} id {id}")
            }
            CoreError::Estimation(msg) => write!(f, "estimation failed: {msg}"),
            CoreError::Parse { line, reason } => {
                if *line == 0 {
                    write!(f, "parse error: {reason}")
                } else {
                    write!(f, "parse error at line {line}: {reason}")
                }
            }
            CoreError::Io(msg) => write!(f, "i/o error: {msg}"),
            CoreError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            CoreError::Overload { shed, detail } => {
                write!(f, "server overloaded (shed {shed}): {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e.to_string())
    }
}

/// Workspace-wide result alias.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::invalid_config("T_p", "must be in (0, 1]");
        assert_eq!(
            e.to_string(),
            "invalid configuration `T_p`: must be in (0, 1]"
        );
        let e = CoreError::UnknownId { kind: "doc", id: 7 };
        assert_eq!(e.to_string(), "unknown doc id 7");
        let e = CoreError::parse(3, "bad timestamp");
        assert_eq!(e.to_string(), "parse error at line 3: bad timestamp");
        let e = CoreError::parse(0, "truncated");
        assert_eq!(e.to_string(), "parse error: truncated");
        let e = CoreError::Estimation("empty curve".into());
        assert_eq!(e.to_string(), "estimation failed: empty curve");
        let e = CoreError::protocol("line exceeds 4096 bytes");
        assert_eq!(e.to_string(), "protocol violation: line exceeds 4096 bytes");
        let e = CoreError::overload("speculation", "97/96 connections");
        assert_eq!(
            e.to_string(),
            "server overloaded (shed speculation): 97/96 connections"
        );
    }

    #[test]
    fn transient_classification() {
        assert!(CoreError::Io("reset".into()).is_transient());
        assert!(CoreError::overload("connection", "full").is_transient());
        assert!(!CoreError::protocol("garbage").is_transient());
        assert!(!CoreError::invalid_config("x", "bad").is_transient());
        assert!(!CoreError::parse(1, "bad").is_transient());
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: CoreError = io.into();
        assert!(matches!(e, CoreError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::Io("x".into()));
    }
}
