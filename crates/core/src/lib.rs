//! # specweb-core
//!
//! Shared substrate for the `specweb` workspace — a reproduction of
//! Azer Bestavros, *"Speculative Data Dissemination and Service to Reduce
//! Server Load, Network Traffic and Service Time in Distributed Information
//! Systems"*, ICDE 1996.
//!
//! This crate holds everything the protocol crates have in common:
//!
//! * strongly-typed identifiers ([`ids`]) for documents, clients, servers
//!   and topology nodes;
//! * a millisecond-resolution simulated clock ([`time`]) with the
//!   session/stride arithmetic the paper's trace analysis relies on;
//! * byte and byte×hop accounting units ([`units`]);
//! * streaming statistics and histograms ([`stats`]);
//! * the probability distributions the workload model is built from, plus
//!   the paper's exponential popularity model and its fitting routines
//!   ([`dist`]);
//! * deterministic, splittable random-number plumbing ([`rng`]) so every
//!   experiment is reproducible from a single seed;
//! * a scoped work-sharing thread pool ([`par`]) whose order-preserving
//!   `par_map_indexed` keeps parallel output byte-identical to serial
//!   output (every work item draws randomness from its own [`rng`]
//!   seed-tree child);
//! * the paper's four evaluation metrics as first-class accumulators
//!   ([`metrics`]);
//! * observability — a per-subsystem metrics registry, ring-buffered
//!   event tracer, `SPECWEB_LOG`-gated [`log!`] macro, and run
//!   manifests, all split into deterministic vs wall-clock channels
//!   ([`obs`]);
//! * a common error type ([`error`]).
//!
//! Nothing in this crate knows about HTTP, proxies or speculation — it is
//! the arithmetic bedrock on which `specweb-trace`, `specweb-netsim`,
//! `specweb-dissem` and `specweb-spec` are built.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod error;
pub mod ids;
pub mod metrics;
pub mod obs;
pub mod par;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use error::{CoreError, Result};
pub use ids::{ClientId, DocId, NodeId, ServerId};
pub use time::{Duration, SimTime};
pub use units::{ByteHops, Bytes};
