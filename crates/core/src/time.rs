//! Simulated time.
//!
//! The paper's trace analysis is entirely wall-clock driven: the
//! dependency window `T_w`, `StrideTimeout` and `SessionTimeout` are all
//! durations compared against inter-request gaps, and the estimator is
//! refreshed every `UpdateCycle` *days* over a `HistoryLength`-day
//! history. A millisecond-resolution integer clock is plenty for HTTP
//! logs (which have one-second resolution) while staying exact — no
//! floating-point drift over 22-week traces.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in milliseconds since the start of
/// the trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of simulated time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Duration(pub u64);

impl SimTime {
    /// The trace origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Constructs an instant from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Constructs an instant from whole days. Saturates rather than
    /// wraps on absurd day counts (the scale knob multiplies into this).
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        SimTime(days.saturating_mul(Duration::DAY.0))
    }

    /// Milliseconds since the origin.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the origin (truncated).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// The zero-based day this instant falls in, used to bucket a trace
    /// into the paper's per-day estimator update cycle.
    #[inline]
    pub const fn day(self) -> u64 {
        self.0 / Duration::DAY.0
    }

    /// The elapsed duration since `earlier`, saturating at zero if
    /// `earlier` is actually later (defensive: logs are not always
    /// perfectly sorted).
    #[inline]
    pub const fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub const fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// One second.
    pub const SECOND: Duration = Duration(1_000);
    /// One minute.
    pub const MINUTE: Duration = Duration(60_000);
    /// One hour.
    pub const HOUR: Duration = Duration(3_600_000);
    /// One day.
    pub const DAY: Duration = Duration(86_400_000);
    /// Effectively infinite — larger than any trace span we simulate.
    /// Used for the paper's `SessionTimeout = ∞` and `MaxSize = ∞`
    /// style settings.
    pub const INFINITE: Duration = Duration(u64::MAX);

    /// Constructs a span from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000)
    }

    /// Constructs a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Constructs a span from whole days. Saturates rather than wraps
    /// on absurd day counts (the scale knob multiplies into this).
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        Duration(days.saturating_mul(Duration::DAY.0))
    }

    /// Constructs a span from fractional seconds, rounding to the nearest
    /// millisecond. Negative values clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() {
            return Duration::INFINITE;
        }
        Duration((secs.max(0.0) * 1_000.0).round() as u64)
    }

    /// Milliseconds in the span.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds in the span (truncated).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// The span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whether this span is the [`Duration::INFINITE`] sentinel.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else if self.0.is_multiple_of(Duration::DAY.0) && self.0 > 0 {
            write!(f, "{}d", self.0 / Duration::DAY.0)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}s", self.0 / 1_000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Splits a time-ordered iterator of instants into *strides*: maximal
/// runs in which consecutive instants are separated by **less than**
/// `timeout` (the paper's `StrideTimeout` / `SessionTimeout` definition:
/// "a sequence of requests where the time between successive requests is
/// less than StrideTimeout seconds").
///
/// Returns the list of `(start_index, end_index_exclusive)` ranges.
/// An infinite timeout yields one stride covering everything; a zero
/// timeout yields one singleton stride per instant.
pub fn split_strides(times: &[SimTime], timeout: Duration) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if times.is_empty() {
        return out;
    }
    let mut start = 0usize;
    for i in 1..times.len() {
        let gap = times[i].since(times[i - 1]);
        let same_stride = timeout.is_infinite() || gap < timeout;
        if !same_stride {
            out.push((start, i));
            start = i;
        }
    }
    out.push((start, times.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(secs: &[u64]) -> Vec<SimTime> {
        secs.iter().map(|&s| SimTime::from_secs(s)).collect()
    }

    /// Regression for the W1 fixes: the time newtypes saturate instead
    /// of wrapping, so a scale-100 trace whose session ids sit near the
    /// end of simulated time cannot wrap a timestamp back to zero.
    #[test]
    fn time_arithmetic_saturates_at_scale() {
        let end = SimTime(u64::MAX - 5);
        assert_eq!(end + Duration::from_secs(10), SimTime(u64::MAX));
        let mut t = end;
        t += Duration::from_secs(10);
        assert_eq!(t, SimTime(u64::MAX));
        // A century of million-session days lands far from the edge.
        assert_eq!(SimTime::from_days(36_500).day(), 36_500);
        assert_eq!(Duration::from_days(u64::MAX), Duration(u64::MAX));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        assert_eq!(t.as_secs(), 10);
        assert_eq!((t + Duration::from_secs(5)).as_secs(), 15);
        assert_eq!((t - Duration::from_secs(3)).as_secs(), 7);
        assert_eq!(SimTime::from_secs(12) - t, Duration::from_secs(2));
        // `since` saturates rather than underflowing.
        assert_eq!(t.since(SimTime::from_secs(20)), Duration::ZERO);
    }

    #[test]
    fn day_bucketing() {
        assert_eq!(SimTime::ZERO.day(), 0);
        assert_eq!((SimTime::from_days(1) - Duration::from_millis(1)).day(), 0);
        assert_eq!(SimTime::from_days(1).day(), 1);
        assert_eq!(SimTime::from_days(59).day(), 59);
    }

    #[test]
    fn duration_constants() {
        assert_eq!(Duration::DAY, Duration::from_secs(86_400));
        assert_eq!(Duration::HOUR * 24, Duration::DAY);
        assert!(Duration::INFINITE.is_infinite());
        assert!(!Duration::DAY.is_infinite());
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(Duration::from_secs_f64(5.0), Duration::from_secs(5));
        assert_eq!(Duration::from_secs_f64(0.0015), Duration::from_millis(2));
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert!(Duration::from_secs_f64(f64::INFINITY).is_infinite());
    }

    #[test]
    fn saturating_ops_do_not_overflow() {
        let max = Duration::INFINITE;
        assert_eq!(max + Duration::SECOND, Duration::INFINITE);
        assert_eq!(max * 3, Duration::INFINITE);
        assert_eq!(
            SimTime(u64::MAX).saturating_add(Duration::SECOND),
            SimTime(u64::MAX)
        );
    }

    #[test]
    fn strides_basic() {
        // Gaps: 1s, 10s, 2s with a 5s timeout → split at the 10s gap.
        let t = ts(&[0, 1, 11, 13]);
        let s = split_strides(&t, Duration::from_secs(5));
        assert_eq!(s, vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn strides_boundary_gap_splits() {
        // The paper's definition is strictly "less than", so a gap equal
        // to the timeout starts a new stride.
        let t = ts(&[0, 5]);
        let s = split_strides(&t, Duration::from_secs(5));
        assert_eq!(s, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn strides_infinite_timeout_is_one_session() {
        let t = ts(&[0, 100, 100_000]);
        let s = split_strides(&t, Duration::INFINITE);
        assert_eq!(s, vec![(0, 3)]);
    }

    #[test]
    fn strides_zero_timeout_is_all_singletons() {
        let t = ts(&[0, 1, 2]);
        let s = split_strides(&t, Duration::ZERO);
        assert_eq!(s, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn strides_empty_and_single() {
        assert!(split_strides(&[], Duration::SECOND).is_empty());
        let s = split_strides(&[SimTime::ZERO], Duration::SECOND);
        assert_eq!(s, vec![(0, 1)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_secs(5).to_string(), "5s");
        assert_eq!(Duration::from_days(2).to_string(), "2d");
        assert_eq!(Duration::from_millis(1500).to_string(), "1500ms");
        assert_eq!(Duration::INFINITE.to_string(), "∞");
        assert_eq!(SimTime::from_millis(5).to_string(), "t+5ms");
    }
}
