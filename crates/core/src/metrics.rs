//! The paper's four evaluation metrics (§3.2).
//!
//! Every speculative-service experiment is summarized by four ratios of a
//! *speculative* run against a *non-speculative baseline* run on the same
//! trace:
//!
//! 1. **Bandwidth ratio** — bytes communicated with speculation ÷ without;
//! 2. **Server-load ratio** — requests reaching the server with ÷ without;
//! 3. **Service-time ratio** — client-perceived retrieval latency with ÷
//!    without;
//! 4. **Miss-rate ratio** — client byte miss rate with ÷ without, where
//!    the byte miss rate is bytes *not* found in the client cache ÷ total
//!    bytes accessed.
//!
//! A ratio below 1 is an improvement; bandwidth is expected to sit
//! *above* 1 (speculation buys the other three with extra traffic).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Bytes;

/// Raw totals accumulated over one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTotals {
    /// Total bytes moved server→client (requested + speculated).
    pub bytes_sent: Bytes,
    /// Number of requests the server had to process (speculative pushes
    /// ride on the triggering request and are *not* extra requests —
    /// that is the entire point of the protocol).
    pub server_requests: u64,
    /// Sum of client-perceived retrieval latency, in milliseconds.
    pub latency_ms: u64,
    /// Number of client accesses contributing to `latency_ms`.
    pub accesses: u64,
    /// Bytes the client needed but did not find in its cache.
    pub miss_bytes: Bytes,
    /// Total bytes of all client accesses (hit or miss).
    pub accessed_bytes: Bytes,
}

impl RunTotals {
    /// An all-zero accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another run's totals (e.g. per-client partials).
    /// Saturating throughout: at `--scale 100` the byte totals are a
    /// few orders below u64::MAX, but a shard-merge must never wrap.
    pub fn merge(&mut self, other: &RunTotals) {
        self.bytes_sent += other.bytes_sent; // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
        self.server_requests = self.server_requests.saturating_add(other.server_requests);
        self.latency_ms = self.latency_ms.saturating_add(other.latency_ms);
        self.accesses = self.accesses.saturating_add(other.accesses);
        self.miss_bytes += other.miss_bytes; // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
        self.accessed_bytes += other.accessed_bytes; // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
    }

    /// Mean client-perceived latency, in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.latency_ms as f64 / self.accesses as f64
        }
    }

    /// Global byte miss rate (misses ÷ accessed bytes).
    pub fn byte_miss_rate(&self) -> f64 {
        self.miss_bytes.ratio(self.accessed_bytes)
    }
}

/// The paper's four ratios between a speculative run and its baseline.
///
/// ```
/// use specweb_core::metrics::{Ratios, RunTotals};
/// use specweb_core::Bytes;
/// let base = RunTotals {
///     bytes_sent: Bytes::new(1_000), server_requests: 100,
///     latency_ms: 10_000, accesses: 100,
///     miss_bytes: Bytes::new(500), accessed_bytes: Bytes::new(2_000),
/// };
/// let spec = RunTotals {
///     bytes_sent: Bytes::new(1_100), server_requests: 70,
///     latency_ms: 7_700, accesses: 100,
///     miss_bytes: Bytes::new(400), accessed_bytes: Bytes::new(2_000),
/// };
/// let r = Ratios::between(&spec, &base);
/// assert!((r.traffic_increase_pct() - 10.0).abs() < 1e-9);
/// assert!((r.server_load_reduction_pct() - 30.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ratios {
    /// Bytes communicated, speculative ÷ baseline (≥ 1 expected).
    pub bandwidth: f64,
    /// Server requests, speculative ÷ baseline (≤ 1 expected).
    pub server_load: f64,
    /// Retrieval latency, speculative ÷ baseline (≤ 1 expected).
    pub service_time: f64,
    /// Byte miss rate, speculative ÷ baseline (≤ 1 expected).
    pub miss_rate: f64,
}

impl Ratios {
    /// The identity ratios (speculation disabled ⇒ all exactly 1).
    pub const UNITY: Ratios = Ratios {
        bandwidth: 1.0,
        server_load: 1.0,
        service_time: 1.0,
        miss_rate: 1.0,
    };

    /// Computes the four ratios of `speculative` against `baseline`.
    /// Zero-over-zero cases are defined as 1 (no change).
    pub fn between(speculative: &RunTotals, baseline: &RunTotals) -> Ratios {
        fn safe(n: f64, d: f64) -> f64 {
            if d == 0.0 {
                if n == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                n / d
            }
        }
        Ratios {
            bandwidth: safe(
                speculative.bytes_sent.as_f64(),
                baseline.bytes_sent.as_f64(),
            ),
            server_load: safe(
                speculative.server_requests as f64,
                baseline.server_requests as f64,
            ),
            service_time: safe(speculative.latency_ms as f64, baseline.latency_ms as f64),
            miss_rate: safe(speculative.byte_miss_rate(), baseline.byte_miss_rate()),
        }
    }

    /// Percentage of *extra* traffic: `(bandwidth − 1) × 100`.
    pub fn traffic_increase_pct(&self) -> f64 {
        (self.bandwidth - 1.0) * 100.0
    }

    /// Percentage *reduction* in server load: `(1 − server_load) × 100`.
    pub fn server_load_reduction_pct(&self) -> f64 {
        (1.0 - self.server_load) * 100.0
    }

    /// Percentage reduction in service time.
    pub fn service_time_reduction_pct(&self) -> f64 {
        (1.0 - self.service_time) * 100.0
    }

    /// Percentage reduction in client byte miss rate.
    pub fn miss_rate_reduction_pct(&self) -> f64 {
        (1.0 - self.miss_rate) * 100.0
    }
}

impl fmt::Display for Ratios {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "traffic {:+.1}% | load −{:.1}% | time −{:.1}% | miss −{:.1}%",
            self.traffic_increase_pct(),
            self.server_load_reduction_pct(),
            self.service_time_reduction_pct(),
            self.miss_rate_reduction_pct()
        )
    }
}

/// The combined cost of a run under the paper's §3.2 cost model:
/// `CommCost` per byte communicated plus `ServCost` per request served.
/// Used to weigh a server-load reduction against a traffic increase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Cost of communicating one byte (paper baseline: 1 unit).
    pub comm_cost: f64,
    /// Cost of servicing one request (paper baseline: 10,000 units).
    pub serv_cost: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // The paper's baseline parameters (§3.2 table).
        CostWeights {
            comm_cost: 1.0,
            serv_cost: 10_000.0,
        }
    }
}

impl CostWeights {
    /// Total weighted cost of a run.
    pub fn total_cost(&self, run: &RunTotals) -> f64 {
        self.comm_cost * run.bytes_sent.as_f64() + self.serv_cost * run.server_requests as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(bytes: u64, reqs: u64, lat: u64, acc: u64, miss: u64, accessed: u64) -> RunTotals {
        RunTotals {
            bytes_sent: Bytes::new(bytes),
            server_requests: reqs,
            latency_ms: lat,
            accesses: acc,
            miss_bytes: Bytes::new(miss),
            accessed_bytes: Bytes::new(accessed),
        }
    }

    #[test]
    fn ratios_basic() {
        let spec = run(110, 70, 770, 100, 80, 1000);
        let base = run(100, 100, 1000, 100, 100, 1000);
        let r = Ratios::between(&spec, &base);
        assert!((r.bandwidth - 1.1).abs() < 1e-12);
        assert!((r.server_load - 0.7).abs() < 1e-12);
        assert!((r.service_time - 0.77).abs() < 1e-12);
        assert!((r.miss_rate - 0.8).abs() < 1e-12);
        assert!((r.traffic_increase_pct() - 10.0).abs() < 1e-9);
        assert!((r.server_load_reduction_pct() - 30.0).abs() < 1e-9);
        assert!((r.service_time_reduction_pct() - 23.0).abs() < 1e-9);
        assert!((r.miss_rate_reduction_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn identical_runs_are_unity() {
        let a = run(100, 10, 500, 50, 30, 300);
        let r = Ratios::between(&a, &a);
        assert!((r.bandwidth - 1.0).abs() < 1e-12);
        assert!((r.server_load - 1.0).abs() < 1e-12);
        assert!((r.service_time - 1.0).abs() < 1e-12);
        assert!((r.miss_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_runs_are_unity_not_nan() {
        let r = Ratios::between(&RunTotals::new(), &RunTotals::new());
        assert_eq!(r, Ratios::UNITY);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = run(10, 1, 5, 1, 2, 20);
        a.merge(&run(30, 2, 15, 3, 4, 40));
        assert_eq!(a, run(40, 3, 20, 4, 6, 60));
    }

    /// Regression for the W1 fix in `merge`: shard-merging totals that
    /// sit near the integer edge saturates instead of wrapping, so a
    /// corrupt or adversarial shard cannot flip a huge total into a
    /// tiny one.
    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = run(u64::MAX - 1, u64::MAX - 1, u64::MAX - 1, 1, 0, 0);
        a.merge(&run(10, 10, 10, 1, 0, 0));
        assert_eq!(a.bytes_sent.get(), u64::MAX);
        assert_eq!(a.server_requests, u64::MAX);
        assert_eq!(a.latency_ms, u64::MAX);
        assert_eq!(a.accesses, 2);
    }

    #[test]
    fn derived_rates() {
        let a = run(0, 0, 300, 3, 50, 200);
        assert!((a.mean_latency_ms() - 100.0).abs() < 1e-12);
        assert!((a.byte_miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(RunTotals::new().mean_latency_ms(), 0.0);
        assert_eq!(RunTotals::new().byte_miss_rate(), 0.0);
    }

    #[test]
    fn cost_weights_paper_defaults() {
        let w = CostWeights::default();
        assert_eq!(w.comm_cost, 1.0);
        assert_eq!(w.serv_cost, 10_000.0);
        let r = run(1_000, 5, 0, 0, 0, 0);
        assert!((w.total_cost(&r) - 51_000.0).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        let spec = run(105, 65, 750, 100, 82, 1000);
        let base = run(100, 100, 1000, 100, 100, 1000);
        let s = Ratios::between(&spec, &base).to_string();
        assert!(s.contains("traffic +5.0%"), "{s}");
        assert!(s.contains("load −35.0%"), "{s}");
    }
}
