//! Streaming statistics, histograms and small numeric helpers.
//!
//! The experiment harness needs to summarize large simulations without
//! retaining every sample: streaming mean/variance (Welford), fixed-bin
//! histograms (Fig. 4 of the paper is exactly such a histogram over
//! `p[i,j]` ranges), exact quantiles over retained samples, and the tiny
//! regression used to fit the exponential popularity model.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CoreError, Result};

/// Streaming count/mean/variance/min/max accumulator (Welford's
/// algorithm — numerically stable for long simulations).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (parallel Welford combine).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl fmt::Display for StreamingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min,
            self.max
        )
    }
}

/// A fixed-bin histogram over a closed-open interval `[lo, hi)`.
///
/// # Counting invariant
///
/// Every observation is counted in **exactly one bin**: out-of-range
/// observations are clamped into the first/last bin. [`Histogram::total`]
/// therefore counts each observation exactly once, and `bins()` sums to
/// `total()`. The [`Histogram::underflow`] / [`Histogram::overflow`]
/// tallies are *diagnostic subsets of the edge bins* (they record how
/// many of the edge-bin counts were clamped) — they are **not** in
/// addition to the bins, so never add them to `total()` or to an edge
/// bin when aggregating; that double-counts the clamped observations.
/// Fig. 4's `probability_histogram` relies on this: embedding pairs at
/// exactly `p = 1.0` land once in the top bin and are also visible via
/// `overflow()` for domain diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `lo >= hi` — both are programming errors
    /// at experiment-definition time, not runtime conditions.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Feeds one observation (clamping out-of-range values).
    pub fn push(&mut self, x: f64) {
        self.push_n(x, 1);
    }

    /// Feeds `n` identical observations at once. Clamped observations
    /// are counted **once**, in the edge bin; the under/overflow tallies
    /// mark them as clamped but are not additional counts (see the type
    /// docs).
    pub fn push_n(&mut self, x: f64, n: u64) {
        let nb = self.bins.len();
        if x < self.lo {
            self.underflow += n;
            self.bins[0] += n;
            return;
        }
        if x >= self.hi {
            self.overflow += n;
            self.bins[nb - 1] += n;
            return;
        }
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * nb as f64) as usize).min(nb - 1);
        self.bins[idx] += n;
    }

    /// Bin counts.
    #[inline]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Number of observations below `lo` (clamped into bin 0).
    #[inline]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above `hi` (clamped into the last bin).
    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations — each counted exactly once, including the
    /// clamped ones already present in the edge bins. Do **not** add
    /// [`Histogram::underflow`] / [`Histogram::overflow`] to this value.
    #[inline]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The `[lo, hi)` range the bins cover.
    #[inline]
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// The `[lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// The center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_edges(i);
        0.5 * (a + b)
    }

    /// Merges another histogram's counts into this one.
    ///
    /// Both histograms must have the same shape (`lo`, `hi`, bin count);
    /// bin counts and the diagnostic under/overflow tallies are summed,
    /// so the counting invariant is preserved: the merged `total()` is
    /// the sum of the inputs' totals. A shape mismatch is a configuration
    /// error (two metrics registered with different ranges), reported
    /// rather than silently re-binned.
    pub fn merge(&mut self, other: &Histogram) -> Result<()> {
        if self.lo != other.lo || self.hi != other.hi || self.bins.len() != other.bins.len() {
            return Err(CoreError::invalid_config(
                "histogram.merge",
                format!(
                    "shape mismatch: [{}, {}) x {} bins vs [{}, {}) x {} bins",
                    self.lo,
                    self.hi,
                    self.bins.len(),
                    other.lo,
                    other.hi,
                    other.bins.len()
                ),
            ));
        }
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        Ok(())
    }

    /// Renders the histogram as fixed-width rows `lo..hi  count  bar`.
    pub fn render(&self, width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (a, b) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width).div_ceil(peak as usize).min(width));
            out.push_str(&format!("{a:>8.3}..{b:<8.3} {c:>9} {bar}\n"));
        }
        out
    }
}

/// Number of log₂-spaced buckets a [`ServiceTimeDist`] exports: bucket
/// `i` counts latencies with `(ms + 1).ilog2() == i`, so the last bucket
/// starts at ~24 days — far beyond any simulated service time.
pub const SERVICE_TIME_LOG2_BINS: usize = 32;

/// Per-access service-time samples with **exact** tail quantiles.
///
/// The distribution keeps the full sample **multiset** as a sorted
/// `ms → count` map, so the reported p50/p90/p99/p999 are true order
/// statistics (type-7 interpolated via [`quantile`]), not bucket
/// approximations. Storing a multiset rather than an append-order vector
/// makes the determinism contract structural (DESIGN §13): two replays
/// that serve the same accesses compare **equal** no matter what order
/// the samples arrived in, so a serial replay and a shard-merged replay
/// produce identical distributions — and identical quantiles — for any
/// `--jobs` count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceTimeDist {
    /// Milliseconds → occurrences.
    counts: std::collections::BTreeMap<u64, u64>,
    /// Total samples (Σ counts).
    total: u64,
}

impl ServiceTimeDist {
    /// An empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access served in `ms` milliseconds (0 for cache hits).
    #[inline]
    pub fn record(&mut self, ms: u64) {
        *self.counts.entry(ms).or_insert(0) += 1;
        self.total += 1;
    }

    /// Adds another distribution's samples (exact shard merge: multiset
    /// union by count addition, commutative and associative, so merge
    /// order never changes the result).
    pub fn merge(&mut self, other: &ServiceTimeDist) {
        for (&ms, &n) in &other.counts {
            *self.counts.entry(ms).or_insert(0) += n;
        }
        self.total += other.total;
    }

    /// Number of recorded accesses.
    #[inline]
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether any access was recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Collapses the samples into [`SERVICE_TIME_LOG2_BINS`] log₂-spaced
    /// buckets (bucket `i` ⇔ `(ms + 1).ilog2() == i`) for the metrics
    /// registry: tails stay visible at millisecond resolution near zero
    /// without retaining samples in the manifest.
    pub fn log2_bins(&self) -> [u64; SERVICE_TIME_LOG2_BINS] {
        let mut bins = [0u64; SERVICE_TIME_LOG2_BINS];
        for (&ms, &n) in &self.counts {
            let b = ((ms + 1).ilog2() as usize).min(SERVICE_TIME_LOG2_BINS - 1);
            bins[b] += n;
        }
        bins
    }

    /// The `rank`-th smallest sample (0-based; saturates at the max).
    fn value_at(&self, rank: u64) -> u64 {
        let mut seen = 0u64;
        for (&ms, &n) in &self.counts {
            seen += n;
            if seen > rank {
                return ms;
            }
        }
        self.counts.keys().next_back().copied().unwrap_or(0)
    }

    /// Type-7 quantile over the multiset: interpolates between the two
    /// bracketing order statistics with [`quantile`], so the result is
    /// bit-identical to sorting the expanded samples and indexing.
    fn q(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let pos = p * (self.total - 1) as f64;
        let lo = pos.floor() as u64;
        let hi = pos.ceil() as u64;
        let pair = [self.value_at(lo) as f64, self.value_at(hi) as f64];
        quantile(&pair, pos - lo as f64).unwrap_or(0.0)
    }

    /// Computes the exact quantile summary (zeros when empty).
    pub fn quantiles(&self) -> ServiceQuantiles {
        if self.total == 0 {
            return ServiceQuantiles::default();
        }
        let sum: u64 = self.counts.iter().map(|(&ms, &n)| ms * n).sum();
        ServiceQuantiles {
            count: self.total,
            mean_ms: sum as f64 / self.total as f64,
            p50_ms: self.q(0.50),
            p90_ms: self.q(0.90),
            p99_ms: self.q(0.99),
            p999_ms: self.q(0.999),
            max_ms: self.counts.keys().next_back().copied().unwrap_or(0),
        }
    }
}

/// Exact service-time summary of one run (or one degraded class of
/// accesses within a run). All values are pure functions of the sample
/// multiset, hence deterministic across `--jobs` counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceQuantiles {
    /// Accesses summarized.
    pub count: u64,
    /// Mean service time, milliseconds.
    pub mean_ms: f64,
    /// Median (type-7 interpolated), milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile, milliseconds.
    pub p999_ms: f64,
    /// Slowest access, milliseconds.
    pub max_ms: u64,
}

impl fmt::Display for ServiceQuantiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1}ms p50={:.0} p90={:.0} p99={:.0} p999={:.0} max={}ms",
            self.count,
            self.mean_ms,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.p999_ms,
            self.max_ms
        )
    }
}

/// Exact quantile over a slice (linear interpolation between order
/// statistics, the "type 7" definition used by R and NumPy).
/// Returns `None` for an empty slice or `q` outside `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Least-squares slope of `y = m·x` (regression **through the origin**).
///
/// This is the estimator used to fit the paper's exponential popularity
/// model: with `y = -ln(1 - H(b))` and `x = b`, the model `H(b) =
/// 1 - exp(-λ b)` becomes the line `y = λ x` through the origin.
/// Returns `None` when the inputs are degenerate (no variation in `x`).
pub fn slope_through_origin(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "mismatched regression inputs");
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    if sxx <= 0.0 || !sxx.is_finite() {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    if !sxy.is_finite() {
        return None;
    }
    Some(sxy / sxx)
}

/// Gini coefficient of a set of non-negative weights — a scalar measure
/// of how concentrated ("popular-skewed") a popularity profile is.
/// Returns 0 for uniform weights, → 1 as one item dominates.
pub fn gini(weights: &[f64]) -> f64 {
    let n = weights.len();
    if n == 0 {
        return 0.0;
    }
    let mut w: Vec<f64> = weights.to_vec();
    w.sort_by(|a, b| a.total_cmp(b));
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // Gini = (2·Σ i·w_i)/(n·Σ w) − (n+1)/n, with i 1-based over ascending w.
    let weighted: f64 = w.iter().enumerate().map(|(i, x)| (i + 1) as f64 * x).sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_empty_is_sane() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&StreamingStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = StreamingStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.push(0.05); // bin 0
        h.push(0.95); // bin 9
        h.push(0.999); // bin 9
        h.push(-5.0); // underflow → bin 0
        h.push(2.0); // overflow → bin 9
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[9], 3);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_edge_exactly_hi_is_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(1.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[3], 1);
    }

    #[test]
    fn histogram_bin_geometry() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.bin_edges(0), (0.0, 0.25));
        assert_eq!(h.bin_edges(3), (0.75, 1.0));
        assert!((h.bin_center(1) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn histogram_push_n() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push_n(3.0, 7);
        assert_eq!(h.bins()[1], 7);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn clamped_observations_count_exactly_once() {
        // Pin the counting invariant: a clamped batch lands once in the
        // edge bin; the overflow tally is a diagnostic subset, not an
        // extra count. A consumer that summed bins + overflow would
        // double-count — `total()` must not.
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push_n(0.5, 10); // in range
        h.push_n(1.0, 3); // clamps into bin 3, tallies overflow
        h.push_n(-2.0, 2); // clamps into bin 0, tallies underflow
        assert_eq!(h.total(), 15, "each observation counted exactly once");
        assert_eq!(h.bins().iter().sum::<u64>(), h.total());
        assert_eq!(h.bins()[3], 3);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.underflow(), 2);
        // The diagnostic tallies never exceed their edge bins.
        assert!(h.overflow() <= h.bins()[3]);
        assert!(h.underflow() <= h.bins()[0]);
    }

    #[test]
    fn histogram_render_contains_counts() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push_n(0.25, 4);
        h.push(0.75);
        let r = h.render(20);
        assert!(r.contains('4'));
        assert!(r.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&v, 1.5), None);
        assert_eq!(quantile(&[9.0], 0.3), Some(9.0));
    }

    #[test]
    fn slope_fits_exact_line() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        let m = slope_through_origin(&xs, &ys).unwrap();
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slope_degenerate_is_none() {
        assert_eq!(slope_through_origin(&[], &[]), None);
        assert_eq!(slope_through_origin(&[0.0, 0.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn gini_extremes() {
        assert!((gini(&[1.0, 1.0, 1.0, 1.0])).abs() < 1e-12);
        // One item holds everything: (n-1)/n for n items.
        let g = gini(&[0.0, 0.0, 0.0, 1.0]);
        assert!((g - 0.75).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1.0, 2.0, 3.0]);
        let b = gini(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_sums_bins_and_diagnostics() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.push_n(0.1, 3);
        a.push(2.0); // overflow
        let mut b = Histogram::new(0.0, 1.0, 4);
        b.push_n(0.9, 2);
        b.push(-1.0); // underflow
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 7);
        assert_eq!(a.bins()[0], 4);
        assert_eq!(a.bins()[3], 3);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        // The counting invariant survives the merge.
        assert_eq!(a.bins().iter().sum::<u64>(), a.total());
    }

    #[test]
    fn histogram_merge_rejects_shape_mismatch() {
        let mut base = Histogram::new(0.0, 1.0, 4);
        for other in [
            Histogram::new(0.0, 1.0, 5),  // bin count
            Histogram::new(0.0, 2.0, 4),  // upper edge
            Histogram::new(-1.0, 1.0, 4), // lower edge
        ] {
            let before = base.clone();
            let err = base.merge(&other).unwrap_err();
            assert!(err.to_string().contains("shape mismatch"), "{err}");
            // A rejected merge must leave the target untouched.
            assert_eq!(base.bins(), before.bins());
            assert_eq!(base.range(), before.range());
        }
    }

    #[test]
    fn service_time_dist_exact_quantiles() {
        let mut d = ServiceTimeDist::new();
        for ms in 1..=100u64 {
            d.record(ms);
        }
        let q = d.quantiles();
        assert_eq!(q.count, 100);
        assert!((q.mean_ms - 50.5).abs() < 1e-12);
        assert!((q.p50_ms - 50.5).abs() < 1e-12);
        assert!((q.p90_ms - 90.1).abs() < 1e-9);
        assert_eq!(q.max_ms, 100);
        // Empty is all zeros, not NaN.
        let e = ServiceTimeDist::new().quantiles();
        assert_eq!(e.count, 0);
        assert_eq!(e.mean_ms, 0.0);
    }

    #[test]
    fn service_time_log2_bins_cover_every_sample() {
        let mut d = ServiceTimeDist::new();
        for ms in [0, 1, 2, 3, 1000, u64::MAX - 1] {
            d.record(ms);
        }
        let bins = d.log2_bins();
        assert_eq!(bins.iter().sum::<u64>() as usize, d.len());
        assert_eq!(bins[0], 1); // 0 ms → (0+1).ilog2() == 0
        assert_eq!(bins[1], 2); // 1, 2 ms
        assert_eq!(bins[SERVICE_TIME_LOG2_BINS - 1], 1); // clamped tail
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn quantiles_are_monotone(
                xs in prop::collection::vec(0u64..1_000_000, 1..256),
            ) {
                let mut xs = xs;
                xs.sort_unstable();
                let f: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
                let p50 = quantile(&f, 0.50).unwrap();
                let p90 = quantile(&f, 0.90).unwrap();
                let p99 = quantile(&f, 0.99).unwrap();
                let p999 = quantile(&f, 0.999).unwrap();
                prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
                prop_assert!(quantile(&f, 0.0).unwrap() <= p50);
                prop_assert!(p999 <= quantile(&f, 1.0).unwrap());
            }

            #[test]
            fn service_time_merge_is_exact_across_shard_counts(
                xs in prop::collection::vec(0u64..100_000, 0..256),
                shards in 1usize..8,
            ) {
                // One distribution over everything vs. shard partials
                // merged in order: the quantile summary must be *bitwise*
                // equal, not approximately — this is the property the
                // simulators' --jobs invariance rests on.
                let mut whole = ServiceTimeDist::new();
                for &x in &xs {
                    whole.record(x);
                }
                let mut merged = ServiceTimeDist::new();
                let per = xs.len().div_ceil(shards).max(1);
                for chunk in xs.chunks(per) {
                    let mut part = ServiceTimeDist::new();
                    for &x in chunk {
                        part.record(x);
                    }
                    merged.merge(&part);
                }
                prop_assert_eq!(merged.quantiles(), whole.quantiles());
                prop_assert_eq!(merged.log2_bins(), whole.log2_bins());
                prop_assert_eq!(&merged, &whole);
                // Multiset semantics: arrival order is invisible, so a
                // replay that serves the same accesses in *any* order
                // (serial trace order vs. cluster-shard order) compares
                // equal structurally, not just quantile-wise.
                let mut reversed = ServiceTimeDist::new();
                for &x in xs.iter().rev() {
                    reversed.record(x);
                }
                prop_assert_eq!(&reversed, &whole);
            }

            #[test]
            fn histogram_merge_equals_single_pass(
                xs in prop::collection::vec(-0.5f64..1.5, 0..128),
                shards in 1usize..6,
            ) {
                let mut whole = Histogram::new(0.0, 1.0, 8);
                for &x in &xs {
                    whole.push(x);
                }
                let mut merged = Histogram::new(0.0, 1.0, 8);
                let per = xs.len().div_ceil(shards).max(1);
                for chunk in xs.chunks(per) {
                    let mut part = Histogram::new(0.0, 1.0, 8);
                    for &x in chunk {
                        part.push(x);
                    }
                    merged.merge(&part).unwrap();
                }
                prop_assert_eq!(merged.bins(), whole.bins());
                prop_assert_eq!(merged.underflow(), whole.underflow());
                prop_assert_eq!(merged.overflow(), whole.overflow());
            }
        }
    }
}
