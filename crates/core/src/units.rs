//! Byte and traffic accounting units.
//!
//! The dissemination evaluation measures network traffic in
//! **bytes × hops** (Fig. 3 of the paper): moving one byte across three
//! hops costs three byte-hops, so intercepting a request one hop from the
//! client instead of five saves four byte-hops per byte. Keeping the two
//! units distinct in the type system prevents the classic accounting bug
//! of comparing raw bytes against hop-weighted bytes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A number of bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Bytes(pub u64);

/// A hop-weighted traffic volume (bytes × hops).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ByteHops(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);
    /// One kibibyte.
    pub const KIB: Bytes = Bytes(1 << 10);
    /// One mebibyte.
    pub const MIB: Bytes = Bytes(1 << 20);
    /// Effectively infinite — the paper's `MaxSize = ∞` sentinel.
    pub const INFINITE: Bytes = Bytes(u64::MAX);

    /// Constructs from a raw byte count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// Constructs from kibibytes.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib << 10)
    }

    /// Constructs from mebibytes.
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib << 20)
    }

    /// Raw byte count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The count as `f64`, for ratio arithmetic.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Whether this is the [`Bytes::INFINITE`] sentinel.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// Weights this volume by a hop count.
    #[inline]
    pub const fn over_hops(self, hops: u32) -> ByteHops {
        ByteHops(self.0.saturating_mul(hops as u64))
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// `self / other` as a float; `NaN`-free (0/0 is defined as 0).
    #[inline]
    pub fn ratio(self, denom: Bytes) -> f64 {
        if denom.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl ByteHops {
    /// Zero traffic.
    pub const ZERO: ByteHops = ByteHops(0);

    /// Raw byte-hop count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The count as `f64`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// `self / other` as a float; 0/0 is defined as 0.
    #[inline]
    pub fn ratio(self, denom: ByteHops) -> f64 {
        if denom.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

macro_rules! unit_arith {
    ($t:ident) => {
        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: $t) -> $t {
                $t(self.0.saturating_add(rhs.0))
            }
        }
        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: $t) {
                self.0 = self.0.saturating_add(rhs.0);
            }
        }
        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, rhs: $t) -> $t {
                $t(self.0.saturating_sub(rhs.0))
            }
        }
        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: $t) {
                self.0 = self.0.saturating_sub(rhs.0);
            }
        }
        impl Mul<u64> for $t {
            type Output = $t;
            #[inline]
            fn mul(self, rhs: u64) -> $t {
                $t(self.0.saturating_mul(rhs))
            }
        }
        impl Div<u64> for $t {
            type Output = $t;
            #[inline]
            fn div(self, rhs: u64) -> $t {
                $t(self.0 / rhs)
            }
        }
        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                iter.fold($t(0), |a, b| a + b)
            }
        }
    };
}

unit_arith!(Bytes);
unit_arith!(ByteHops);

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            return write!(f, "∞B");
        }
        if self.0 >= Bytes::MIB.0 && self.0.is_multiple_of(Bytes::MIB.0) {
            write!(f, "{}MiB", self.0 >> 20)
        } else if self.0 >= Bytes::KIB.0 && self.0.is_multiple_of(Bytes::KIB.0) {
            write!(f, "{}KiB", self.0 >> 10)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for ByteHops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B·hop", self.0)
    }
}

impl fmt::Display for ByteHops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(Bytes::from_kib(1), Bytes::new(1024));
        assert_eq!(Bytes::from_mib(1), Bytes::from_kib(1024));
        assert_eq!(Bytes::KIB.get(), 1024);
    }

    #[test]
    fn hop_weighting() {
        assert_eq!(Bytes::new(100).over_hops(3), ByteHops(300));
        assert_eq!(Bytes::new(100).over_hops(0), ByteHops::ZERO);
    }

    #[test]
    fn ratios_are_nan_free() {
        assert_eq!(Bytes::ZERO.ratio(Bytes::ZERO), 0.0);
        assert_eq!(Bytes::new(5).ratio(Bytes::ZERO), f64::INFINITY);
        assert!((Bytes::new(1).ratio(Bytes::new(2)) - 0.5).abs() < 1e-12);
        assert_eq!(ByteHops::ZERO.ratio(ByteHops::ZERO), 0.0);
        assert!((ByteHops(3).ratio(ByteHops(4)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Bytes::INFINITE + Bytes::new(1), Bytes::INFINITE);
        assert_eq!(Bytes::new(1) - Bytes::new(5), Bytes::ZERO);
        assert_eq!(Bytes::INFINITE * 2, Bytes::INFINITE);
    }

    #[test]
    fn sum_iterator() {
        let total: Bytes = (1..=4).map(Bytes::new).sum();
        assert_eq!(total, Bytes::new(10));
        let total: ByteHops = vec![ByteHops(1), ByteHops(2)].into_iter().sum();
        assert_eq!(total, ByteHops(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bytes::new(512).to_string(), "512B");
        assert_eq!(Bytes::from_kib(256).to_string(), "256KiB");
        assert_eq!(Bytes::from_mib(3).to_string(), "3MiB");
        assert_eq!(Bytes::INFINITE.to_string(), "∞B");
        assert_eq!(ByteHops(9).to_string(), "9B·hop");
    }
}
