//! Strongly-typed identifiers.
//!
//! The simulators juggle four distinct id spaces — documents, clients,
//! servers and topology nodes. Mixing them up is an easy, silent bug in a
//! trace-driven simulator (a `u32` is a `u32`), so each space gets its own
//! newtype. All ids are dense small integers so they can double as vector
//! indices in the hot paths of the simulators.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index, for use as a vector offset.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            /// Converts from a vector index.
            ///
            /// # Panics
            /// Panics if `raw` does not fit in a `u32`; id spaces in this
            /// workspace are always far below that bound.
            #[inline]
            fn from(raw: usize) -> Self {
                // `From` cannot return a Result; the documented panic
                // fires only past 4 billion entities, orders of
                // magnitude above any catalog in this repo.
                Self(u32::try_from(raw).expect("id overflows u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A document (any multimedia object, per the paper's footnote 1).
    DocId,
    "D"
);
define_id!(
    /// A client (browser / host issuing requests).
    ClientId,
    "C"
);
define_id!(
    /// A home server (producer of documents).
    ServerId,
    "S"
);
define_id!(
    /// A node in the network topology tree (client leaf, candidate proxy,
    /// or server attachment point).
    NodeId,
    "N"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_u32() {
        let d = DocId::new(42);
        assert_eq!(d.raw(), 42);
        assert_eq!(d.index(), 42);
        assert_eq!(DocId::from(42u32), d);
        assert_eq!(DocId::from(42usize), d);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(DocId::new(7).to_string(), "D7");
        assert_eq!(ClientId::new(7).to_string(), "C7");
        assert_eq!(ServerId::new(7).to_string(), "S7");
        assert_eq!(NodeId::new(7).to_string(), "N7");
        assert_eq!(format!("{:?}", DocId::new(9)), "D9");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(DocId::new(1) < DocId::new(2));
        let mut v = vec![DocId::new(3), DocId::new(1), DocId::new(2)];
        v.sort();
        assert_eq!(v, vec![DocId::new(1), DocId::new(2), DocId::new(3)]);
    }

    #[test]
    fn hashable() {
        let mut set = HashSet::new();
        set.insert(DocId::new(1));
        set.insert(DocId::new(1));
        set.insert(DocId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(DocId::default(), DocId::new(0));
    }

    #[test]
    #[should_panic(expected = "id overflows u32")]
    fn usize_overflow_panics() {
        let _ = DocId::from(u32::MAX as usize + 1);
    }
}
