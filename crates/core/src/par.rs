//! Deterministic scoped parallelism.
//!
//! Every hot path in the workspace is a pure function of its inputs plus
//! a [`SeedTree`](crate::rng::SeedTree) node, which makes *bit-identical
//! deterministic parallelism* possible: as long as each work item derives
//! its randomness from its **own** seed-tree child (never from a shared
//! sequential RNG), the result of mapping a function over a slice cannot
//! depend on how the items are scheduled across threads.
//!
//! [`Pool::map_indexed`] is the one primitive everything builds on. Its
//! contract:
//!
//! 1. **Order preservation** — output slot `i` holds `f(i, &items[i])`,
//!    regardless of worker count or scheduling.
//! 2. **Purity obligation (caller's side)** — `f` must not read mutable
//!    shared state or a shared RNG; per-item randomness comes from
//!    `SeedTree::child_idx`.
//! 3. **Serial equivalence** — with `jobs == 1` (or one item) the map
//!    runs inline on the caller's thread; parallel output is
//!    byte-identical to that serial output by (1) + (2).
//!
//! The pool is *scoped* (workers are joined before the call returns) and
//! *work-sharing* (an atomic cursor hands out the next item to whichever
//! worker is free, so uneven item costs still balance). There are no
//! external dependencies and no unsafe code: results land in per-slot
//! mutexes, which are uncontended by construction.
//!
//! The process-wide default worker count is resolved once from
//! `SPECWEB_JOBS` (if set) or `std::thread::available_parallelism`, and
//! can be pinned by binaries (e.g. `figures --jobs N`) via
//! [`set_default_jobs`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default jobs; 0 means "not yet resolved".
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Pins the process-wide default worker count (clamped to ≥ 1).
///
/// Call this once at binary startup (`figures --jobs N`); library code
/// that uses [`Pool::auto`] then follows the same setting, so `--jobs 1`
/// makes the whole process run serially.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs.max(1), Ordering::SeqCst);
}

/// The process-wide default worker count.
///
/// Resolution order: the value pinned by [`set_default_jobs`], else the
/// `SPECWEB_JOBS` environment variable, else
/// `std::thread::available_parallelism()`, else 1.
pub fn default_jobs() -> usize {
    let pinned = DEFAULT_JOBS.load(Ordering::SeqCst);
    if pinned != 0 {
        return pinned;
    }
    let resolved = std::env::var("SPECWEB_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // Cache the resolution so later calls (and later `Pool::auto`s) are
    // consistent even if the environment changes mid-run.
    DEFAULT_JOBS.store(resolved, Ordering::SeqCst);
    resolved
}

/// A scoped work-sharing thread pool of a fixed width.
///
/// `Pool` is a configuration value, not a set of live threads: workers
/// are spawned per call and joined before the call returns, so a `Pool`
/// can be kept in a `const`-like position or created ad hoc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool of `jobs` workers (clamped to ≥ 1; 1 means fully serial).
    pub fn new(jobs: usize) -> Pool {
        Pool { jobs: jobs.max(1) }
    }

    /// A pool sized by [`default_jobs`].
    pub fn auto() -> Pool {
        Pool::new(default_jobs())
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items`, preserving input order (see the module
    /// docs for the determinism contract).
    ///
    /// Runs inline on the caller's thread when the pool has one worker
    /// or there is at most one item. If `f` panics on any item, the
    /// panic is propagated to the caller after all workers have joined.
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        // Dispatch accounting is execution shape, not results: callers
        // may legitimately skip the pool entirely at one worker (the
        // simulators' shard gate does), so map/task totals vary with
        // `--jobs` and sit on the wall-clock channel with the rest of
        // the scheduling marks.
        let obs = crate::obs::global();
        obs.metrics
            .counter_on("par.maps_total", crate::obs::Channel::WallClock)
            .incr();
        obs.metrics
            .counter_on("par.tasks_total", crate::obs::Channel::WallClock)
            .add(n as u64);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        obs.metrics
            .counter_on("par.workers_spawned", crate::obs::Channel::WallClock)
            .add(workers as u64);
        let worker_high_water = obs.metrics.gauge_on(
            "par.worker_tasks_high_water",
            crate::obs::Channel::WallClock,
        );
        // Profiling frames opened by `f` must nest under the frame that
        // dispatched this map: snapshot the caller's span-tree context
        // (sink + open-frame stack) and adopt it on every worker. The
        // per-thread partials merge order-independently, so profiler
        // call counts stay jobs-invariant.
        let prof_ctx = crate::obs::profile::current_context();
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Mutex<Option<R>>> = Vec::with_capacity(n);
        slots.resize_with(n, || Mutex::new(None));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _prof = crate::obs::profile::adopt_context(prof_ctx.as_ref());
                    let mut processed: u64 = 0;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = f(i, &items[i]);
                        *slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
                        processed += 1;
                    }
                    worker_high_water.record(processed);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    // lint:allow(G3): the atomic cursor hands out every
                    // index below `n` exactly once and the scope joins
                    // all workers, so each slot was filled; a None here
                    // is a pool bug, not a caller error.
                    .expect("every index was visited exactly once")
            })
            .collect()
    }

    /// Fallible [`Pool::map_indexed`]: maps all items, then returns the
    /// first error in **input order** (not completion order), so error
    /// reporting is as deterministic as the results.
    pub fn try_map_indexed<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        self.map_indexed(items, f).into_iter().collect()
    }
}

/// Free-function form of [`Pool::map_indexed`].
pub fn par_map_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    Pool::new(jobs).map_indexed(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedTree;
    use proptest::prelude::*;
    use rand::Rng as _;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let out = par_map_indexed(jobs, &items, |i, &x| (i as u64) * 1000 + x);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, (i as u64) * 1000 + items[i], "jobs={jobs} slot {i}");
            }
        }
    }

    #[test]
    fn parallel_equals_serial_with_seed_tree_rngs() {
        // The canonical usage pattern: per-item RNG from an indexed
        // seed-tree child. Output must not depend on the worker count.
        let tree = SeedTree::new(1996);
        let items: Vec<u64> = (0..64).collect();
        let draw = |i: usize, &item: &u64| -> u64 {
            let mut rng = tree.child_idx("par-test", i as u64).rng();
            rng.gen::<u64>() ^ item
        };
        let serial = par_map_indexed(1, &items, draw);
        for jobs in [2, 4, 7] {
            assert_eq!(par_map_indexed(jobs, &items, draw), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_indexed(4, &[7u32], |i, &x| x + i as u32), vec![7]);
    }

    #[test]
    fn try_map_reports_first_error_in_input_order() {
        let items: Vec<u32> = (0..100).collect();
        let r: Result<Vec<u32>, u32> =
            Pool::new(8).try_map_indexed(&items, |_, &x| if x % 7 == 3 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(3), "must be the first failing input, not a race");
        let ok: Result<Vec<u32>, u32> = Pool::new(8).try_map_indexed(&items, |_, &x| Ok(x * 2));
        assert_eq!(ok.unwrap()[50], 100);
    }

    #[test]
    fn pool_clamps_to_one_worker() {
        assert_eq!(Pool::new(0).jobs(), 1);
        assert_eq!(Pool::new(5).jobs(), 5);
    }

    #[test]
    fn profiler_frames_cross_worker_threads_with_invariant_counts() {
        // Frames opened inside the mapped closure must nest under the
        // caller's open frame, and the per-path call counts must not
        // depend on the worker count — the profiler's deterministic-
        // channel contract.
        let items: Vec<u64> = (0..40).collect();
        let count_for = |jobs: usize| {
            let p = crate::obs::profile::Profiler::new();
            {
                let _g = p.install();
                let _dispatch = crate::obs::profile::frame("dispatch");
                let _ = par_map_indexed(jobs, &items, |_, &x| {
                    let _f = crate::obs::profile::frame("item");
                    x * 2
                });
            }
            p.snapshot()
        };
        let serial = count_for(1);
        assert_eq!(serial["dispatch;item"].calls, 40);
        assert_eq!(serial["dispatch"].calls, 1);
        for jobs in [2, 4, 8] {
            let snap = count_for(jobs);
            assert_eq!(
                snap["dispatch;item"].calls, 40,
                "jobs={jobs} changed the call count"
            );
            assert_eq!(
                snap.keys().collect::<Vec<_>>(),
                serial.keys().collect::<Vec<_>>(),
                "jobs={jobs} changed the path set"
            );
        }
    }

    #[test]
    fn uneven_item_costs_still_land_in_order() {
        // Early items are the slowest, so late items finish first; the
        // output order must be unaffected.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map_indexed(8, &items, |i, &x| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn par_map_equals_serial_map(
            xs in prop::collection::vec(-1_000_000i64..1_000_000, 0..128),
            jobs in 1usize..9,
        ) {
            let f = |i: usize, &x: &i64| x.wrapping_mul(31).wrapping_add(i as i64);
            let serial: Vec<i64> = xs.iter().enumerate().map(|(i, x)| f(i, x)).collect();
            prop_assert_eq!(par_map_indexed(jobs, &xs, f), serial);
        }
    }
}
