//! Run manifests: one JSON document per experiment capturing what ran,
//! with what inputs, and what the metrics registry saw.
//!
//! A manifest is split into two top-level sections mirroring the
//! registry channels:
//!
//! * `deterministic` — seed-tree root, scale, and the deterministic
//!   metric snapshot. Byte-identical across `--jobs` settings; the
//!   golden determinism test compares exactly this section.
//! * `nondeterministic` — worker count, git-describe, wall-clock
//!   timing breakdown, and wall-clock metrics. Never golden-compared.
//!
//! The `figures` binary writes `results/manifest_<exp>.json` for every
//! experiment plus `manifest_run.json` for process-wide metrics, and
//! `figures --report` renders them back through [`render_report`].

use std::collections::BTreeMap;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use super::registry::{MetricSnapshot, MetricValue};

/// The deterministic half of a manifest (golden-compared bytes).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeterministicSection {
    /// Master seed — the root of the run's `SeedTree`.
    pub seed_root: u64,
    /// `full` or `quick`.
    pub scale: String,
    /// Deterministic-channel metrics.
    pub metrics: BTreeMap<String, MetricValue>,
    /// Digests of deterministic artifacts the run produced (name →
    /// hex digest) — e.g. the session digest of a serve replay. Golden
    /// comparisons of this section therefore also pin the artifacts.
    pub artifacts: BTreeMap<String, String>,
}

/// One phase's wall-clock share in the timing breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Phase name (`total`, `sweep`, `write`…).
    pub phase: String,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// The wall-clock half of a manifest (excluded from golden compares).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NondeterministicSection {
    /// Worker count the run used.
    pub jobs: usize,
    /// `git describe --always --dirty` at run time (or `unknown`).
    pub git: String,
    /// Wall-clock timing breakdown.
    pub timing: Vec<PhaseTiming>,
    /// Wall-clock-channel metrics.
    pub metrics: BTreeMap<String, MetricValue>,
    /// Deterministic-ring events the tracer discarded at capacity.
    /// Non-zero means the event log is *incomplete* — the metrics above
    /// are unaffected, but `to_jsonl` exports silently miss the oldest
    /// events (`scripts/check_manifests.py` warns on this).
    pub dropped_events: u64,
    /// Wall-clock-ring events the tracer discarded at capacity.
    pub dropped_wall_events: u64,
}

/// A complete run manifest for one experiment (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Experiment id (`fig4`, `exp-closure`, or `run` for the
    /// process-wide manifest).
    pub id: String,
    /// Golden-compared section.
    pub deterministic: DeterministicSection,
    /// Wall-clock section.
    pub nondeterministic: NondeterministicSection,
}

impl RunManifest {
    /// Builds a manifest from a registry snapshot, routing each channel
    /// into its section.
    pub fn new(id: &str, seed_root: u64, scale: &str, snapshot: MetricSnapshot) -> RunManifest {
        RunManifest {
            id: id.to_string(),
            deterministic: DeterministicSection {
                seed_root,
                scale: scale.to_string(),
                metrics: snapshot.deterministic,
                artifacts: BTreeMap::new(),
            },
            nondeterministic: NondeterministicSection {
                jobs: 0,
                git: String::from("unknown"),
                timing: Vec::new(),
                metrics: snapshot.wallclock,
                dropped_events: 0,
                dropped_wall_events: 0,
            },
        }
    }

    /// Fills the wall-clock envelope (builder-style).
    pub fn with_run_info(mut self, jobs: usize, git: &str) -> RunManifest {
        self.nondeterministic.jobs = jobs;
        self.nondeterministic.git = git.to_string();
        self
    }

    /// Records a deterministic artifact digest (builder-style). The
    /// digest joins the golden-compared section: two runs that agree on
    /// metrics but disagree on an artifact still diff.
    pub fn with_artifact(mut self, name: &str, digest: &str) -> RunManifest {
        self.deterministic
            .artifacts
            .insert(name.to_string(), digest.to_string());
        self
    }

    /// Records how many ring-buffered events the run's tracer dropped
    /// (builder-style; pass [`super::Tracer::dropped`]'s pair). Dropped
    /// events mean the exported trace is truncated — surfaced in the
    /// manifest so instrumentation gaps can't pass silently.
    pub fn with_dropped_events(mut self, dropped: (u64, u64)) -> RunManifest {
        self.nondeterministic.dropped_events = dropped.0;
        self.nondeterministic.dropped_wall_events = dropped.1;
        self
    }

    /// Appends one phase to the timing breakdown (builder-style).
    pub fn with_timing(mut self, phase: &str, seconds: f64) -> RunManifest {
        self.nondeterministic.timing.push(PhaseTiming {
            phase: phase.to_string(),
            seconds,
        });
        self
    }

    /// The conventional file name, `manifest_<id>.json`.
    pub fn file_name(&self) -> String {
        format!("manifest_{}.json", self.id)
    }
}

/// `git describe --always --dirty` for the working directory, or
/// `"unknown"` outside a git checkout (or with git unavailable).
/// Wall-clock-section data only — never golden-compared (two checkouts
/// of the same tree may differ).
///
/// The subprocess runs **once per process** and is cached: `figures`
/// writes a manifest per experiment, and shelling out per manifest was
/// measurable fork/exec overhead for a value that cannot change
/// mid-run.
pub fn git_describe() -> String {
    static DESCRIBE: OnceLock<String> = OnceLock::new();
    DESCRIBE
        .get_or_init(|| {
            std::process::Command::new("git")
                .args(["describe", "--always", "--dirty"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .and_then(|o| String::from_utf8(o.stdout).ok())
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| String::from("unknown"))
        })
        .clone()
}

/// The subsystem prefix of a metric name (`spec.pushes` → `spec`).
fn subsystem_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

fn fmt_value(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter { value } => value.to_string(),
        MetricValue::Gauge { value } => format!("{value} (high-water)"),
        MetricValue::Histogram {
            bins,
            underflow,
            overflow,
            ..
        } => {
            let total: u64 = bins.iter().sum();
            format!(
                "histogram: {total} obs in {} bins (underflow {underflow}, overflow {overflow})",
                bins.len()
            )
        }
    }
}

/// Renders a human-readable summary of a set of manifests: one block
/// per experiment (metrics grouped by subsystem, wall-clock timing),
/// then a cross-experiment per-subsystem aggregate of the
/// deterministic counters. This is what `figures --report` prints.
pub fn render_report(manifests: &[RunManifest]) -> String {
    let mut out = String::new();
    let mut totals: BTreeMap<String, MetricValue> = BTreeMap::new();

    for m in manifests {
        out.push_str(&format!(
            "== {} (seed {}, scale {}, jobs {}, git {})\n",
            m.id,
            m.deterministic.seed_root,
            m.deterministic.scale,
            m.nondeterministic.jobs,
            m.nondeterministic.git
        ));
        let mut last_subsystem = "";
        for (name, value) in &m.deterministic.metrics {
            let sub = subsystem_of(name);
            if sub != last_subsystem {
                out.push_str(&format!("  [{sub}]\n"));
                last_subsystem = sub;
            }
            out.push_str(&format!("    {name:<40} {}\n", fmt_value(value)));
            match totals.get_mut(name) {
                Some(existing) => existing.merge(value),
                None => {
                    totals.insert(name.clone(), value.clone());
                }
            }
        }
        for (name, value) in &m.nondeterministic.metrics {
            out.push_str(&format!(
                "    {name:<40} {}  (wall-clock)\n",
                fmt_value(value)
            ));
        }
        for t in &m.nondeterministic.timing {
            out.push_str(&format!("    time.{:<35} {:.2}s\n", t.phase, t.seconds));
        }
    }

    if !totals.is_empty() {
        out.push_str("== totals across experiments (deterministic channel)\n");
        let mut last_subsystem = "";
        for (name, value) in &totals {
            let sub = subsystem_of(name);
            if sub != last_subsystem {
                out.push_str(&format!("  [{sub}]\n"));
                last_subsystem = sub;
            }
            out.push_str(&format!("    {name:<40} {}\n", fmt_value(value)));
        }
    }
    out
}

/// Renders the manifests as a markdown report (`results/REPORT.md`).
///
/// Deliberately restricted to the **deterministic** sections: no jobs,
/// git describe, timing, or wall-clock metrics. The file is regenerated
/// by every `figures` run, so anything nondeterministic in it would
/// make `REPORT.md` churn across `--jobs` settings and break the CI
/// serial-vs-parallel `diff -r` gate the same way a nondeterministic
/// figure would.
pub fn render_report_markdown(manifests: &[RunManifest]) -> String {
    let mut out = String::new();
    let mut totals: BTreeMap<String, MetricValue> = BTreeMap::new();

    out.push_str("# specweb run report\n\n");
    out.push_str(
        "Deterministic metrics per experiment, rendered from the\n\
         `manifest_*.json` files. Regenerated by every `figures` run\n\
         (and by `figures --report` without re-running anything);\n\
         wall-clock data lives in the manifests' `nondeterministic`\n\
         sections and `bench_timings.json`, never here.\n",
    );

    for m in manifests {
        out.push_str(&format!(
            "\n## {} (seed {}, scale {})\n",
            m.id, m.deterministic.seed_root, m.deterministic.scale
        ));
        if m.deterministic.metrics.is_empty() {
            out.push_str("\n(no deterministic metrics recorded)\n");
            continue;
        }
        let mut last_subsystem = "";
        for (name, value) in &m.deterministic.metrics {
            let sub = subsystem_of(name);
            if sub != last_subsystem {
                out.push_str(&format!("\n### {sub}\n\n| metric | value |\n|---|---|\n"));
                last_subsystem = sub;
            }
            out.push_str(&format!("| `{name}` | {} |\n", fmt_value(value)));
            match totals.get_mut(name) {
                Some(existing) => existing.merge(value),
                None => {
                    totals.insert(name.clone(), value.clone());
                }
            }
        }
    }

    if !totals.is_empty() {
        out.push_str("\n## totals across experiments\n\n| metric | value |\n|---|---|\n");
        for (name, value) in &totals {
            out.push_str(&format!("| `{name}` | {} |\n", fmt_value(value)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::registry::Registry;
    use super::*;

    fn sample_manifest(id: &str) -> RunManifest {
        let reg = Registry::new();
        reg.counter("spec.pushes").add(10);
        reg.counter("dissem.proxy_hits").add(4);
        reg.counter_on(
            "par.workers_spawned",
            super::super::registry::Channel::WallClock,
        )
        .add(3);
        RunManifest::new(id, 1996, "quick", reg.snapshot())
            .with_run_info(4, "abc1234")
            .with_timing("total", 1.5)
            .with_artifact("session", "00000000deadbeef")
            .with_dropped_events((7, 2))
    }

    #[test]
    fn manifest_routes_channels_into_sections() {
        let m = sample_manifest("fig4");
        assert_eq!(m.deterministic.metrics.len(), 2);
        assert!(m.deterministic.metrics.contains_key("spec.pushes"));
        assert_eq!(m.nondeterministic.metrics.len(), 1);
        assert_eq!(m.nondeterministic.jobs, 4);
        assert_eq!(m.file_name(), "manifest_fig4.json");
        assert_eq!(
            m.deterministic.artifacts["session"], "00000000deadbeef",
            "artifact digests live in the golden-compared section"
        );
        assert_eq!(
            (
                m.nondeterministic.dropped_events,
                m.nondeterministic.dropped_wall_events
            ),
            (7, 2),
            "dropped-event tallies live in the wall-clock section"
        );
    }

    #[test]
    fn git_describe_is_cached_and_never_empty() {
        let a = git_describe();
        let b = git_describe();
        assert_eq!(a, b, "per-process cache must be stable");
        assert!(!a.is_empty(), "outside git the fallback is `unknown`");
    }

    #[test]
    fn manifest_value_roundtrip() {
        use serde::{Deserialize as _, Serialize as _};
        let m = sample_manifest("exp-closure");
        let back = RunManifest::from_value(&m.to_value()).expect("roundtrip");
        assert_eq!(back, m);
    }

    #[test]
    fn markdown_report_is_deterministic_only() {
        let md = render_report_markdown(&[sample_manifest("fig4"), sample_manifest("tab1")]);
        assert!(md.starts_with("# specweb run report"));
        assert!(md.contains("## fig4 (seed 1996, scale quick)"));
        assert!(md.contains("### spec"));
        assert!(md.contains("| `spec.pushes` | 10 |"));
        assert!(md.contains("## totals across experiments"));
        assert!(md.contains("| `spec.pushes` | 20 |"));
        // Nothing from the nondeterministic section may leak in: no
        // jobs/git line, no timing, no wall-clock metrics.
        assert!(!md.contains("jobs"), "{md}");
        assert!(!md.contains("abc1234"), "{md}");
        assert!(!md.contains("time."), "{md}");
        assert!(!md.contains("par.workers_spawned"), "{md}");
    }

    #[test]
    fn report_groups_by_subsystem_and_totals() {
        let report = render_report(&[sample_manifest("fig4"), sample_manifest("tab1")]);
        assert!(report.contains("== fig4 (seed 1996, scale quick, jobs 4"));
        assert!(report.contains("[spec]"));
        assert!(report.contains("[dissem]"));
        assert!(report.contains("totals across experiments"));
        // 10 pushes in each of the two manifests.
        let totals_at = report.find("totals").unwrap();
        assert!(report[totals_at..].contains("20"));
        assert!(report.contains("(wall-clock)"));
        assert!(report.contains("time.total"));
    }
}
