//! Metrics registry: named counters, gauges, and histograms behind
//! cheap cloneable handles.
//!
//! Every metric is registered on one of two **channels**:
//!
//! * [`Channel::Deterministic`] — values are a pure function of the
//!   inputs and the seed tree. Snapshots of this channel must be
//!   byte-identical across `--jobs` settings; the golden determinism
//!   test enforces it.
//! * [`Channel::WallClock`] — values depend on real time or thread
//!   scheduling (worker high-water marks, server socket accounting).
//!   These live in the explicitly non-deterministic section of run
//!   manifests, mirroring the `bench_timings.json` carve-out.
//!
//! Handles are `Arc`-backed: counters and gauges are lock-free atomics,
//! histograms take a short mutex on observe. Registering the same name
//! twice returns a handle to the same underlying metric, so call sites
//! can re-register cheaply instead of threading handles around.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::stats::Histogram;

/// Which determinism contract a metric lives under (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Channel {
    /// Pure function of inputs + seed tree; byte-identical across
    /// worker counts.
    Deterministic,
    /// Depends on real time or scheduling; excluded from golden
    /// comparisons.
    WallClock,
}

/// A monotonically increasing counter. Merge rule: sum.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-water-mark gauge. `record` keeps the maximum ever seen, which
/// makes the merge rule (max) associative and commutative — the same
/// property that lets counters sum across workers.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Raises the gauge to `v` if `v` is a new high-water mark.
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current high-water mark.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A [`Histogram`] behind a mutex-guarded handle.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one observation.
    pub fn observe(&self, x: f64) {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(x);
    }

    /// Records `n` identical observations.
    pub fn observe_n(&self, x: f64, n: u64) {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_n(x, n);
    }

    /// Runs `f` against the underlying histogram (e.g. to render it).
    pub fn with<R>(&self, f: impl FnOnce(&Histogram) -> R) -> R {
        f(&self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

/// One metric's value in a [`MetricSnapshot`].
///
/// Struct variants only: the vendored serde derive supports unit and
/// struct enum variants (externally tagged, like upstream serde).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A counter's running total.
    Counter {
        /// The summed value.
        value: u64,
    },
    /// A gauge's high-water mark.
    Gauge {
        /// The maximum recorded value.
        value: u64,
    },
    /// A histogram's bins and diagnostics.
    Histogram {
        /// Inclusive lower edge of the counted range.
        lo: f64,
        /// Exclusive upper edge of the counted range.
        hi: f64,
        /// Per-bin counts.
        bins: Vec<u64>,
        /// Observations below `lo`.
        underflow: u64,
        /// Observations at or above `hi` (and NaN).
        overflow: u64,
    },
}

impl MetricValue {
    /// Merges `other` into `self` under the per-kind rule: counters
    /// sum, gauges max, histograms add element-wise. Both rules are
    /// associative and commutative, so merges can happen in any
    /// grouping or order — a property the obs proptest pins down.
    ///
    /// # Panics
    /// If the two values are of different kinds or the histograms have
    /// different shapes. A metric name maps to exactly one type and
    /// shape for the life of a run; violating that is a programming
    /// error, not data.
    pub fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter { value: a }, MetricValue::Counter { value: b }) => *a += b,
            (MetricValue::Gauge { value: a }, MetricValue::Gauge { value: b }) => *a = (*a).max(*b),
            (
                MetricValue::Histogram {
                    lo: alo,
                    hi: ahi,
                    bins: abins,
                    underflow: au,
                    overflow: ao,
                },
                MetricValue::Histogram {
                    lo: blo,
                    hi: bhi,
                    bins: bbins,
                    underflow: bu,
                    overflow: bo,
                },
            ) => {
                assert!(
                    alo == blo && ahi == bhi && abins.len() == bbins.len(),
                    "histogram shape mismatch in merge"
                );
                for (a, b) in abins.iter_mut().zip(bbins) {
                    *a += b;
                }
                *au += bu;
                *ao += bo;
            }
            (a, b) => panic!("metric kind mismatch in merge: {a:?} vs {b:?}"),
        }
    }
}

/// A point-in-time copy of a registry, split by channel.
///
/// Both maps are `BTreeMap`s, so serialization order — and therefore
/// the bytes of a written manifest — depends only on metric names and
/// values, never on registration order or thread interleaving.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Metrics on [`Channel::Deterministic`].
    pub deterministic: BTreeMap<String, MetricValue>,
    /// Metrics on [`Channel::WallClock`].
    pub wallclock: BTreeMap<String, MetricValue>,
}

impl MetricSnapshot {
    /// True when neither channel holds any metric.
    pub fn is_empty(&self) -> bool {
        self.deterministic.is_empty() && self.wallclock.is_empty()
    }

    /// Merges `other` into `self` metric-by-metric (see
    /// [`MetricValue::merge`] for the per-kind rules and panics).
    pub fn merge(&mut self, other: &MetricSnapshot) {
        merge_map(&mut self.deterministic, &other.deterministic);
        merge_map(&mut self.wallclock, &other.wallclock);
    }
}

fn merge_map(into: &mut BTreeMap<String, MetricValue>, from: &BTreeMap<String, MetricValue>) {
    for (name, value) in from {
        match into.get_mut(name) {
            Some(existing) => existing.merge(value),
            None => {
                into.insert(name.clone(), value.clone());
            }
        }
    }
}

/// A name → (channel, shared metric) table; each metric kind keeps one.
type MetricMap<M> = Mutex<BTreeMap<String, (Channel, Arc<M>)>>;

#[derive(Debug, Default)]
struct RegistryInner {
    counters: MetricMap<AtomicU64>,
    gauges: MetricMap<AtomicU64>,
    histograms: MetricMap<Mutex<Histogram>>,
}

/// A cloneable registry of named metrics (see module docs).
///
/// Clones share the same underlying metrics, so a registry can be
/// handed to several subsystems and snapshotted once at the end.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or re-fetches) a counter on the given channel.
    ///
    /// The channel of the *first* registration wins; later calls with a
    /// different channel get the existing metric unchanged.
    pub fn counter_on(&self, name: &str, channel: Channel) -> Counter {
        let mut map = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (_, cell) = map
            .entry(name.to_string())
            .or_insert_with(|| (channel, Arc::new(AtomicU64::new(0))));
        Counter(Arc::clone(cell))
    }

    /// Registers (or re-fetches) a deterministic-channel counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_on(name, Channel::Deterministic)
    }

    /// Registers (or re-fetches) a gauge on the given channel.
    pub fn gauge_on(&self, name: &str, channel: Channel) -> Gauge {
        let mut map = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (_, cell) = map
            .entry(name.to_string())
            .or_insert_with(|| (channel, Arc::new(AtomicU64::new(0))));
        Gauge(Arc::clone(cell))
    }

    /// Registers (or re-fetches) a deterministic-channel gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_on(name, Channel::Deterministic)
    }

    /// Registers (or re-fetches) a histogram over `[lo, hi)` with
    /// `nbins` bins on the given channel. The shape of the first
    /// registration wins.
    pub fn histogram_on(
        &self,
        name: &str,
        channel: Channel,
        lo: f64,
        hi: f64,
        nbins: usize,
    ) -> HistogramHandle {
        let mut map = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (_, cell) = map
            .entry(name.to_string())
            .or_insert_with(|| (channel, Arc::new(Mutex::new(Histogram::new(lo, hi, nbins)))));
        HistogramHandle(Arc::clone(cell))
    }

    /// Registers (or re-fetches) a deterministic-channel histogram.
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, nbins: usize) -> HistogramHandle {
        self.histogram_on(name, Channel::Deterministic, lo, hi, nbins)
    }

    /// Copies every metric into a [`MetricSnapshot`], split by channel.
    pub fn snapshot(&self) -> MetricSnapshot {
        let mut snap = MetricSnapshot::default();
        for (name, (channel, cell)) in self
            .inner
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let value = MetricValue::Counter {
                value: cell.load(Ordering::Relaxed),
            };
            snap.channel_map(*channel).insert(name.clone(), value);
        }
        for (name, (channel, cell)) in self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let value = MetricValue::Gauge {
                value: cell.load(Ordering::Relaxed),
            };
            snap.channel_map(*channel).insert(name.clone(), value);
        }
        for (name, (channel, cell)) in self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let h = cell
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (lo, hi) = h.range();
            let value = MetricValue::Histogram {
                lo,
                hi,
                bins: h.bins().to_vec(),
                underflow: h.underflow(),
                overflow: h.overflow(),
            };
            snap.channel_map(*channel).insert(name.clone(), value);
        }
        snap
    }
}

impl MetricSnapshot {
    fn channel_map(&mut self, channel: Channel) -> &mut BTreeMap<String, MetricValue> {
        match channel {
            Channel::Deterministic => &mut self.deterministic,
            Channel::WallClock => &mut self.wallclock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_registrations() {
        let reg = Registry::new();
        reg.counter("spec.pushes").add(3);
        reg.counter("spec.pushes").add(4);
        assert_eq!(reg.counter("spec.pushes").get(), 7);
    }

    #[test]
    fn gauge_keeps_high_water_mark() {
        let reg = Registry::new();
        let g = reg.gauge_on("par.queue_high_water", Channel::WallClock);
        g.record(5);
        g.record(3);
        g.record(9);
        g.record(1);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn snapshot_splits_channels_and_sorts_names() {
        let reg = Registry::new();
        reg.counter("b.det").add(1);
        reg.counter("a.det").add(2);
        reg.counter_on("z.wall", Channel::WallClock).add(3);
        let snap = reg.snapshot();
        let det: Vec<&String> = snap.deterministic.keys().collect();
        assert_eq!(det, ["a.det", "b.det"]);
        assert_eq!(snap.wallclock.len(), 1);
        assert_eq!(snap.wallclock["z.wall"], MetricValue::Counter { value: 3 });
    }

    #[test]
    fn histogram_snapshot_preserves_shape() {
        let reg = Registry::new();
        let h = reg.histogram("spec.prob", 0.0, 1.0, 4);
        h.observe(0.1);
        h.observe(0.6);
        h.observe_n(2.0, 3); // overflow
        let snap = reg.snapshot();
        match &snap.deterministic["spec.prob"] {
            MetricValue::Histogram {
                lo,
                hi,
                bins,
                underflow,
                overflow,
            } => {
                assert_eq!(*lo, 0.0);
                assert_eq!(*hi, 1.0);
                // Clamped observations land in the edge bin (counting
                // invariant) and are *also* tallied as overflow.
                assert_eq!(bins, &vec![1, 0, 1, 3]);
                assert_eq!(*underflow, 0);
                assert_eq!(*overflow, 3);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_merge_follows_per_kind_rules() {
        let reg_a = Registry::new();
        reg_a.counter("c").add(2);
        reg_a.gauge("g").record(5);
        let reg_b = Registry::new();
        reg_b.counter("c").add(3);
        reg_b.gauge("g").record(4);
        reg_b.counter("only_b").add(1);
        let mut snap = reg_a.snapshot();
        snap.merge(&reg_b.snapshot());
        assert_eq!(snap.deterministic["c"], MetricValue::Counter { value: 5 });
        assert_eq!(snap.deterministic["g"], MetricValue::Gauge { value: 5 });
        assert_eq!(
            snap.deterministic["only_b"],
            MetricValue::Counter { value: 1 }
        );
    }
}
