//! Leveled diagnostic logging, gated by the `SPECWEB_LOG` environment
//! variable.
//!
//! This replaces the ad-hoc `eprintln!` call sites that used to be
//! scattered through the binaries: every diagnostic goes through
//! [`crate::log!`], which checks the active level before formatting.
//! Resolution order for the active level:
//!
//! 1. `SPECWEB_LOG` (`off`, `error`, `warn`, `info`, `debug`, `trace`,
//!    or a digit `0`–`5`), read once and cached;
//! 2. the process default set via [`set_default_level`] (binaries that
//!    want progress output, like `figures`, raise it to `Info`);
//! 3. [`Level::Warn`] — which keeps tests and library consumers quiet
//!    by default.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Severity levels, ordered so that a higher number is chattier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Logging disabled.
    Off = 0,
    /// Unrecoverable problems (always the last thing printed).
    Error = 1,
    /// Suspicious-but-recoverable conditions. The default.
    Warn = 2,
    /// Progress reporting for interactive binaries.
    Info = 3,
    /// Per-step diagnostics.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }

    /// Parses a `SPECWEB_LOG` value; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" | "1" => Some(Level::Error),
            "warn" | "warning" | "2" => Some(Level::Warn),
            "info" | "3" => Some(Level::Info),
            "debug" | "4" => Some(Level::Debug),
            "trace" | "5" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// Sentinel meaning "not resolved yet".
const UNSET: u8 = u8::MAX;

/// Level forced by `SPECWEB_LOG`, resolved once; `UNSET` until then,
/// `UNSET - 1` when the variable is absent or unparseable.
static ENV_LEVEL: AtomicU8 = AtomicU8::new(UNSET);
const ENV_ABSENT: u8 = UNSET - 1;

/// Process default used when `SPECWEB_LOG` is absent.
static DEFAULT_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the process default level (overridden by `SPECWEB_LOG`).
pub fn set_default_level(level: Level) {
    DEFAULT_LEVEL.store(level as u8, Ordering::SeqCst);
}

/// The currently active level.
pub fn level() -> Level {
    let env = ENV_LEVEL.load(Ordering::SeqCst);
    let env = if env == UNSET {
        let resolved = std::env::var("SPECWEB_LOG")
            .ok()
            .and_then(|s| Level::parse(&s))
            .map(|l| l as u8)
            .unwrap_or(ENV_ABSENT);
        ENV_LEVEL.store(resolved, Ordering::SeqCst);
        resolved
    } else {
        env
    };
    if env == ENV_ABSENT {
        Level::from_u8(DEFAULT_LEVEL.load(Ordering::SeqCst))
    } else {
        Level::from_u8(env)
    }
}

/// True when a message at `at` would currently be printed.
pub fn enabled(at: Level) -> bool {
    at != Level::Off && at <= level()
}

/// Prints one diagnostic line to stderr as `[target] message`.
///
/// Call through [`crate::log!`] rather than directly: the macro checks
/// [`enabled`] first, so disabled messages are never even formatted.
pub fn emit(at: Level, target: &str, args: fmt::Arguments<'_>) {
    if enabled(at) {
        eprintln!("[{target}] {args}");
    }
}

/// Leveled diagnostic logging to stderr, gated by `SPECWEB_LOG`.
///
/// ```
/// specweb_core::log!(Info, "figures", "fig4 done in {:.1}s", 1.25);
/// ```
///
/// The first argument is a [`Level`](crate::obs::logging::Level)
/// variant name; the second the `[target]` prefix; the rest feed
/// `format_args!`. Nothing is formatted when the level is disabled.
#[macro_export]
macro_rules! log {
    ($level:ident, $target:expr, $($arg:tt)*) => {{
        let lvl = $crate::obs::logging::Level::$level;
        if $crate::obs::logging::enabled(lvl) {
            $crate::obs::logging::emit(lvl, $target, format_args!($($arg)*));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_names_and_digits() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse(" trace "), Some(Level::Trace));
        assert_eq!(Level::parse("3"), Some(Level::Info));
        assert_eq!(Level::parse("0"), Some(Level::Off));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn levels_order_by_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn default_is_quiet_below_warn() {
        // The test environment does not set SPECWEB_LOG (and the CI
        // smoke jobs run without it), so the default applies: Warn and
        // Error are on, Info and below are off.
        if std::env::var("SPECWEB_LOG").is_err() {
            assert!(enabled(Level::Error));
            assert!(enabled(Level::Warn));
            assert!(!enabled(Level::Trace));
            assert!(!enabled(Level::Off), "Off is never 'enabled'");
        }
    }
}
