//! Observability: metrics registry, structured event tracing, leveled
//! logging, and run manifests for the whole workspace.
//!
//! Everything here obeys one contract, inherited from the deterministic
//! parallelism layer ([`crate::par`]): observable state is split into a
//! **deterministic channel** (a pure function of inputs + seed tree,
//! byte-identical across `--jobs` settings and golden-tested) and a
//! **wall-clock channel** (real time, thread scheduling, socket
//! accounting — explicitly non-deterministic, mirroring the
//! `bench_timings.json` carve-out). See `DESIGN.md` §7.
//!
//! The pieces:
//!
//! * [`registry`] — named counters / gauges / histograms behind cheap
//!   handles, snapshot into sorted [`MetricSnapshot`]s;
//! * [`events`] — ring-buffered [`Tracer`] with sim-time stamps,
//!   wall-clock spans, and JSONL export;
//! * [`logging`] — the [`crate::log!`] macro, gated by `SPECWEB_LOG`;
//! * [`manifest`] — [`RunManifest`] documents written per experiment
//!   and the `figures --report` renderer;
//! * [`profile`] — hierarchical span-tree profiler whose frame stacks
//!   follow work across [`crate::par`] workers, exported as
//!   collapsed-stack (flamegraph) text per experiment.
//!
//! Subsystems take an [`Obs`] bundle (registry + tracer). Experiments
//! create one per run so concurrently running experiments never
//! interleave counts; truly process-wide series (the worker pool, the
//! TCP server) use [`global`].

pub mod events;
pub mod logging;
pub mod manifest;
pub mod profile;
pub mod registry;

use std::sync::OnceLock;

pub use events::{Event, Span, Tracer};
pub use logging::{set_default_level, Level};
pub use manifest::{
    git_describe, render_report, render_report_markdown, DeterministicSection,
    NondeterministicSection, PhaseTiming, RunManifest,
};
pub use profile::{frame, FrameStat, Profiler};
pub use registry::{
    Channel, Counter, Gauge, HistogramHandle, MetricSnapshot, MetricValue, Registry,
};

/// A registry + tracer pair, the unit of instrumentation wiring.
///
/// Cloning shares the underlying state, so an `Obs` can be handed to a
/// simulator, a fault plan, and an allocator and snapshotted once.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Named metrics.
    pub metrics: Registry,
    /// Event rings.
    pub events: Tracer,
}

impl Obs {
    /// A fresh, empty bundle with default tracer capacity.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Snapshots the registry (both channels).
    pub fn snapshot(&self) -> MetricSnapshot {
        self.metrics.snapshot()
    }
}

/// The process-wide bundle, for subsystems that outlive any single
/// experiment: the worker pool, the TCP server, the allocator's
/// iteration counter. Deterministic-channel metrics recorded here are
/// still jobs-invariant because every site records the same totals
/// regardless of scheduling; per-experiment accounting should use a
/// local [`Obs`] instead.
pub fn global() -> &'static Obs {
    static GLOBAL: OnceLock<Obs> = OnceLock::new();
    GLOBAL.get_or_init(Obs::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn global_is_shared() {
        global().metrics.counter("obs.test_counter").add(2);
        global().metrics.counter("obs.test_counter").incr();
        assert!(global().metrics.counter("obs.test_counter").get() >= 3);
    }

    /// Strategy for an arbitrary snapshot of counters and gauges over a
    /// small shared name pool (so merges actually collide).
    fn snapshot_strategy() -> impl Strategy<Value = MetricSnapshot> {
        const NAMES: [&str; 4] = ["a.x", "a.y", "b.x", "c.z"];
        let entry = (0usize..NAMES.len(), 0usize..2, 0u64..1_000_000);
        prop::collection::vec(entry, 0..8).prop_map(|entries| {
            let reg = Registry::new();
            for (name_idx, kind, v) in entries {
                // Suffix by kind so a name never changes type.
                let name = NAMES[name_idx];
                if kind == 0 {
                    reg.counter(&format!("{name}.count")).add(v);
                } else {
                    reg.gauge(&format!("{name}.gauge")).record(v);
                }
            }
            reg.snapshot()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Counter (and gauge) merge is commutative: a ∪ b == b ∪ a.
        #[test]
        fn snapshot_merge_is_commutative(
            a in snapshot_strategy(),
            b in snapshot_strategy(),
        ) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c). Together
        /// with commutativity this is what makes registry totals
        /// independent of worker scheduling.
        #[test]
        fn snapshot_merge_is_associative(
            a in snapshot_strategy(),
            b in snapshot_strategy(),
            c in snapshot_strategy(),
        ) {
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }
    }
}
