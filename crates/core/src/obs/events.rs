//! Structured event tracer: a ring buffer of timestamped events with
//! the same deterministic / wall-clock channel split as the registry.
//!
//! Deterministic events are stamped from **sim time**
//! ([`SimTime`](crate::time::SimTime)), so the event stream is a pure
//! function of the inputs and the seed tree: replaying an experiment
//! with any `--jobs` setting yields the same bytes. Wall-clock events
//! (and [`Span`]s, which time experiment phases) carry real elapsed
//! microseconds and live in a separate ring that is never part of a
//! golden comparison — the `bench_timings.json` carve-out generalized.
//!
//! The rings are bounded: when a channel overflows its capacity the
//! oldest events are dropped and the drop is counted, so tracing can be
//! left on in tight loops without unbounded memory growth.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Default ring capacity per channel.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Position in the channel's stream (monotonic, counts drops too).
    pub seq: u64,
    /// Timestamp: sim-time milliseconds on the deterministic channel,
    /// elapsed real microseconds since tracer creation on the
    /// wall-clock channel.
    pub t: u64,
    /// Owning subsystem (`serve`, `par`, `netsim`, `spec`, `dissem`…).
    pub subsystem: String,
    /// Event name (`shed`, `fault.link_down`, `phase.end`…).
    pub name: String,
    /// Free-form detail, already formatted.
    pub detail: String,
}

#[derive(Debug)]
struct Ring {
    cap: usize,
    events: VecDeque<Event>,
    seq: u64,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            cap: cap.max(1),
            events: VecDeque::new(),
            seq: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, t: u64, subsystem: &str, name: &str, detail: String) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            seq: self.seq,
            t,
            subsystem: subsystem.to_string(),
            name: name.to_string(),
            detail,
        });
        self.seq += 1;
    }
}

#[derive(Debug)]
struct TracerInner {
    det: Ring,
    wall: Ring,
}

/// A cloneable, ring-buffered event tracer (see module docs).
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
    epoch: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// A tracer holding up to `capacity` events **per channel**.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                det: Ring::new(capacity),
                wall: Ring::new(capacity),
            })),
            epoch: Instant::now(),
        }
    }

    /// Records a deterministic event stamped with sim time.
    pub fn event(&self, at: SimTime, subsystem: &str, name: &str, detail: impl Into<String>) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner
            .det
            .push(at.as_millis(), subsystem, name, detail.into());
    }

    /// Records a wall-clock event stamped with elapsed real
    /// microseconds since the tracer was created.
    pub fn wall_event(&self, subsystem: &str, name: &str, detail: impl Into<String>) {
        let t = self.epoch.elapsed().as_micros() as u64;
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.wall.push(t, subsystem, name, detail.into());
    }

    /// Opens a wall-clock span for an experiment phase. The span
    /// records a `<name>.begin` event now and a `<name>.end` event
    /// (with the elapsed microseconds) when dropped or [`Span::end`]ed.
    pub fn span(&self, subsystem: &str, name: &str) -> Span {
        self.wall_event(subsystem, &format!("{name}.begin"), String::new());
        Span {
            tracer: self.clone(),
            subsystem: subsystem.to_string(),
            name: name.to_string(),
            started: Instant::now(),
            done: false,
        }
    }

    /// A copy of the deterministic channel, oldest first.
    pub fn deterministic_events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .det
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// A copy of the wall-clock channel, oldest first.
    pub fn wallclock_events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .wall
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Events dropped to ring overflow: `(deterministic, wall-clock)`.
    pub fn dropped(&self) -> (u64, u64) {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (inner.det.dropped, inner.wall.dropped)
    }

    /// Renders one channel as JSON Lines (one event object per line).
    pub fn to_jsonl(&self, channel: super::registry::Channel) -> String {
        let events = match channel {
            super::registry::Channel::Deterministic => self.deterministic_events(),
            super::registry::Channel::WallClock => self.wallclock_events(),
        };
        let mut out = String::new();
        for e in &events {
            // `serde::Value`'s Display is compact JSON, so core needs no
            // serde_json dependency to export.
            out.push_str(&e.to_value().to_string());
            out.push('\n');
        }
        out
    }
}

/// A live wall-clock phase span (see [`Tracer::span`]).
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    subsystem: String,
    name: String,
    started: Instant,
    done: bool,
}

impl Span {
    /// Closes the span explicitly (otherwise `Drop` closes it).
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let us = self.started.elapsed().as_micros();
        self.tracer.wall_event(
            &self.subsystem,
            &format!("{}.end", self.name),
            format!("elapsed_us={us}"),
        );
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::super::registry::Channel;
    use super::*;

    #[test]
    fn deterministic_events_keep_sim_time_and_order() {
        let tr = Tracer::new(16);
        tr.event(SimTime::from_secs(1), "netsim", "fault.link_down", "node=3");
        tr.event(SimTime::from_secs(2), "netsim", "fault.crash", "node=1");
        let evs = tr.deterministic_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].t, 1000);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].name, "fault.crash");
        assert!(tr.wallclock_events().is_empty(), "channels are separate");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let tr = Tracer::new(2);
        for i in 0..5u64 {
            tr.event(SimTime(i), "x", "e", i.to_string());
        }
        let evs = tr.deterministic_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].detail, "3");
        assert_eq!(evs[1].seq, 4, "seq keeps counting across drops");
        assert_eq!(tr.dropped(), (3, 0));
    }

    #[test]
    fn span_records_begin_and_end() {
        let tr = Tracer::new(16);
        {
            let _s = tr.span("bench", "phase.sweep");
        }
        let evs = tr.wallclock_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "phase.sweep.begin");
        assert_eq!(evs[1].name, "phase.sweep.end");
        assert!(evs[1].detail.starts_with("elapsed_us="));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let tr = Tracer::new(16);
        tr.event(SimTime::ZERO, "spec", "push", "obj=1");
        tr.event(SimTime::from_millis(5), "spec", "push", "obj=2");
        let jsonl = tr.to_jsonl(Channel::Deterministic);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let v: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(v["t"], 5);
        assert_eq!(v["subsystem"], "spec");
    }
}
