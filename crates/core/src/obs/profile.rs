//! Hierarchical span-tree profiler with collapsed-stack export.
//!
//! A [`Profiler`] aggregates *frames* — named, nested regions of work —
//! into a map keyed by the **collapsed call path** (`"exp-size;spec.replay"`),
//! the format flamegraph tools consume. Two numbers are kept per path:
//!
//! * **calls** — how many frames closed on that path. Frames are placed
//!   at scheduling-invariant sites (one per experiment, one per
//!   simulation phase), so call counts are part of the deterministic
//!   channel: the same workload yields the same counts for any `--jobs`.
//! * **wall nanoseconds** — real elapsed time, the wall-clock channel.
//!   Profiles are diagnostics, never inputs: `profile_<exp>.txt` files
//!   are excluded from the CI byte-diff exactly like `bench_timings.json`.
//!
//! Frames follow the current *context*: a thread-local `(sink, stack)`
//! pair installed by [`Profiler::install`]. [`crate::par::Pool`]
//! snapshots the caller's context before spawning workers and adopts it
//! on each worker thread, so work fanned out by the pool nests under the
//! frame that dispatched it — the span tree crosses thread boundaries
//! without any global registry. Per-thread partials merge into the sink's
//! `BTreeMap` under a poison-recovering mutex; the merge is a
//! key-ordered, order-independent sum, hence deterministic.
//!
//! When no profiler is installed every [`frame`] is a no-op (one
//! thread-local borrow), so library code can be instrumented
//! unconditionally.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Separator between frame names in a collapsed path (the flamegraph
/// convention).
pub const PATH_SEPARATOR: char = ';';

/// Aggregated cost of one collapsed call path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStat {
    /// Frames closed on this path (deterministic channel).
    pub calls: u64,
    /// Total wall time spent in those frames, including children
    /// (wall-clock channel).
    pub wall_ns: u64,
}

/// A span-tree aggregate shared by every thread working under it.
#[derive(Debug, Default)]
pub struct Profiler {
    paths: Mutex<BTreeMap<String, FrameStat>>,
}

thread_local! {
    static CONTEXT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

/// The per-thread profiling context: where frames report, and the stack
/// of open frame names on this thread (seeded from the parent thread
/// when the pool propagates it).
#[derive(Debug, Clone)]
pub struct Context {
    sink: Arc<Profiler>,
    stack: Vec<String>,
}

impl Profiler {
    /// A fresh, empty profiler.
    pub fn new() -> Arc<Profiler> {
        Arc::new(Profiler::default())
    }

    /// Installs `self` as the current thread's profiling context (empty
    /// stack) until the guard drops; the previous context is restored.
    pub fn install(self: &Arc<Profiler>) -> ContextGuard {
        let prev = CONTEXT.with(|c| {
            c.borrow_mut().replace(Context {
                sink: Arc::clone(self),
                stack: Vec::new(),
            })
        });
        ContextGuard { prev }
    }

    fn record(&self, path: String, wall_ns: u64) {
        let mut map = self
            .paths
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let stat = map.entry(path).or_default();
        stat.calls += 1;
        stat.wall_ns += wall_ns;
    }

    /// The aggregated paths, key-sorted. Calls are deterministic for
    /// scheduling-invariant frame placement; wall times are not.
    pub fn snapshot(&self) -> BTreeMap<String, FrameStat> {
        self.paths
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Renders the aggregate as collapsed-stack text, one
    /// `path calls <n> wall_us <µs>` line per path, sorted by path —
    /// the `results/profile_<exp>.txt` format. Feeding the last column
    /// to a flamegraph renderer draws the span tree to scale.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, stat) in self.snapshot() {
            out.push_str(&format!(
                "{path} calls {} wall_us {}\n",
                stat.calls,
                stat.wall_ns / 1_000
            ));
        }
        out
    }
}

/// Restores the previous thread-local context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<Context>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// Snapshot of the current thread's context, for handing to a worker
/// thread (used by [`crate::par::Pool::map_indexed`]). `None` when no
/// profiler is installed — adopting `None` is a no-op.
pub fn current_context() -> Option<Context> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// Adopts a context snapshot on this thread (sink *and* open-frame
/// stack, so frames opened on this thread nest under the frame that
/// dispatched the work). Restores the previous context when the guard
/// drops.
pub fn adopt_context(ctx: Option<&Context>) -> ContextGuard {
    let prev = CONTEXT.with(|c| match ctx {
        Some(ctx) => c.borrow_mut().replace(ctx.clone()),
        None => c.borrow_mut().take(),
    });
    ContextGuard { prev }
}

/// Opens a frame named `name` under the current thread's context.
///
/// Returns a guard that closes the frame on drop, charging the elapsed
/// wall time to the collapsed path of every frame open on this thread.
/// No-op (and allocation-free) when no profiler is installed.
pub fn frame(name: &str) -> Frame {
    let opened = CONTEXT.with(|c| {
        let mut ctx = c.borrow_mut();
        match ctx.as_mut() {
            Some(ctx) => {
                ctx.stack.push(name.to_string());
                true
            }
            None => false,
        }
    });
    Frame {
        // Wall-clock profiling is the entire point of a frame — a
        // sanctioned read inside the `core::obs` wall channel. It feeds
        // only wall_ns and the rm'd-before-diff profile files, never a
        // deterministic output; call *counts* stay jobs-invariant by
        // frame placement.
        started: opened.then(Instant::now),
    }
}

/// An open profiling frame; closes (and reports) on drop.
#[derive(Debug)]
pub struct Frame {
    /// `None` when no profiler was installed at open time.
    started: Option<Instant>,
}

impl Drop for Frame {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        CONTEXT.with(|c| {
            let mut ctx = c.borrow_mut();
            let Some(ctx) = ctx.as_mut() else {
                // The context was replaced while the frame was open
                // (guard misuse); drop the measurement rather than
                // charging it to the wrong tree.
                return;
            };
            let path = ctx.stack.join(&PATH_SEPARATOR.to_string());
            ctx.stack.pop();
            if !path.is_empty() {
                ctx.sink.record(path, wall_ns);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_nest_into_collapsed_paths() {
        let p = Profiler::new();
        {
            let _g = p.install();
            let _outer = frame("outer");
            {
                let _inner = frame("inner");
            }
            {
                let _inner = frame("inner");
            }
        }
        let snap = p.snapshot();
        assert_eq!(snap["outer"].calls, 1);
        assert_eq!(snap["outer;inner"].calls, 2);
        let text = p.collapsed();
        assert!(text.contains("outer;inner calls 2 wall_us"), "{text}");
    }

    #[test]
    fn no_context_means_no_op() {
        // Must not panic or record anywhere.
        let _f = frame("orphan");
    }

    #[test]
    fn install_restores_previous_context() {
        let a = Profiler::new();
        let b = Profiler::new();
        let _ga = a.install();
        {
            let _gb = b.install();
            let _f = frame("in-b");
        }
        let _f = frame("in-a");
        drop(_f);
        assert!(b.snapshot().contains_key("in-b"));
        assert!(a.snapshot().contains_key("in-a"));
        assert!(!a.snapshot().contains_key("in-b"));
    }

    #[test]
    fn adopted_context_nests_under_parent_stack() {
        let p = Profiler::new();
        let ctx = {
            let _g = p.install();
            let _outer = frame("dispatch");
            let snap = current_context();
            // Simulate a worker thread adopting the snapshot.
            let handle = std::thread::spawn({
                let snap = snap.clone();
                move || {
                    let _adopt = adopt_context(snap.as_ref());
                    let _f = frame("work");
                }
            });
            handle.join().expect("worker");
            snap
        };
        assert!(ctx.is_some());
        let snap = p.snapshot();
        assert_eq!(snap["dispatch;work"].calls, 1);
        assert_eq!(snap["dispatch"].calls, 1);
    }

    #[test]
    fn call_counts_merge_deterministically_across_threads() {
        // N threads each close one "item" frame under the same parent:
        // the aggregate must show exactly N calls no matter how the
        // threads interleave.
        let p = Profiler::new();
        {
            let _g = p.install();
            let _outer = frame("fan-out");
            let ctx = current_context();
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let ctx = ctx.clone();
                    std::thread::spawn(move || {
                        let _adopt = adopt_context(ctx.as_ref());
                        let _f = frame("item");
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
        }
        assert_eq!(p.snapshot()["fan-out;item"].calls, 8);
    }
}
