//! # specweb-dissem
//!
//! The demand-based data-dissemination protocol of Bestavros, ICDE 1996,
//! §2: popular documents propagate from home servers to service proxies
//! closer to their consumers, exploiting **temporal** locality (popular
//! documents stay popular) and **geographical** locality (nearby clients
//! want the same documents).
//!
//! Pipeline:
//!
//! 1. [`analysis`] — mine server logs for per-document popularity, the
//!    cumulative hit curve `H(b)` (Fig. 1), per-server demand `R_i` and
//!    the exponential-model rate `λ_i`;
//! 2. [`classify`] — split documents into remotely/locally/globally
//!    popular and mutable/immutable (§2's trichotomy);
//! 3. [`alloc`] — ration proxy storage `B_0` across servers to maximize
//!    the intercepted fraction `α_C` (eqs. 1–5), including the
//!    closed-form special cases (eqs. 6–8), sizing (eq. 10), an
//!    empirical greedy optimizer for arbitrary hit curves, and the
//!    uniform/proportional baselines;
//! 4. [`simulate`] — replay a trace over a netsim topology with
//!    disseminated replicas and measure the bytes×hops reduction
//!    (Fig. 3), including dissemination/update overheads and the §2.3
//!    dynamic load-shedding behaviour;
//! 5. [`hierarchy`] — multi-level deployments (proxies feeding proxies),
//!    §2.3's answer to the proxy-bottleneck objection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod analysis;
pub mod classify;
pub mod hierarchy;
pub mod simulate;

pub use alloc::{Allocation, ServerModel};
pub use analysis::{BlockPopularity, ServerProfile};
pub use classify::{ClassifiedDoc, Classifier};
pub use simulate::{DisseminationOutcome, DisseminationSim};
