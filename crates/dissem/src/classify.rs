//! Document classification (§2).
//!
//! From a trace (and optionally an update history) the classifier
//! re-derives, per document:
//!
//! * the geographic popularity class — remote-to-local access ratio
//!   > 85% ⇒ remotely popular, < 15% ⇒ locally popular, otherwise
//!   > globally popular;
//! * mutability — documents whose observed update frequency exceeds a
//!   threshold are *mutable* and are poor dissemination candidates
//!   (every update forces re-dissemination).
//!
//! The paper: *"The classification of documents into globally, remotely,
//! and locally popular, and into mutable and immutable could be easily
//! done by servers in order to decide which documents to disseminate."*

use serde::{Deserialize, Serialize};
use specweb_core::ids::DocId;
use specweb_trace::document::PopularityClass;
use specweb_trace::generator::Trace;
use specweb_trace::updates::UpdateEvent;

/// A document's derived classification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedDoc {
    /// The document.
    pub doc: DocId,
    /// Remote requests observed.
    pub remote: u64,
    /// Local requests observed.
    pub local: u64,
    /// Derived class (`None` when never accessed — unclassifiable).
    pub class: Option<PopularityClass>,
    /// Observed updates per day.
    pub update_rate: f64,
    /// Whether the update rate marks the document as mutable.
    pub mutable: bool,
}

/// The classifier.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Classifier {
    /// Remote-ratio threshold above which a doc is remotely popular
    /// (paper: 0.85).
    pub remote_threshold: f64,
    /// Remote-ratio threshold below which a doc is locally popular
    /// (paper: 0.15).
    pub local_threshold: f64,
    /// Updates/day above which a doc counts as mutable. The paper's
    /// observation separates ≈0.5%/day (im)mutable classes from the
    /// frequently-updated subset; 0.05/day (one update per 20 days)
    /// cleanly splits the two in our update model.
    pub mutable_rate_threshold: f64,
}

impl Default for Classifier {
    fn default() -> Self {
        Classifier {
            remote_threshold: 0.85,
            local_threshold: 0.15,
            mutable_rate_threshold: 0.05,
        }
    }
}

impl Classifier {
    /// Classifies every document in the trace's catalog, using update
    /// events over `days` days for mutability.
    pub fn classify(
        &self,
        trace: &Trace,
        updates: &[UpdateEvent],
        days: u64,
    ) -> Vec<ClassifiedDoc> {
        let rl = trace.remote_local_counts();
        let mut update_counts = vec![0u64; trace.catalog.len()];
        for u in updates {
            update_counts[u.doc.index()] += 1;
        }
        let days = days.max(1);
        rl.iter()
            .enumerate()
            .map(|(i, &(remote, local))| {
                let total = remote + local;
                let class = if total == 0 {
                    None
                } else {
                    let ratio = remote as f64 / total as f64;
                    Some(if ratio > self.remote_threshold {
                        PopularityClass::Remote
                    } else if ratio < self.local_threshold {
                        PopularityClass::Local
                    } else {
                        PopularityClass::Global
                    })
                };
                let update_rate = update_counts[i] as f64 / days as f64;
                ClassifiedDoc {
                    doc: DocId::from(i),
                    remote,
                    local,
                    class,
                    update_rate,
                    mutable: update_rate > self.mutable_rate_threshold,
                }
            })
            .collect()
    }

    /// Summary counts `(remote, local, global, unaccessed)` — the
    /// paper's "99 / 510 / 365 of 974 accessed" breakdown.
    pub fn class_summary(classified: &[ClassifiedDoc]) -> (usize, usize, usize, usize) {
        let mut r = 0;
        let mut l = 0;
        let mut g = 0;
        let mut u = 0;
        for c in classified {
            match c.class {
                Some(PopularityClass::Remote) => r += 1,
                Some(PopularityClass::Local) => l += 1,
                Some(PopularityClass::Global) => g += 1,
                None => u += 1,
            }
        }
        (r, l, g, u)
    }

    /// The dissemination candidates: accessed, not mutable, and with a
    /// remote audience (remotely or globally popular). Locally popular
    /// documents gain nothing from moving toward remote consumers.
    pub fn dissemination_candidates(classified: &[ClassifiedDoc]) -> Vec<DocId> {
        classified
            .iter()
            .filter(|c| {
                !c.mutable
                    && matches!(
                        c.class,
                        Some(PopularityClass::Remote) | Some(PopularityClass::Global)
                    )
            })
            .map(|c| c.doc)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_core::rng::SeedTree;
    use specweb_netsim::topology::Topology;
    use specweb_trace::generator::{TraceConfig, TraceGenerator};
    use specweb_trace::updates::UpdateProcess;

    fn trace() -> Trace {
        let topo = Topology::balanced(2, 3, 4);
        let mut cfg = TraceConfig::small(70);
        cfg.duration_days = 20;
        cfg.sessions_per_day = 80;
        TraceGenerator::new(cfg).unwrap().generate(&topo).unwrap()
    }

    #[test]
    fn every_catalog_doc_is_classified() {
        let t = trace();
        let c = Classifier::default().classify(&t, &[], 20);
        assert_eq!(c.len(), t.catalog.len());
    }

    #[test]
    fn counts_match_trace() {
        let t = trace();
        let c = Classifier::default().classify(&t, &[], 20);
        let total: u64 = c.iter().map(|d| d.remote + d.local).sum();
        assert_eq!(total as usize, t.len());
    }

    #[test]
    fn all_three_classes_appear() {
        let t = trace();
        let c = Classifier::default().classify(&t, &[], 20);
        let (r, l, g, _u) = Classifier::class_summary(&c);
        assert!(r > 0, "no remotely popular docs: ({r},{l},{g})");
        assert!(l > 0, "no locally popular docs: ({r},{l},{g})");
        assert!(g > 0, "no globally popular docs: ({r},{l},{g})");
    }

    #[test]
    fn derived_classes_correlate_with_ground_truth() {
        // The generator biases local clients toward locally-popular
        // pages; the classifier should recover the intended class for a
        // solid majority of *frequently accessed* documents.
        let t = trace();
        let c = Classifier::default().classify(&t, &[], 20);
        let mut agree = 0usize;
        let mut checked = 0usize;
        for d in &c {
            if d.remote + d.local < 20 {
                continue; // small samples are noisy
            }
            if let Some(derived) = d.class {
                checked += 1;
                if derived == t.catalog.get(d.doc).class {
                    agree += 1;
                }
            }
        }
        assert!(checked > 10, "not enough frequently-accessed docs");
        let rate = agree as f64 / checked as f64;
        assert!(rate > 0.6, "agreement {rate} over {checked} docs");
    }

    #[test]
    fn mutability_detected_from_updates() {
        let t = trace();
        let days = 60;
        let updates = UpdateProcess::default().generate(&SeedTree::new(71), &t.catalog, days);
        let c = Classifier::default().classify(&t, &updates, days);
        let mutable = c.iter().filter(|d| d.mutable).count();
        assert!(mutable > 0, "no mutable docs detected");
        // Detected-mutable docs should be overwhelmingly ground-truth
        // mutable (immutable docs update 10× less often).
        let true_pos = c
            .iter()
            .filter(|d| d.mutable && t.catalog.get(d.doc).mutable)
            .count();
        let precision = true_pos as f64 / mutable as f64;
        assert!(precision > 0.6, "mutability precision {precision}");
    }

    #[test]
    fn candidates_exclude_local_and_mutable() {
        let t = trace();
        let days = 60;
        let updates = UpdateProcess::default().generate(&SeedTree::new(72), &t.catalog, days);
        let c = Classifier::default().classify(&t, &updates, days);
        let cands = Classifier::dissemination_candidates(&c);
        assert!(!cands.is_empty());
        for doc in &cands {
            let d = &c[doc.index()];
            assert!(!d.mutable);
            assert!(matches!(
                d.class,
                Some(PopularityClass::Remote) | Some(PopularityClass::Global)
            ));
        }
    }

    #[test]
    fn unaccessed_docs_are_unclassified() {
        let t = trace();
        let c = Classifier::default().classify(&t, &[], 20);
        for d in &c {
            if d.remote + d.local == 0 {
                assert_eq!(d.class, None);
            } else {
                assert!(d.class.is_some());
            }
        }
    }
}
