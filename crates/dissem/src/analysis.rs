//! Log analysis: popularity profiles per server.
//!
//! Reproduces the measurements behind Fig. 1: per-document request
//! counts split by requester locality, the cumulative hit curve `H(b)`
//! over documents ranked by popularity, the 256 KB *block* popularity
//! view, per-server remote demand `R_i` (bytes/day served outside the
//! cluster) and the fitted exponential rate `λ_i`.

use serde::{Deserialize, Serialize};
use specweb_core::dist::{ExponentialPopularity, HitCurve};
use specweb_core::ids::{DocId, ServerId};
use specweb_core::units::Bytes;
use specweb_core::{CoreError, Result};
use specweb_trace::clients::Locality;
use specweb_trace::generator::Trace;

/// The paper's block size for Fig. 1.
pub const BLOCK_SIZE: Bytes = Bytes::from_kib(256);

/// Popularity profile of one home server, mined from a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerProfile {
    /// The server.
    pub server: ServerId,
    /// Per-document `(doc, size, remote_requests, local_requests)`,
    /// sorted by remote request density (most popular first).
    pub docs: Vec<(DocId, Bytes, u64, u64)>,
    /// Remote demand: bytes per day served to clients outside the
    /// organization (the paper's `R_i`).
    pub remote_bytes_per_day: f64,
    /// Hit curve over *remote* requests (dissemination only intercepts
    /// remote traffic).
    pub hit_curve: HitCurve,
    /// Exponential-model rate fitted to the hit curve.
    pub lambda: f64,
}

impl ServerProfile {
    /// Mines the profile of `server` from a trace spanning `days` days.
    pub fn from_trace(trace: &Trace, server: ServerId, days: u64) -> Result<ServerProfile> {
        if days == 0 {
            return Err(CoreError::invalid_config(
                "analysis.days",
                "must be positive",
            ));
        }
        let mut per_doc: Vec<(DocId, Bytes, u64, u64)> = trace
            .catalog
            .of_server(server)
            .map(|d| (d.id, d.size, 0u64, 0u64))
            .collect();
        if per_doc.is_empty() {
            return Err(CoreError::UnknownId {
                kind: "server",
                id: server.raw(),
            });
        }
        // Dense doc-id → local index map for this server.
        let mut index = std::collections::HashMap::with_capacity(per_doc.len());
        for (i, &(doc, ..)) in per_doc.iter().enumerate() {
            index.insert(doc, i);
        }
        let mut remote_bytes = 0u64;
        for a in &trace.accesses {
            if a.server != server {
                continue;
            }
            let i = index[&a.doc];
            match a.locality {
                Locality::Remote => {
                    per_doc[i].2 += 1;
                    remote_bytes = remote_bytes.saturating_add(per_doc[i].1.get());
                }
                Locality::Local => per_doc[i].3 += 1,
            }
        }
        // Rank by remote request density (remote requests per byte).
        // total_cmp, not partial_cmp: a NaN density (degenerate input)
        // must sort deterministically instead of aborting a whole sweep.
        per_doc.sort_by(|a, b| {
            let da = a.2 as f64 / a.1.get().max(1) as f64;
            let db = b.2 as f64 / b.1.get().max(1) as f64;
            db.total_cmp(&da).then(a.0.cmp(&b.0))
        });

        let curve_input: Vec<(Bytes, u64)> = per_doc.iter().map(|&(_, s, r, _)| (s, r)).collect();
        let hit_curve = HitCurve::from_documents(&curve_input)?;
        let lambda = hit_curve
            .fit_lambda(0.98)
            .or_else(|_| hit_curve.fit_lambda_at(0.25))?
            .lambda();

        Ok(ServerProfile {
            server,
            docs: per_doc,
            remote_bytes_per_day: remote_bytes as f64 / days as f64,
            hit_curve,
            lambda,
        })
    }

    /// Mines the profiles of several servers from one trace, fanning
    /// the per-server analysis out on the process-default pool.
    ///
    /// Output is identical to calling [`ServerProfile::from_trace`] for
    /// each server in order (profiles are pure per-server functions of
    /// the trace); the first error, if any, is reported in input order.
    pub fn from_trace_many(
        trace: &Trace,
        servers: &[ServerId],
        days: u64,
    ) -> Result<Vec<ServerProfile>> {
        specweb_core::par::Pool::auto()
            .try_map_indexed(servers, |_, &s| ServerProfile::from_trace(trace, s, days))
    }

    /// The fitted exponential popularity model.
    pub fn model(&self) -> Result<ExponentialPopularity> {
        ExponentialPopularity::new(self.lambda)
    }

    /// Total remote requests.
    pub fn total_remote_requests(&self) -> u64 {
        self.docs.iter().map(|d| d.2).sum()
    }

    /// The most popular documents (by remote density) whose cumulative
    /// size fits in `budget` — the dissemination set for this server.
    pub fn top_docs_within(&self, budget: Bytes) -> Vec<(DocId, Bytes)> {
        let mut out = Vec::new();
        let mut used = Bytes::ZERO;
        for &(doc, size, remote, _) in &self.docs {
            if remote == 0 {
                break; // never-remotely-requested tail
            }
            if used + size > budget {
                continue; // try smaller docs further down
            }
            used += size;
            out.push((doc, size));
        }
        out
    }

    /// Like [`ServerProfile::top_docs_within`], but ranked for **traffic**
    /// interception: by remote request *count* (descending) instead of
    /// request density. Caching a document saves
    /// `requests × size × hops` of traffic for `size` bytes of storage,
    /// so the marginal value per byte is the request count — the right
    /// ranking when the objective is Fig. 3's bytes×hops, while density
    /// is right when the objective is α (requests intercepted).
    pub fn top_docs_for_traffic(&self, budget: Bytes) -> Vec<(DocId, Bytes)> {
        let mut ranked: Vec<(DocId, Bytes, u64)> = self
            .docs
            .iter()
            .filter(|d| d.2 > 0)
            .map(|&(doc, size, remote, _)| (doc, size, remote))
            .collect();
        ranked.sort_by(|a, b| b.2.cmp(&a.2).then(a.1.cmp(&b.1)).then(a.0.cmp(&b.0)));
        let mut out = Vec::new();
        let mut used = Bytes::ZERO;
        for (doc, size, _) in ranked {
            if used + size > budget {
                continue;
            }
            used += size;
            out.push((doc, size));
        }
        out
    }

    /// Total bytes of documents that received at least one remote request.
    pub fn remotely_accessed_bytes(&self) -> Bytes {
        self.docs.iter().filter(|d| d.2 > 0).map(|d| d.1).sum()
    }
}

/// Fig. 1's view: documents grouped into fixed-size blocks by decreasing
/// remote popularity, with per-block request shares and the cumulative
/// bandwidth saved by serving the top blocks at an earlier stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockPopularity {
    /// Per-block fraction of all remote requests, most popular first.
    pub block_request_share: Vec<f64>,
    /// Cumulative fraction of server *bandwidth* (bytes served) covered
    /// by the top `k+1` blocks.
    pub cumulative_bandwidth_saved: Vec<f64>,
    /// The block size used.
    pub block_size: Bytes,
}

impl BlockPopularity {
    /// Builds the block view from a server profile.
    pub fn from_profile(profile: &ServerProfile, block_size: Bytes) -> Result<BlockPopularity> {
        if block_size == Bytes::ZERO {
            return Err(CoreError::invalid_config(
                "blocks.block_size",
                "must be positive",
            ));
        }
        let total_requests: u64 = profile.docs.iter().map(|d| d.2).sum();
        let total_bytes_served: u64 = profile.docs.iter().map(|d| d.2 * d.1.get()).sum();
        if total_requests == 0 {
            return Err(CoreError::Estimation(
                "no remote requests to block-rank".into(),
            ));
        }
        let mut shares = Vec::new();
        let mut saved = Vec::new();
        let mut block_req = 0u64;
        let mut block_fill = 0u64;
        let mut cum_bytes_served = 0u64;
        for &(_, size, remote, _) in &profile.docs {
            if remote == 0 {
                break;
            }
            block_req = block_req.saturating_add(remote);
            block_fill = block_fill.saturating_add(size.get());
            cum_bytes_served = cum_bytes_served.saturating_add(remote.saturating_mul(size.get()));
            if block_fill >= block_size.get() {
                shares.push(block_req as f64 / total_requests as f64);
                saved.push(cum_bytes_served as f64 / total_bytes_served as f64);
                block_req = 0;
                block_fill = 0;
            }
        }
        if block_req > 0 {
            shares.push(block_req as f64 / total_requests as f64);
            saved.push(cum_bytes_served as f64 / total_bytes_served as f64);
        }
        Ok(BlockPopularity {
            block_request_share: shares,
            cumulative_bandwidth_saved: saved,
            block_size,
        })
    }

    /// Builds block views for several profiles at once, one per input
    /// profile, fanned out on the process-default pool. Identical to
    /// mapping [`BlockPopularity::from_profile`] serially.
    pub fn from_profiles(
        profiles: &[ServerProfile],
        block_size: Bytes,
    ) -> Result<Vec<BlockPopularity>> {
        specweb_core::par::Pool::auto().try_map_indexed(profiles, |_, p| {
            BlockPopularity::from_profile(p, block_size)
        })
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.block_request_share.len()
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.block_request_share.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_netsim::topology::Topology;
    use specweb_trace::generator::{TraceConfig, TraceGenerator};

    fn trace() -> Trace {
        let topo = Topology::balanced(2, 3, 4);
        TraceGenerator::new(TraceConfig::small(60))
            .unwrap()
            .generate(&topo)
            .unwrap()
    }

    #[test]
    fn profile_counts_are_consistent() {
        let t = trace();
        let p = ServerProfile::from_trace(&t, ServerId(0), 10).unwrap();
        let total: u64 = p.docs.iter().map(|d| d.2 + d.3).sum();
        assert_eq!(total as usize, t.len(), "every access counted once");
        assert!(p.remote_bytes_per_day > 0.0);
        assert!(p.lambda > 0.0);
        assert!(p.total_remote_requests() > 0);
    }

    #[test]
    fn profile_is_ranked_by_remote_density() {
        let t = trace();
        let p = ServerProfile::from_trace(&t, ServerId(0), 10).unwrap();
        let dens: Vec<f64> = p
            .docs
            .iter()
            .map(|d| d.2 as f64 / d.1.get().max(1) as f64)
            .collect();
        for w in dens.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "density must be non-increasing");
        }
    }

    #[test]
    fn profile_rejects_unknown_server_and_zero_days() {
        let t = trace();
        assert!(ServerProfile::from_trace(&t, ServerId(9), 10).is_err());
        assert!(ServerProfile::from_trace(&t, ServerId(0), 0).is_err());
    }

    #[test]
    fn top_docs_respect_budget() {
        let t = trace();
        let p = ServerProfile::from_trace(&t, ServerId(0), 10).unwrap();
        let budget = Bytes::from_kib(64);
        let picked = p.top_docs_within(budget);
        let used: Bytes = picked.iter().map(|&(_, s)| s).sum();
        assert!(used <= budget);
        assert!(!picked.is_empty());
    }

    #[test]
    fn top_docs_unlimited_budget_takes_all_remote() {
        let t = trace();
        let p = ServerProfile::from_trace(&t, ServerId(0), 10).unwrap();
        let picked = p.top_docs_within(Bytes::new(u64::MAX / 2));
        let n_remote = p.docs.iter().filter(|d| d.2 > 0).count();
        assert_eq!(picked.len(), n_remote);
    }

    #[test]
    fn block_popularity_is_concentrated_and_monotone() {
        let t = trace();
        let p = ServerProfile::from_trace(&t, ServerId(0), 10).unwrap();
        let b = BlockPopularity::from_profile(&p, Bytes::from_kib(64)).unwrap();
        assert!(!b.is_empty());
        // First block dominates later blocks (temporal locality).
        if b.len() > 2 {
            assert!(
                b.block_request_share[0] > b.block_request_share[b.len() - 1],
                "{:?}",
                b.block_request_share
            );
        }
        // Cumulative savings are monotone and end at 1.
        for w in b.cumulative_bandwidth_saved.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        let last = *b.cumulative_bandwidth_saved.last().unwrap();
        assert!((last - 1.0).abs() < 1e-9, "last cum saved {last}");
        // Request shares sum to 1.
        let s: f64 = b.block_request_share.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "shares sum {s}");
    }

    #[test]
    fn block_popularity_rejects_bad_input() {
        let t = trace();
        let p = ServerProfile::from_trace(&t, ServerId(0), 10).unwrap();
        assert!(BlockPopularity::from_profile(&p, Bytes::ZERO).is_err());
    }

    fn cluster_trace() -> Trace {
        let topo = Topology::balanced(2, 3, 4);
        TraceGenerator::new(TraceConfig::cluster(60, 2))
            .unwrap()
            .generate(&topo)
            .unwrap()
    }

    #[test]
    fn from_trace_many_matches_serial() {
        let t = cluster_trace();
        let servers: Vec<ServerId> = (0..2usize).map(ServerId::from).collect();
        let many = ServerProfile::from_trace_many(&t, &servers, 10).unwrap();
        assert_eq!(many.len(), 2);
        for (profile, &s) in many.iter().zip(&servers) {
            let one = ServerProfile::from_trace(&t, s, 10).unwrap();
            assert_eq!(profile.server, one.server);
            assert_eq!(profile.docs, one.docs);
            assert_eq!(profile.lambda.to_bits(), one.lambda.to_bits());
            assert_eq!(
                profile.remote_bytes_per_day.to_bits(),
                one.remote_bytes_per_day.to_bits()
            );
        }
        // Errors surface in input order, not completion order.
        let bad = [ServerId::from(0usize), ServerId::from(99usize)];
        assert!(ServerProfile::from_trace_many(&t, &bad, 10).is_err());
    }

    #[test]
    fn from_profiles_matches_serial_block_views() {
        let t = cluster_trace();
        let servers: Vec<ServerId> = (0..2usize).map(ServerId::from).collect();
        let profiles = ServerProfile::from_trace_many(&t, &servers, 10).unwrap();
        let blocks = BlockPopularity::from_profiles(&profiles, Bytes::from_kib(64)).unwrap();
        assert_eq!(blocks.len(), profiles.len());
        for (b, p) in blocks.iter().zip(&profiles) {
            let one = BlockPopularity::from_profile(p, Bytes::from_kib(64)).unwrap();
            assert_eq!(b.block_request_share, one.block_request_share);
            assert_eq!(b.cumulative_bandwidth_saved, one.cumulative_bandwidth_saved);
        }
    }

    #[test]
    fn zero_demand_server_does_not_panic_ranking() {
        // Regression: the ranking sort used `partial_cmp(..).expect(..)`,
        // so a degenerate profile (zero-request server, NaN λ fit) would
        // abort a whole sweep. With total_cmp these paths must complete.
        let profile = ServerProfile {
            server: ServerId::from(0usize),
            docs: vec![
                (DocId::from(0usize), Bytes::from_kib(4), 0, 0),
                (DocId::from(1usize), Bytes::from_kib(8), 0, 0),
            ],
            remote_bytes_per_day: 0.0,
            hit_curve: {
                // A minimal legitimate curve; the degenerate part is the
                // λ and the all-zero request counts.
                specweb_core::dist::HitCurve::from_documents(&[(Bytes::from_kib(4), 1)]).unwrap()
            },
            lambda: f64::NAN,
        };
        assert!(profile.top_docs_within(Bytes::from_kib(64)).is_empty());
        assert!(profile.top_docs_for_traffic(Bytes::from_kib(64)).is_empty());
        assert_eq!(profile.total_remote_requests(), 0);
        // The block view reports the no-requests condition as an error,
        // never as a panic.
        assert!(BlockPopularity::from_profile(&profile, Bytes::from_kib(64)).is_err());
    }

    #[test]
    fn remotely_accessed_bytes_bounded_by_catalog() {
        let t = trace();
        let p = ServerProfile::from_trace(&t, ServerId(0), 10).unwrap();
        assert!(p.remotely_accessed_bytes() <= t.catalog.total_bytes());
        assert!(p.remotely_accessed_bytes() > Bytes::ZERO);
    }
}
