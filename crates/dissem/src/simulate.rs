//! Trace-driven dissemination simulation (Fig. 3).
//!
//! Replays a trace over a netsim topology with the most popular fraction
//! of each server's data replicated at a set of service proxies, and
//! measures the reduction in network traffic (bytes × hops) against the
//! no-dissemination baseline.
//!
//! Faithful to the paper's setup:
//!
//! * proxies are placed at the most beneficial interior nodes (the
//!   paper places them optimally from the clientele tree; we score
//!   nodes by `subtree demand × depth`, the hop-weighted benefit of an
//!   interception at that node);
//! * by default the **same** data is disseminated to all proxies, as in
//!   Fig. 3 — with the *tailored* option implementing the footnote's
//!   geographic refinement ("disseminating different data to different
//!   proxies based on the access patterns of clients served by each
//!   proxy");
//! * optional accounting of the dissemination pushes themselves and of
//!   re-dissemination on document updates;
//! * optional per-proxy load cap implementing §2.3's dynamic shedding.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use specweb_core::ids::{NodeId, ServerId};
use specweb_core::stats::{ServiceQuantiles, ServiceTimeDist};
use specweb_core::units::{ByteHops, Bytes};
use specweb_core::{CoreError, Result};
use specweb_netsim::cluster::{Cluster, ClusterMap};
use specweb_netsim::cost::{LatencyModel, TrafficAccount};
use specweb_netsim::fault::FaultPlan;
use specweb_netsim::proxystore::ProxyStore;
use specweb_netsim::routing::Router;
use specweb_netsim::topology::Topology;
use specweb_trace::generator::{Access, Trace};
use specweb_trace::updates::UpdateEvent;

use crate::analysis::ServerProfile;

/// Simulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DisseminationConfig {
    /// Fraction of each server's remotely-accessed bytes to disseminate
    /// (Fig. 3 uses 0.04 and 0.10).
    pub fraction: f64,
    /// Number of proxies.
    pub n_proxies: usize,
    /// Tailor each proxy's replica to its own clientele (geographic
    /// locality refinement) instead of pushing the same set everywhere.
    pub tailored: bool,
    /// Account for the traffic of the dissemination pushes themselves.
    pub count_dissemination_traffic: bool,
    /// Re-disseminate documents when they update (requires `updates`).
    pub count_update_traffic: bool,
    /// §2.3 dynamic shedding: a proxy that has already served this many
    /// requests in a day passes further requests upstream.
    pub proxy_daily_request_cap: Option<u64>,
    /// Rank dissemination candidates for traffic interception (by
    /// request count — optimal for bytes×hops, Fig. 3's metric) instead
    /// of by request density (optimal for the intercepted-request
    /// fraction α).
    pub rank_for_traffic: bool,
    /// Replay only remote accesses. The paper's dissemination protocol
    /// targets traffic from clients *outside* the organization (`R_i` is
    /// remote demand); campus-local traffic never crosses the Internet
    /// tree and is excluded from Fig. 3's accounting.
    pub remote_only: bool,
    /// Explicit proxy locations, overriding demand-based placement —
    /// used by the hierarchy experiments to place whole tree levels.
    pub explicit_proxies: Option<Vec<NodeId>>,
    /// Latency model for the per-request service-time distribution
    /// (same defaults as the spec simulator's, so the two report
    /// comparable milliseconds).
    pub latency: LatencyModel,
}

impl Default for DisseminationConfig {
    fn default() -> Self {
        DisseminationConfig {
            fraction: 0.10,
            n_proxies: 4,
            tailored: false,
            count_dissemination_traffic: false,
            count_update_traffic: false,
            proxy_daily_request_cap: None,
            rank_for_traffic: true,
            remote_only: true,
            explicit_proxies: None,
            latency: LatencyModel::default(),
        }
    }
}

/// Simulation results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DisseminationOutcome {
    /// Traffic without dissemination.
    pub baseline: TrafficAccount,
    /// Client-request traffic with dissemination (excludes pushes).
    pub with_dissemination: TrafficAccount,
    /// Traffic of dissemination + update pushes (bytes × hops from the
    /// origin down to each proxy).
    pub push_traffic: ByteHops,
    /// Requests served by a proxy.
    pub proxy_hits: u64,
    /// Requests that reached the home server.
    pub origin_hits: u64,
    /// Interception opportunities shed due to proxy overload (a request
    /// skipped at two capped proxies counts twice; it may still be
    /// served by a third).
    pub shed_requests: u64,
    /// Total proxy storage in use.
    pub total_proxy_storage: Bytes,
    /// Fraction of bytes×hops saved, net of push traffic.
    pub reduction: f64,
    /// Fraction of requests intercepted (the realized α).
    pub intercepted_fraction: f64,
    /// Exact per-request service-time quantiles with dissemination:
    /// proxy hits traverse fewer hops, so interception shows up as a
    /// shorter tail, not just fewer bytes×hops.
    pub service_times: ServiceQuantiles,
    /// The same quantiles for the no-dissemination baseline (every
    /// request pays the full origin path).
    pub baseline_service_times: ServiceQuantiles,
}

/// Counters accumulated by a faulted replay.
#[derive(Debug, Default, Clone)]
struct FaultTally {
    fault_denied: u64,
    retries: u64,
    unavailable: u64,
    stalled: u64,
    slow_served: u64,
    partial_write_resends: u64,
    /// Service times of the requests deferred by a client stall.
    stalled_service: ServiceTimeDist,
    /// Service times of the requests drained by a slow client.
    slow_service: ServiceTimeDist,
}

/// Results of [`DisseminationSim::run_with_faults`]: the faulted
/// outcome, its healthy twin, and the degraded-mode metrics connecting
/// them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradedDisseminationOutcome {
    /// The outcome measured while the fault plan was active.
    pub outcome: DisseminationOutcome,
    /// The same configuration replayed with no faults.
    pub healthy: DisseminationOutcome,
    /// Interception opportunities denied by a crash, a broken path or a
    /// capacity fault (the request fell through toward the origin).
    pub fault_denied: u64,
    /// Client retries caused by faults (fall-throughs + waits for the
    /// origin path to recover).
    pub retries: u64,
    /// Requests that could not be served at all: the path to the home
    /// server never recovered inside the plan's horizon.
    pub unavailable: u64,
    /// Fraction of requests served (`1 −` unavailable/attempted).
    pub availability: f64,
    /// Faulted `bytes×hops` (requests + pushes) over the healthy run's
    /// — how much extra traffic the faults induced (> 1 when fall-
    /// throughs outweigh the traffic removed by unavailability).
    pub byte_hops_inflation: f64,
    /// Requests deferred because the client was stalled (a leaf in a
    /// `stall` window); the request waits out the window and is served
    /// at the deferred instant.
    pub stalled: u64,
    /// Requests served to a slow-draining client (a leaf in a
    /// `slow_client` window).
    pub slow_served: u64,
    /// Transfers that fragmented at a partial-writing client and were
    /// re-sent whole; the wasted first copy's `bytes×hops` are charged
    /// to the faulted run's traffic.
    pub partial_write_resends: u64,
    /// Service-time quantiles of just the stall-deferred requests.
    pub stalled_service_times: ServiceQuantiles,
    /// Service-time quantiles of the requests served to slow clients.
    pub slow_service_times: ServiceQuantiles,
}

/// The dissemination simulator.
#[derive(Debug)]
pub struct DisseminationSim<'a> {
    trace: &'a Trace,
    topo: &'a Topology,
    profiles: Vec<ServerProfile>,
    /// Optional observability bundle: per-replay hit/shed/push
    /// accounting lands here (deterministic channel — the replay is a
    /// pure function of trace + config + fault plan).
    obs: Option<specweb_core::obs::Obs>,
    /// Static shard partition for the replay: access indices grouped by
    /// the root-child subtree ("cluster") the client lives under,
    /// ordered by cluster node id. [`Router::route`] stops collecting
    /// interceptions at the root, so every proxy's counters are touched
    /// by exactly one shard and the merged replay is bit-identical to a
    /// serial pass (DESIGN §12).
    shards: Vec<Vec<usize>>,
}

/// Partial outcome of replaying one shard of the trace.
#[derive(Debug, Default)]
struct ReplayPart {
    baseline: TrafficAccount,
    with_d: TrafficAccount,
    proxy_hits: u64,
    origin_hits: u64,
    shed: u64,
    tally: FaultTally,
    /// Per-request service times of every served request (multiset, so
    /// the cluster-shard merge compares equal to a serial pass).
    service: ServiceTimeDist,
    /// Service times of the no-dissemination baseline (full origin
    /// path, fault-free by construction).
    baseline_service: ServiceTimeDist,
}

impl FaultTally {
    fn merge(&mut self, other: &FaultTally) {
        self.fault_denied = self.fault_denied.saturating_add(other.fault_denied);
        self.retries = self.retries.saturating_add(other.retries);
        self.unavailable = self.unavailable.saturating_add(other.unavailable);
        self.stalled = self.stalled.saturating_add(other.stalled);
        self.slow_served = self.slow_served.saturating_add(other.slow_served);
        self.partial_write_resends = self
            .partial_write_resends
            .saturating_add(other.partial_write_resends);
        self.stalled_service.merge(&other.stalled_service);
        self.slow_service.merge(&other.slow_service);
    }
}

impl<'a> DisseminationSim<'a> {
    /// Builds the simulator, mining one profile per server from the
    /// trace (the paper's off-line log analysis step).
    pub fn new(trace: &'a Trace, topo: &'a Topology) -> Result<Self> {
        let days = (trace.duration.as_millis() / 86_400_000).max(1);
        let n_servers = trace
            .catalog
            .iter()
            .map(|d| d.server.index() + 1)
            .max()
            .unwrap_or(0);
        let servers: Vec<ServerId> = (0..n_servers).map(ServerId::from).collect();
        let profiles = ServerProfile::from_trace_many(trace, &servers, days)?;
        // Partition the replay by root-child cluster (see `shards` doc).
        let mut by_cluster: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, a) in trace.accesses.iter().enumerate() {
            let p = topo.path_to_root(trace.clients.get(a.client).node);
            let cluster = if p.len() >= 2 { p[p.len() - 2] } else { p[0] };
            by_cluster.entry(cluster).or_default().push(i);
        }
        Ok(DisseminationSim {
            trace,
            topo,
            profiles,
            obs: None,
            shards: by_cluster.into_values().collect(),
        })
    }

    /// Attaches an observability bundle: every subsequent replay
    /// records `dissem.*` interception/shed/push counters into it.
    pub fn with_obs(mut self, obs: &specweb_core::obs::Obs) -> Self {
        self.obs = Some(obs.clone());
        self
    }

    /// The mined server profiles.
    pub fn profiles(&self) -> &[ServerProfile] {
        &self.profiles
    }

    /// Places `k` proxies by greedy marginal gain — the paper's
    /// "optimally locate the set of tree nodes to use as service
    /// proxies" step. An interception at node `v` saves `depth(v)` hops
    /// for every byte requested by a client below `v`, but only beyond
    /// what an already-placed *deeper* proxy on the same path saves; the
    /// greedy therefore maximizes the submodular marginal
    /// `Σ_leaf bytes(leaf) × max(0, depth(v) − best_saved(leaf))`.
    pub fn place_proxies(&self, k: usize) -> Vec<NodeId> {
        self.place_proxies_for(k, true)
    }

    /// Like [`DisseminationSim::place_proxies`], weighting demand by
    /// remote traffic only (`remote_only`) or by all traffic.
    pub fn place_proxies_for(&self, k: usize, remote_only: bool) -> Vec<NodeId> {
        // Demand per leaf, in bytes (traffic-weighted).
        let mut leaf_bytes: BTreeMap<NodeId, u64> = BTreeMap::new();
        for a in &self.trace.accesses {
            if remote_only && a.locality == specweb_trace::clients::Locality::Local {
                continue;
            }
            let node = self.trace.clients.get(a.client).node;
            let sz = self.trace.catalog.size(a.doc).get();
            let e = leaf_bytes.entry(node).or_insert(0);
            *e = e.saturating_add(sz);
        }
        let leaves: Vec<(NodeId, u64)> = leaf_bytes.into_iter().collect();
        let candidates = self.topo.interior_nodes();
        let mut best_saved: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut placed = Vec::with_capacity(k.min(candidates.len()));
        let mut available: Vec<NodeId> = candidates;

        while placed.len() < k && !available.is_empty() {
            let mut best: Option<(u64, usize)> = None;
            for (i, &v) in available.iter().enumerate() {
                let dv = self.topo.depth(v);
                let mut gain = 0u64;
                for &(leaf, bytes) in &leaves {
                    if !self.topo.is_ancestor(v, leaf) {
                        continue;
                    }
                    let cur = best_saved.get(&leaf).copied().unwrap_or(0);
                    if dv > cur {
                        gain = gain.saturating_add(bytes.saturating_mul(u64::from(dv - cur)));
                    }
                }
                // Ties broken by lower node id for determinism.
                if best.is_none_or(|(g, bi)| gain > g || (gain == g && v < available[bi])) {
                    best = Some((gain, i));
                }
            }
            let Some((gain, idx)) = best else { break };
            let v = available.swap_remove(idx);
            if gain == 0 && !placed.is_empty() {
                // No residual demand anywhere; placing more proxies is
                // pure storage waste, but the caller asked for k — keep
                // filling so interception (not traffic) can still grow.
            }
            let dv = self.topo.depth(v);
            for &(leaf, _) in &leaves {
                if self.topo.is_ancestor(v, leaf) {
                    let e = best_saved.entry(leaf).or_insert(0);
                    if dv > *e {
                        *e = dv;
                    }
                }
            }
            placed.push(v);
        }
        placed
    }

    /// Runs the simulation.
    pub fn run(
        &self,
        cfg: &DisseminationConfig,
        updates: &[UpdateEvent],
    ) -> Result<DisseminationOutcome> {
        Ok(self.run_inner(cfg, updates, None)?.0)
    }

    /// Runs the simulation twice — once healthy, once against `plan` —
    /// and reports degraded-mode metrics alongside the faulted outcome.
    ///
    /// Fault semantics during replay: a proxy that is crashed,
    /// unreachable (a down link between client and proxy), or out of
    /// capacity is skipped — the request falls through toward the home
    /// server exactly like a §2.3 shed, costing one retry. A request
    /// that cannot even reach the home server waits for the path to
    /// recover (one more retry) or, if the path never recovers inside
    /// the plan's horizon, goes unserved.
    pub fn run_with_faults(
        &self,
        cfg: &DisseminationConfig,
        updates: &[UpdateEvent],
        plan: &FaultPlan,
    ) -> Result<DegradedDisseminationOutcome> {
        if let Some(obs) = &self.obs {
            // One fault log per degraded run; the healthy twin replays
            // the same plan-free path and records nothing here.
            plan.record_to(obs);
        }
        let healthy = self.run_inner(cfg, updates, None)?.0;
        let (outcome, tally) = self.run_inner(cfg, updates, Some(plan))?;
        let attempted = outcome
            .proxy_hits
            .saturating_add(outcome.origin_hits)
            .saturating_add(tally.unavailable);
        let availability = if attempted == 0 {
            1.0
        } else {
            (attempted - tally.unavailable) as f64 / attempted as f64
        };
        // lint:allow(W1): ByteHops Add saturates (units::unit_arith!)
        let faulted_total = outcome.with_dissemination.byte_hops + outcome.push_traffic;
        // lint:allow(W1): ByteHops Add saturates (units::unit_arith!)
        let healthy_total = healthy.with_dissemination.byte_hops + healthy.push_traffic;
        let byte_hops_inflation = faulted_total.ratio(healthy_total);
        Ok(DegradedDisseminationOutcome {
            healthy,
            outcome,
            fault_denied: tally.fault_denied,
            retries: tally.retries,
            unavailable: tally.unavailable,
            availability,
            byte_hops_inflation,
            stalled: tally.stalled,
            slow_served: tally.slow_served,
            partial_write_resends: tally.partial_write_resends,
            stalled_service_times: tally.stalled_service.quantiles(),
            slow_service_times: tally.slow_service.quantiles(),
        })
    }

    fn run_inner(
        &self,
        cfg: &DisseminationConfig,
        updates: &[UpdateEvent],
        faults: Option<&FaultPlan>,
    ) -> Result<(DisseminationOutcome, FaultTally)> {
        if !(0.0..=1.0).contains(&cfg.fraction) {
            return Err(CoreError::invalid_config(
                "dissem.fraction",
                "must be in [0, 1]",
            ));
        }
        if cfg.count_update_traffic && updates.is_empty() {
            return Err(CoreError::invalid_config(
                "dissem.updates",
                "count_update_traffic requires update events",
            ));
        }

        // Phase frames: one per run_inner call, independent of --jobs
        // (the shard gate below changes scheduling, never call counts).
        let _run_frame = specweb_core::obs::profile::frame("dissem.run");
        let all_servers: Vec<ServerId> = (0..self.profiles.len()).map(ServerId::from).collect();
        let proxy_nodes = {
            let _f = specweb_core::obs::profile::frame("placement");
            match &cfg.explicit_proxies {
                Some(nodes) => nodes.clone(),
                None => self.place_proxies_for(cfg.n_proxies, cfg.remote_only),
            }
        };
        let mut clusters = ClusterMap::new();
        for &node in &proxy_nodes {
            clusters.add(self.topo, Cluster::new(node, all_servers.clone()))?;
        }
        let router = Router::new(self.topo, &clusters);

        // Build each proxy's store.
        let mut stores: BTreeMap<NodeId, ProxyStore> = BTreeMap::new();
        let mut push_traffic = ByteHops::ZERO;
        let mut total_storage = Bytes::ZERO;
        for &node in &proxy_nodes {
            let hops_from_origin = self.topo.depth(node);
            let mut store = ProxyStore::new(Bytes::new(u64::MAX / 2));
            for profile in &self.profiles {
                let budget =
                    Bytes::new((profile.remotely_accessed_bytes().as_f64() * cfg.fraction) as u64);
                store.set_quota(profile.server, budget);
                let docs = if cfg.tailored {
                    self.tailored_top_docs(profile, node, budget, cfg.rank_for_traffic)
                } else if cfg.rank_for_traffic {
                    profile.top_docs_for_traffic(budget)
                } else {
                    profile.top_docs_within(budget)
                };
                for (doc, size) in docs {
                    store.install(profile.server, doc, size)?;
                    if cfg.count_dissemination_traffic {
                        // lint:allow(W1): ByteHops AddAssign saturates (units::unit_arith!)
                        push_traffic += size.over_hops(hops_from_origin);
                    }
                }
                // lint:allow(W1): Bytes AddAssign saturates (units::unit_arith!)
                total_storage += store.used_by(profile.server);
            }
            stores.insert(node, store);
        }

        // Update pushes: every update of a disseminated doc re-sends it
        // to each proxy holding it.
        if cfg.count_update_traffic {
            for u in updates {
                let size = self.trace.catalog.size(u.doc);
                let server = self.trace.catalog.get(u.doc).server;
                for (&node, store) in &stores {
                    if store.contains(server, u.doc) {
                        // lint:allow(W1): ByteHops AddAssign saturates (units::unit_arith!)
                        push_traffic += size.over_hops(self.topo.depth(node));
                    }
                }
            }
        }

        // Replay, sharded by root-child cluster: every interception
        // proxy lies strictly below the root on its client's path, so
        // per-proxy counters (daily shedding, capacity thinning) are
        // shard-local and the merge below reproduces a serial pass
        // bit for bit (DESIGN §12).
        let _replay_frame = specweb_core::obs::profile::frame("replay");
        let pool = specweb_core::par::Pool::auto();
        let parts: Vec<ReplayPart> = if self.shards.len() > 1 && pool.jobs() > 1 {
            pool.map_indexed(&self.shards, |_, idxs| {
                self.replay_shard(
                    cfg,
                    faults,
                    &router,
                    &stores,
                    idxs.iter().map(|&i| &self.trace.accesses[i]),
                )
            })
        } else {
            vec![self.replay_shard(cfg, faults, &router, &stores, self.trace.accesses.iter())]
        };
        let mut baseline = TrafficAccount::new();
        let mut with_d = TrafficAccount::new();
        let mut proxy_hits = 0u64;
        let mut origin_hits = 0u64;
        let mut shed = 0u64;
        let mut tally = FaultTally::default();
        let mut service = ServiceTimeDist::new();
        let mut baseline_service = ServiceTimeDist::new();
        for p in &parts {
            baseline.merge(&p.baseline);
            with_d.merge(&p.with_d);
            proxy_hits = proxy_hits.saturating_add(p.proxy_hits);
            origin_hits = origin_hits.saturating_add(p.origin_hits);
            shed = shed.saturating_add(p.shed);
            tally.merge(&p.tally);
            service.merge(&p.service);
            baseline_service.merge(&p.baseline_service);
        }

        // lint:allow(W1): ByteHops Add saturates (units::unit_arith!)
        let total_with = with_d.byte_hops + push_traffic;
        let reduction = 1.0 - total_with.ratio(baseline.byte_hops);
        let total_requests = proxy_hits.saturating_add(origin_hits);
        let intercepted_fraction = if total_requests == 0 {
            0.0
        } else {
            proxy_hits as f64 / total_requests as f64
        };

        if let Some(obs) = &self.obs {
            let pairs = [
                ("dissem.requests", total_requests),
                ("dissem.proxy_hits", proxy_hits),
                ("dissem.origin_hits", origin_hits),
                ("dissem.shed_requests", shed),
                ("dissem.push_byte_hops", push_traffic.get()),
                ("dissem.fault_denied", tally.fault_denied),
                ("dissem.retries", tally.retries),
                ("dissem.unavailable", tally.unavailable),
                ("dissem.stalled", tally.stalled),
                ("dissem.slow_served", tally.slow_served),
                ("dissem.partial_write_resends", tally.partial_write_resends),
            ];
            for (name, v) in pairs {
                obs.metrics.counter(name).add(v);
            }
            obs.metrics
                .gauge("dissem.proxy_storage_bytes")
                .record(total_storage.get());
            publish_service_histogram(obs, "dissem.service_time_ms", &service);
            publish_service_histogram(obs, "dissem.baseline.service_time_ms", &baseline_service);
        }

        Ok((
            DisseminationOutcome {
                baseline,
                with_dissemination: with_d,
                push_traffic,
                proxy_hits,
                origin_hits,
                shed_requests: shed,
                total_proxy_storage: total_storage,
                reduction,
                intercepted_fraction,
                service_times: service.quantiles(),
                baseline_service_times: baseline_service.quantiles(),
            },
            tally,
        ))
    }

    /// Replays one shard of the trace (an in-order subsequence of
    /// accesses) into a partial outcome. Per-proxy state — the daily
    /// shedding counters and the capacity-fault thinning counters —
    /// lives here, which is exact because a proxy only ever intercepts
    /// clients of its own root-child subtree, i.e. of a single shard.
    fn replay_shard<'t>(
        &self,
        cfg: &DisseminationConfig,
        faults: Option<&FaultPlan>,
        router: &Router<'_>,
        stores: &BTreeMap<NodeId, ProxyStore>,
        accesses: impl Iterator<Item = &'t Access>,
    ) -> ReplayPart {
        let mut part = ReplayPart::default();
        // Per-proxy request counters, reset daily (for shedding).
        let mut day_counters: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut current_day = u64::MAX;
        // Deterministic thinning at capacity-degraded proxies:
        // (seen, served) per proxy, counted inside fault windows only.
        let mut cap_counters: BTreeMap<NodeId, (u64, u64)> = BTreeMap::new();

        for a in accesses {
            if cfg.remote_only && a.locality == specweb_trace::clients::Locality::Local {
                continue;
            }
            if a.time.day() != current_day {
                current_day = a.time.day();
                day_counters.clear();
            }
            let size = self.trace.catalog.size(a.doc);
            let client_node = self.trace.clients.get(a.client).node;
            let route = router.route(client_node, a.server);
            part.baseline.record(size, route.origin_hops);
            // The baseline pays the full origin path, fault-free by
            // construction (faults degrade the treatment, not the
            // reference point).
            part.baseline_service
                .record(cfg.latency.fetch(size, route.origin_hops).as_millis());

            // A stalled client defers its request to the end of the
            // window; every later fault lookup sees the deferred
            // instant. (Daily shedding counters stay on the access's
            // calendar day — the cap is the proxy's, not the client's.)
            let mut t = a.time;
            let mut was_stalled = false;
            let mut slow_factor = 1.0f64;
            if let Some(plan) = faults {
                if let Some(resume) = plan.stalled_until(client_node, t) {
                    was_stalled = true;
                    part.tally.stalled += 1;
                    part.tally.retries += 1;
                    t = resume;
                }
                let f = plan.client_slow_factor(client_node, t);
                if f > 1.0 {
                    slow_factor = f;
                    part.tally.slow_served += 1;
                }
            }

            let mut served = None;
            for (i, itc) in route.interceptions.iter().enumerate() {
                let holds = stores
                    .get(&itc.proxy)
                    .is_some_and(|s| s.contains(a.server, a.doc));
                if !holds {
                    continue;
                }
                if let Some(plan) = faults {
                    if !plan.proxy_up(itc.proxy, t)
                        || !plan.path_up(self.topo, client_node, itc.proxy, t)
                    {
                        part.tally.fault_denied += 1;
                        part.tally.retries += 1;
                        continue; // fall through toward the home server
                    }
                    let f: f64 = plan.capacity_factor(itc.proxy, t);
                    if f < 1.0 {
                        let c = cap_counters.entry(itc.proxy).or_insert((0u64, 0u64));
                        c.0 += 1;
                        if (c.1 + 1) as f64 > f * c.0 as f64 {
                            part.tally.fault_denied += 1;
                            part.tally.retries += 1;
                            continue; // degraded proxy sheds this request
                        }
                        c.1 += 1;
                    }
                }
                if let Some(cap) = cfg.proxy_daily_request_cap {
                    let ctr = day_counters.entry(itc.proxy).or_insert(0);
                    if *ctr >= cap {
                        part.shed += 1;
                        continue; // overloaded: try the next proxy upstream
                    }
                    *ctr += 1;
                }
                served = Some(i);
                break;
            }
            let served_hops = match served {
                Some(i) => {
                    part.proxy_hits += 1;
                    route.served_hops(Some(i))
                }
                None => {
                    if let Some(plan) = faults {
                        if !plan.path_up(self.topo, client_node, Topology::ROOT, t) {
                            if plan
                                .path_recovery(self.topo, client_node, Topology::ROOT, t)
                                .is_some()
                            {
                                // Served after the path recovers: one
                                // client retry, full origin cost.
                                part.tally.retries += 1;
                            } else {
                                part.tally.unavailable += 1;
                                continue;
                            }
                        }
                    }
                    part.origin_hits += 1;
                    route.origin_hops
                }
            };
            part.with_d.record(size, served_hops);
            // Service time: the (possibly slow-client-inflated) fetch
            // over the hops that actually served the request, plus any
            // stall deferral the client waited through first.
            let fetch_ms = cfg.latency.fetch(size, served_hops).as_millis();
            let mut service_ms =
                (fetch_ms as f64 * slow_factor) as u64 + t.since(a.time).as_millis();
            if let Some(plan) = faults {
                if plan.partial_write_active(client_node, t) {
                    // The transfer fragments at the client and
                    // truncates; the re-send succeeds, but the wasted
                    // first copy still crossed every hop — and the
                    // client waited through both transfers.
                    part.tally.partial_write_resends += 1;
                    part.with_d.record(size, served_hops);
                    service_ms += fetch_ms;
                }
            }
            part.service.record(service_ms);
            if was_stalled {
                part.tally.stalled_service.record(service_ms);
            }
            if slow_factor > 1.0 {
                part.tally.slow_service.record(service_ms);
            }
        }
        part
    }

    /// The tailored replica for a proxy: rank the server's documents by
    /// the demand of clients in *this proxy's subtree*, smoothed with
    /// the server-wide counts (a subtree sees only a slice of the trace,
    /// so its raw counts are noisy; the global profile acts as a prior).
    fn tailored_top_docs(
        &self,
        profile: &ServerProfile,
        proxy: NodeId,
        budget: Bytes,
        rank_for_traffic: bool,
    ) -> Vec<(specweb_core::ids::DocId, Bytes)> {
        const GLOBAL_PRIOR_WEIGHT: f64 = 0.25;
        let mut counts: BTreeMap<specweb_core::ids::DocId, f64> = BTreeMap::new();
        for a in &self.trace.accesses {
            if a.server != profile.server {
                continue;
            }
            // Only remote demand matters: proxies never see an
            // organization's local requests, so counting them would
            // spend replica budget on documents the proxy cannot serve.
            if a.locality == specweb_trace::clients::Locality::Local {
                continue;
            }
            let node = self.trace.clients.get(a.client).node;
            if self.topo.is_ancestor(proxy, node) {
                *counts.entry(a.doc).or_insert(0.0) += 1.0;
            }
        }
        // Blend in the global remote popularity as a prior.
        for &(doc, _, remote, _) in &profile.docs {
            let global = remote as f64;
            if global > 0.0 {
                *counts.entry(doc).or_insert(0.0) += GLOBAL_PRIOR_WEIGHT * global;
            }
        }
        let mut ranked: Vec<(specweb_core::ids::DocId, Bytes, f64)> = counts
            .into_iter()
            .map(|(doc, c)| {
                let size = self.trace.catalog.size(doc);
                let score = if rank_for_traffic {
                    c // value/byte for traffic = request count
                } else {
                    c / size.get().max(1) as f64
                };
                (doc, size, score)
            })
            .collect();
        // total_cmp keeps a degenerate (NaN-gain) entry from aborting
        // the whole simulation; it simply sorts last deterministically.
        ranked.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        let mut out = Vec::new();
        let mut used = Bytes::ZERO;
        for (doc, size, _) in ranked {
            if used + size > budget {
                continue;
            }
            used += size;
            out.push((doc, size));
        }
        out
    }
}

/// Publishes a replay's service-time distribution as a log₂-bucketed
/// histogram on the deterministic channel (bucket `i` ⇔ `(ms+1).ilog2()
/// == i`, observed at the bucket midpoint). Pure function of trace +
/// config + plan, so the histogram is byte-identical across `--jobs`.
fn publish_service_histogram(obs: &specweb_core::obs::Obs, name: &str, dist: &ServiceTimeDist) {
    use specweb_core::stats::SERVICE_TIME_LOG2_BINS;
    let h = obs.metrics.histogram_on(
        name,
        specweb_core::obs::Channel::Deterministic,
        0.0,
        SERVICE_TIME_LOG2_BINS as f64,
        SERVICE_TIME_LOG2_BINS,
    );
    for (i, &n) in dist.log2_bins().iter().enumerate() {
        if n > 0 {
            h.observe_n(i as f64 + 0.5, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_netsim::fault::FaultWindow;
    use specweb_trace::generator::{TraceConfig, TraceGenerator};

    fn setup(seed: u64) -> (Trace, Topology) {
        let topo = Topology::balanced(2, 3, 4);
        let trace = TraceGenerator::new(TraceConfig::small(seed))
            .unwrap()
            .generate(&topo)
            .unwrap();
        (trace, topo)
    }

    #[test]
    fn dissemination_reduces_traffic() {
        let (trace, topo) = setup(80);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let out = sim.run(&DisseminationConfig::default(), &[]).unwrap();
        assert!(out.proxy_hits > 0, "no interceptions at all");
        assert!(
            out.reduction > 0.05,
            "expected meaningful savings, got {}",
            out.reduction
        );
        assert!(out.reduction < 1.0);
        // Default config replays remote accesses only.
        let remote = trace
            .accesses
            .iter()
            .filter(|a| a.locality == specweb_trace::clients::Locality::Remote)
            .count() as u64;
        assert_eq!(
            out.proxy_hits + out.origin_hits,
            remote,
            "every remote access must be served somewhere"
        );
        assert_eq!(out.baseline.transfers, remote);
        // One service-time sample per served request, and interception
        // (fewer hops for the popular documents) must not lengthen any
        // quantile relative to the full-origin-path baseline.
        assert_eq!(out.service_times.count, remote);
        assert_eq!(out.baseline_service_times.count, remote);
        assert!(out.service_times.p50_ms <= out.baseline_service_times.p50_ms);
        assert!(out.service_times.p99_ms <= out.baseline_service_times.p99_ms);
        assert!(out.service_times.mean_ms < out.baseline_service_times.mean_ms);
        assert!(out.service_times.max_ms > 0);
    }

    #[test]
    fn zero_fraction_is_the_baseline() {
        let (trace, topo) = setup(81);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let cfg = DisseminationConfig {
            fraction: 0.0,
            ..DisseminationConfig::default()
        };
        let out = sim.run(&cfg, &[]).unwrap();
        assert_eq!(out.proxy_hits, 0);
        assert_eq!(out.with_dissemination.byte_hops, out.baseline.byte_hops);
        assert!(out.reduction.abs() < 1e-9);
    }

    #[test]
    fn more_data_disseminated_saves_more() {
        let (trace, topo) = setup(82);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let run = |f: f64| {
            sim.run(
                &DisseminationConfig {
                    fraction: f,
                    ..DisseminationConfig::default()
                },
                &[],
            )
            .unwrap()
            .reduction
        };
        let r4 = run(0.04);
        let r10 = run(0.10);
        let r50 = run(0.50);
        assert!(r10 >= r4, "10% ({r10}) should beat 4% ({r4})");
        assert!(r50 >= r10, "50% ({r50}) should beat 10% ({r10})");
    }

    #[test]
    fn more_proxies_save_more() {
        let (trace, topo) = setup(83);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let run = |k: usize| {
            sim.run(
                &DisseminationConfig {
                    n_proxies: k,
                    ..DisseminationConfig::default()
                },
                &[],
            )
            .unwrap()
            .reduction
        };
        let r1 = run(1);
        let r4 = run(4);
        let r12 = run(12);
        assert!(r4 >= r1 - 1e-9, "4 proxies ({r4}) vs 1 ({r1})");
        assert!(r12 >= r4 - 1e-9, "12 proxies ({r12}) vs 4 ({r4})");
        assert!(r12 > r1, "proxies must help overall");
    }

    #[test]
    fn tailored_dissemination_is_at_least_as_good() {
        let (trace, topo) = setup(84);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let base = sim
            .run(
                &DisseminationConfig {
                    fraction: 0.05,
                    n_proxies: 6,
                    ..DisseminationConfig::default()
                },
                &[],
            )
            .unwrap();
        let tailored = sim
            .run(
                &DisseminationConfig {
                    fraction: 0.05,
                    n_proxies: 6,
                    tailored: true,
                    ..DisseminationConfig::default()
                },
                &[],
            )
            .unwrap();
        // The geographic refinement should not hurt (paper: "better
        // results are attainable").
        assert!(
            tailored.reduction >= base.reduction - 0.02,
            "tailored {} vs shared {}",
            tailored.reduction,
            base.reduction
        );
    }

    #[test]
    fn push_traffic_reduces_net_savings() {
        let (trace, topo) = setup(85);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let free = sim.run(&DisseminationConfig::default(), &[]).unwrap();
        let accounted = sim
            .run(
                &DisseminationConfig {
                    count_dissemination_traffic: true,
                    ..DisseminationConfig::default()
                },
                &[],
            )
            .unwrap();
        assert!(accounted.push_traffic > ByteHops::ZERO);
        assert!(accounted.reduction < free.reduction);
    }

    #[test]
    fn update_traffic_requires_events() {
        let (trace, topo) = setup(86);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let cfg = DisseminationConfig {
            count_update_traffic: true,
            ..DisseminationConfig::default()
        };
        assert!(sim.run(&cfg, &[]).is_err());
    }

    #[test]
    fn update_traffic_is_accounted() {
        use specweb_trace::updates::UpdateEvent;
        let (trace, topo) = setup(87);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        // Deterministically update one document that is certain to be
        // disseminated (the most popular one) and one that is not.
        let profile = &sim.profiles()[0];
        let budget = Bytes::new(
            (profile.remotely_accessed_bytes().as_f64() * DisseminationConfig::default().fraction)
                as u64,
        );
        let top = profile.top_docs_for_traffic(budget);
        let (hot_doc, hot_size) = top[0];
        let cold_doc = profile
            .docs
            .iter()
            .map(|d| d.0)
            .find(|d| !top.iter().any(|(t, _)| t == d))
            .expect("some doc is not disseminated");
        let updates = vec![
            UpdateEvent {
                day: 1,
                doc: hot_doc,
            },
            UpdateEvent {
                day: 1,
                doc: cold_doc,
            },
        ];
        let cfg = DisseminationConfig {
            count_update_traffic: true,
            ..DisseminationConfig::default()
        };
        let out = sim.run(&cfg, &updates).unwrap();
        // The hot doc is re-pushed to every proxy holding it; each push
        // costs size × depth(proxy) ≥ size × 1. The cold doc costs 0.
        assert!(out.push_traffic >= ByteHops(hot_size.get()));
    }

    #[test]
    fn shedding_pushes_requests_upstream() {
        let (trace, topo) = setup(88);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let uncapped = sim.run(&DisseminationConfig::default(), &[]).unwrap();
        let capped = sim
            .run(
                &DisseminationConfig {
                    proxy_daily_request_cap: Some(5),
                    ..DisseminationConfig::default()
                },
                &[],
            )
            .unwrap();
        assert!(capped.shed_requests > 0, "cap of 5/day must shed");
        assert!(capped.proxy_hits < uncapped.proxy_hits);
        assert!(capped.reduction < uncapped.reduction);
    }

    #[test]
    fn placement_is_demand_weighted() {
        let (trace, topo) = setup(89);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let p1 = sim.place_proxies(1);
        assert_eq!(p1.len(), 1);
        let all = sim.place_proxies(1_000);
        assert_eq!(all.len(), topo.interior_nodes().len());
        // The single best node must be one of the deeper, busier ones —
        // never a zero-demand node.
        let leaf_demand: u64 = trace.len() as u64;
        assert!(leaf_demand > 0);
    }

    #[test]
    fn obs_records_interception_accounting() {
        use specweb_core::obs::{MetricValue, Obs};
        let (trace, topo) = setup(95);
        let obs = Obs::new();
        let sim = DisseminationSim::new(&trace, &topo).unwrap().with_obs(&obs);
        let out = sim
            .run(
                &DisseminationConfig {
                    proxy_daily_request_cap: Some(5),
                    count_dissemination_traffic: true,
                    ..DisseminationConfig::default()
                },
                &[],
            )
            .unwrap();
        let snap = obs.snapshot();
        let counter = |name: &str| match snap.deterministic.get(name) {
            Some(MetricValue::Counter { value }) => *value,
            other => panic!("missing counter {name}: {other:?}"),
        };
        assert_eq!(counter("dissem.proxy_hits"), out.proxy_hits);
        assert_eq!(counter("dissem.origin_hits"), out.origin_hits);
        assert_eq!(counter("dissem.shed_requests"), out.shed_requests);
        assert_eq!(counter("dissem.push_byte_hops"), out.push_traffic.get());
        assert_eq!(
            snap.deterministic["dissem.proxy_storage_bytes"],
            MetricValue::Gauge {
                value: out.total_proxy_storage.get()
            }
        );
        assert!(
            snap.wallclock.is_empty(),
            "replay metrics are deterministic"
        );
    }

    #[test]
    fn rejects_bad_fraction() {
        let (trace, topo) = setup(90);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let cfg = DisseminationConfig {
            fraction: 1.5,
            ..DisseminationConfig::default()
        };
        assert!(sim.run(&cfg, &[]).is_err());
    }

    #[test]
    fn intercepted_fraction_matches_hits() {
        let (trace, topo) = setup(91);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let out = sim.run(&DisseminationConfig::default(), &[]).unwrap();
        let expect = out.proxy_hits as f64 / (out.proxy_hits + out.origin_hits) as f64;
        assert!((out.intercepted_fraction - expect).abs() < 1e-12);
    }

    #[test]
    fn sharded_replay_equals_serial_replay() {
        // Forcing everything into one shard must reproduce the sharded
        // merge bit for bit — with a daily cap (per-proxy day counters),
        // under faults (capacity thinning), and in the healthy case.
        // Sharding only engages with >1 worker; output is identical at
        // any width, so pinning the process default is side-effect-free.
        specweb_core::par::set_default_jobs(2);
        let (trace, topo) = setup(93);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        assert!(sim.shards.len() > 1, "topology must yield several shards");
        let mut serial_sim = DisseminationSim::new(&trace, &topo).unwrap();
        serial_sim.shards = vec![(0..trace.accesses.len()).collect()];

        let capped = DisseminationConfig {
            proxy_daily_request_cap: Some(5),
            ..DisseminationConfig::default()
        };
        for cfg in [&DisseminationConfig::default(), &capped] {
            let sharded = sim.run(cfg, &[]).unwrap();
            let serial = serial_sim.run(cfg, &[]).unwrap();
            assert_eq!(
                serde_json::to_string(&sharded).unwrap(),
                serde_json::to_string(&serial).unwrap()
            );
        }

        let fcfg = specweb_netsim::fault::FaultConfig::light(trace.duration);
        let plan =
            FaultPlan::generate(&specweb_core::rng::SeedTree::new(933), &topo, &fcfg).unwrap();
        let sharded = sim.run_with_faults(&capped, &[], &plan).unwrap();
        let serial = serial_sim.run_with_faults(&capped, &[], &plan).unwrap();
        assert_eq!(
            serde_json::to_string(&sharded).unwrap(),
            serde_json::to_string(&serial).unwrap()
        );
    }

    #[test]
    fn faulted_replay_is_bit_for_bit_deterministic() {
        let (trace, topo) = setup(90);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let cfg = DisseminationConfig::default();
        let fcfg = specweb_netsim::fault::FaultConfig::light(trace.duration);
        let seed = specweb_core::rng::SeedTree::new(901);
        let plan_a = FaultPlan::generate(&seed, &topo, &fcfg).unwrap();
        let plan_b = FaultPlan::generate(&seed, &topo, &fcfg).unwrap();
        let a = sim.run_with_faults(&cfg, &[], &plan_a).unwrap();
        let b = sim.run_with_faults(&cfg, &[], &plan_b).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed must replay identically"
        );
    }

    #[test]
    fn faults_degrade_gracefully_and_conserve_requests() {
        let (trace, topo) = setup(91);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let cfg = DisseminationConfig::default();
        let fcfg = specweb_netsim::fault::FaultConfig::light(trace.duration);
        let plan =
            FaultPlan::generate(&specweb_core::rng::SeedTree::new(911), &topo, &fcfg).unwrap();
        let d = sim.run_with_faults(&cfg, &[], &plan).unwrap();
        // Every attempted request is accounted for exactly once.
        assert_eq!(
            d.outcome.proxy_hits + d.outcome.origin_hits + d.unavailable,
            d.healthy.proxy_hits + d.healthy.origin_hits,
            "requests leaked in the faulted replay"
        );
        assert!((0.0..=1.0).contains(&d.availability));
        assert!(
            d.outcome.proxy_hits <= d.healthy.proxy_hits,
            "faults cannot create interceptions"
        );
        assert!(d.byte_hops_inflation.is_finite());
    }

    #[test]
    fn crashed_proxies_fall_through_to_the_home_server() {
        let (trace, topo) = setup(92);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let cfg = DisseminationConfig::default();
        // Every interior node is crashed for the entire horizon.
        let mut plan = FaultPlan::none();
        plan.horizon = specweb_core::time::SimTime::ZERO.saturating_add(trace.duration);
        let whole = FaultWindow {
            start: specweb_core::time::SimTime::ZERO,
            end: plan.horizon,
        };
        for n in topo.interior_nodes() {
            plan.crashes.insert(n, vec![whole]);
        }
        let d = sim.run_with_faults(&cfg, &[], &plan).unwrap();
        assert_eq!(d.outcome.proxy_hits, 0, "crashed proxies served requests");
        assert_eq!(d.unavailable, 0, "links were healthy: origin must serve");
        assert_eq!(
            d.outcome.origin_hits,
            d.healthy.proxy_hits + d.healthy.origin_hits
        );
        // Each request is denied at every crashed proxy that held its
        // document, so denials are at least the healthy interceptions.
        assert!(d.fault_denied >= d.healthy.proxy_hits);
        // All interceptions lost: traffic inflates back toward baseline.
        assert!(
            d.byte_hops_inflation >= 1.0,
            "inflation {} < 1 with all proxies down",
            d.byte_hops_inflation
        );
        assert!((d.availability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn client_side_chaos_surfaces_in_the_degraded_outcome() {
        let (trace, topo) = setup(93);
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let cfg = DisseminationConfig::default();
        let chaotic = specweb_netsim::fault::FaultConfig::chaotic(trace.duration);
        let plan =
            FaultPlan::generate(&specweb_core::rng::SeedTree::new(931), &topo, &chaotic).unwrap();
        let d = sim.run_with_faults(&cfg, &[], &plan).unwrap();
        // The chaotic preset keeps each leaf degraded for a sizable
        // fraction of the horizon: every client-side class must leave a
        // visible mark in the outcome.
        assert!(d.stalled > 0, "no stalls surfaced");
        assert!(d.slow_served > 0, "no slow-client serves surfaced");
        assert!(d.partial_write_resends > 0, "no resends surfaced");
        // A stalled request still arrives (deferred), so requests are
        // conserved minus the truly unavailable ones.
        assert_eq!(
            d.outcome.proxy_hits + d.outcome.origin_hits + d.unavailable,
            d.healthy.proxy_hits + d.healthy.origin_hits,
            "requests leaked in the chaotic replay"
        );
        // Each resend moves the document once more over the same hops.
        assert_eq!(
            d.outcome.with_dissemination.transfers,
            d.outcome.proxy_hits + d.outcome.origin_hits + d.partial_write_resends
        );
        // Bit-for-bit determinism holds with the new classes active.
        let again = sim.run_with_faults(&cfg, &[], &plan).unwrap();
        assert_eq!(
            serde_json::to_string(&d).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
        // The light preset keeps every client-side counter at zero, so
        // the committed degraded-mode experiments are untouched.
        let light = specweb_netsim::fault::FaultConfig::light(trace.duration);
        let light_plan =
            FaultPlan::generate(&specweb_core::rng::SeedTree::new(931), &topo, &light).unwrap();
        let quiet = sim.run_with_faults(&cfg, &[], &light_plan).unwrap();
        assert_eq!(quiet.stalled, 0);
        assert_eq!(quiet.slow_served, 0);
        assert_eq!(quiet.partial_write_resends, 0);
    }
}
