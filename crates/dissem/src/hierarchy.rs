//! Multi-level dissemination (§2.3).
//!
//! The paper's own objection to aggressive dissemination: *"If 96% of
//! all remote accesses to 100 servers are now to be served by one
//! proxy, isn't that proxy going to become a performance bottleneck?
//! The answer is yes, unless the process of disseminating popular
//! information continues for another level, and so on. If that is not
//! possible, then another solution would be for the proxy to
//! dynamically adjust the level of 'shielding' it provides."*
//!
//! This module stages both answers:
//!
//! * [`proxies_at_depth`] / [`proxies_down_to_depth`] select whole tree
//!   levels as proxy sets, so a one-level deployment (the root's
//!   children) can be compared with deployments that push replicas a
//!   further level toward the clients;
//! * [`compare_levels`] runs the dissemination simulator over the
//!   deployments under a per-proxy request cap and reports how the
//!   bottleneck dissolves as levels are added.

use serde::{Deserialize, Serialize};
use specweb_core::ids::NodeId;
use specweb_core::Result;
use specweb_netsim::topology::{NodeKind, Topology};

use crate::simulate::{DisseminationConfig, DisseminationSim};

/// All interior nodes at exactly depth `d`.
pub fn proxies_at_depth(topo: &Topology, d: u32) -> Vec<NodeId> {
    (0..topo.len() as u32)
        .map(NodeId::new)
        .filter(|&n| topo.kind(n) == NodeKind::Interior && topo.depth(n) == d)
        .collect()
}

/// All interior nodes with depth in `1..=d` — a `d`-level deployment.
pub fn proxies_down_to_depth(topo: &Topology, d: u32) -> Vec<NodeId> {
    (0..topo.len() as u32)
        .map(NodeId::new)
        .filter(|&n| topo.kind(n) == NodeKind::Interior && topo.depth(n) <= d)
        .collect()
}

/// One deployment's outcome under load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelOutcome {
    /// Deepest proxy level deployed.
    pub levels: u32,
    /// Number of proxies.
    pub n_proxies: usize,
    /// Fraction of replayed requests served by proxies.
    pub intercepted: f64,
    /// Requests a capped proxy had to shed upstream.
    pub shed_requests: u64,
    /// Net bytes×hops reduction.
    pub reduction: f64,
}

/// Runs the same dissemination configuration over 1-, 2-, …, `max_depth`-
/// level deployments under `per_proxy_daily_cap`, demonstrating how
/// adding levels absorbs the load a single level sheds.
pub fn compare_levels(
    sim: &DisseminationSim<'_>,
    topo: &Topology,
    base: &DisseminationConfig,
    max_depth: u32,
    per_proxy_daily_cap: u64,
) -> Result<Vec<LevelOutcome>> {
    let mut out = Vec::new();
    for d in 1..=max_depth {
        let proxies = proxies_down_to_depth(topo, d);
        if proxies.is_empty() {
            break;
        }
        let cfg = DisseminationConfig {
            explicit_proxies: Some(proxies.clone()),
            proxy_daily_request_cap: Some(per_proxy_daily_cap),
            ..base.clone()
        };
        let r = sim.run(&cfg, &[])?;
        out.push(LevelOutcome {
            levels: d,
            n_proxies: proxies.len(),
            intercepted: r.intercepted_fraction,
            shed_requests: r.shed_requests,
            reduction: r.reduction,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specweb_trace::generator::{TraceConfig, TraceGenerator};

    fn setup() -> (specweb_trace::generator::Trace, Topology) {
        let topo = Topology::balanced(3, 3, 4);
        let mut cfg = TraceConfig::small(310);
        cfg.duration_days = 8;
        cfg.sessions_per_day = 60;
        let trace = TraceGenerator::new(cfg).unwrap().generate(&topo).unwrap();
        (trace, topo)
    }

    #[test]
    fn level_selectors_select_levels() {
        let topo = Topology::balanced(3, 3, 4);
        assert_eq!(proxies_at_depth(&topo, 1).len(), 3);
        assert_eq!(proxies_at_depth(&topo, 2).len(), 9);
        assert_eq!(proxies_at_depth(&topo, 3).len(), 27);
        assert_eq!(proxies_at_depth(&topo, 4).len(), 0); // leaves
        assert_eq!(proxies_down_to_depth(&topo, 2).len(), 12);
        for n in proxies_at_depth(&topo, 2) {
            assert_eq!(topo.depth(n), 2);
        }
    }

    #[test]
    fn adding_levels_dissolves_the_bottleneck() {
        let (trace, topo) = setup();
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let base = DisseminationConfig {
            fraction: 0.2,
            ..DisseminationConfig::default()
        };
        // A cap tight enough that one level sheds visibly.
        let rows = compare_levels(&sim, &topo, &base, 3, 40).unwrap();
        assert_eq!(rows.len(), 3);
        // Each extra level adds proxies…
        assert!(rows[0].n_proxies < rows[1].n_proxies);
        assert!(rows[1].n_proxies < rows[2].n_proxies);
        // …and more levels never *increase* shedding; the deepest
        // deployment sheds less than the single level.
        assert!(
            rows[2].shed_requests <= rows[0].shed_requests,
            "3 levels shed {} vs 1 level {}",
            rows[2].shed_requests,
            rows[0].shed_requests
        );
        // Interception should not fall as levels are added.
        assert!(rows[2].intercepted >= rows[0].intercepted - 0.02);
    }

    #[test]
    fn uncapped_single_level_equals_explicit_placement() {
        let (trace, topo) = setup();
        let sim = DisseminationSim::new(&trace, &topo).unwrap();
        let level1 = proxies_at_depth(&topo, 1);
        let cfg = DisseminationConfig {
            explicit_proxies: Some(level1.clone()),
            ..DisseminationConfig::default()
        };
        let out = sim.run(&cfg, &[]).unwrap();
        // Every interception happens at depth 1 ⇒ hops saved = 1 of 4.
        assert!(out.intercepted_fraction > 0.0);
        assert!(out.reduction > 0.0);
        assert!(
            out.reduction <= 0.26,
            "depth-1 proxies can save at most 25%: {}",
            out.reduction
        );
    }
}
