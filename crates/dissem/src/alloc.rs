//! Proxy storage allocation (§2.1–§2.3).
//!
//! Given a cluster of servers `S₁…Sₙ` with demands `R_i` (bytes/day
//! served outside the cluster) and exponential popularity rates `λ_i`,
//! the proxy `S₀` must split its storage `B₀` into per-server quotas
//! `B_i` maximizing the intercepted fraction (eq. 1):
//!
//! ```text
//! α_C = Σ R_i·H_i(B_i) / Σ R_i,   H_i(b) = 1 − exp(−λ_i b)
//! ```
//!
//! Setting all marginal gains equal (eq. 2) under the exponential model
//! yields the closed form of eqs. 4–5. Two engineering notes recorded
//! here because they matter for a faithful implementation:
//!
//! * **Non-negativity.** The closed form can assign `B_j < 0` to a
//!   sufficiently unpopular server. The true constrained optimum (KKT)
//!   drops such servers and re-solves over the rest — the classic
//!   water-filling loop, implemented in [`optimize`].
//! * **Eq. 10 as printed has a typo.** Solving eq. 9 for `B₀` gives
//!   `B₀ = (n/λ)·ln(1/(1−α))`, not `ln(1/α)`; the paper's own numeric
//!   example (λ = 6.247×10⁻⁷, n = 10, α = 0.9 ⇒ ≈36 MB) matches the
//!   corrected form, which is what [`storage_for_alpha`] implements.
//!
//! For popularity profiles that are *not* well fitted by an exponential,
//! [`optimize_empirical`] allocates directly against measured hit curves
//! by greedy marginal density — optimal for the fractional relaxation
//! and the natural generalization the paper gestures at in §2.3.

use serde::{Deserialize, Serialize};
use specweb_core::units::Bytes;
use specweb_core::{CoreError, Result};

use crate::analysis::ServerProfile;

/// One server's fitted model parameters: `(λ_i, R_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerModel {
    /// Exponential popularity rate `λ_i` (per byte).
    pub lambda: f64,
    /// Demand `R_i` (bytes/day served outside the cluster).
    pub demand: f64,
}

impl ServerModel {
    /// Hit probability for a replica of `b` bytes.
    pub fn hit(&self, b: f64) -> f64 {
        1.0 - (-self.lambda * b).exp()
    }
}

/// A computed allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Per-server quotas `B_i`, aligned with the input order.
    pub bytes: Vec<Bytes>,
    /// Predicted intercepted fraction `α_C` (eq. 1).
    pub alpha: f64,
}

fn validate(servers: &[ServerModel]) -> Result<()> {
    if servers.is_empty() {
        return Err(CoreError::invalid_config(
            "alloc.servers",
            "need at least one server",
        ));
    }
    for (i, s) in servers.iter().enumerate() {
        if !(s.lambda.is_finite() && s.lambda > 0.0) {
            return Err(CoreError::invalid_config(
                "alloc.lambda",
                format!("server {i}: λ must be positive, got {}", s.lambda),
            ));
        }
        if !(s.demand.is_finite() && s.demand >= 0.0) {
            return Err(CoreError::invalid_config(
                "alloc.demand",
                format!("server {i}: R must be non-negative, got {}", s.demand),
            ));
        }
    }
    Ok(())
}

/// Predicted `α_C` (eq. 1) for a given allocation.
pub fn predict_alpha(servers: &[ServerModel], bytes: &[Bytes]) -> f64 {
    let total_r: f64 = servers.iter().map(|s| s.demand).sum();
    if total_r <= 0.0 {
        return 0.0;
    }
    servers
        .iter()
        .zip(bytes)
        .map(|(s, &b)| s.demand * s.hit(b.as_f64()))
        .sum::<f64>()
        / total_r
}

/// The optimal allocation (eqs. 4–5 with the non-negativity
/// water-filling loop).
///
/// ```
/// use specweb_core::Bytes;
/// use specweb_dissem::alloc::{optimize, ServerModel};
/// // One popular and one unpopular server sharing a 1 MiB proxy.
/// let servers = [
///     ServerModel { lambda: 6.247e-7, demand: 1e6 },
///     ServerModel { lambda: 6.247e-7, demand: 1e4 },
/// ];
/// let a = optimize(&servers, Bytes::from_mib(1)).unwrap();
/// assert!(a.bytes[0] > a.bytes[1]);           // popularity earns space
/// let used: u64 = a.bytes.iter().map(|b| b.get()).sum();
/// assert_eq!(used, Bytes::from_mib(1).get()); // budget fully used
/// assert!(a.alpha > 0.0 && a.alpha < 1.0);
/// ```
pub fn optimize(servers: &[ServerModel], b0: Bytes) -> Result<Allocation> {
    validate(servers)?;
    let n = servers.len();
    let budget = b0.as_f64();

    // Active set: servers that may receive a positive quota.
    let mut active: Vec<bool> = servers.iter().map(|s| s.demand > 0.0).collect();
    // lint:allow(W3): one slot per already-materialized server model
    let mut raw = vec![0.0f64; n];

    // Water-filling re-solves are bounded by the server count but vary
    // with the demand skew; the process-wide total is a cheap health
    // signal for the allocator (deterministic: it depends only on the
    // inputs, never on scheduling).
    let alloc_iterations = specweb_core::obs::global()
        .metrics
        .counter("dissem.alloc_iterations");

    loop {
        alloc_iterations.incr();
        // Closed form over the active set:
        //   B_j = (1/λ_j)·(ln(λ_j R_j) − c),
        //   c   = [Σ (1/λ_j)·ln(λ_j R_j) − B₀] / Σ (1/λ_j).
        let mut sum_inv = 0.0;
        let mut sum_term = 0.0;
        for (i, s) in servers.iter().enumerate() {
            if active[i] {
                sum_inv += 1.0 / s.lambda;
                sum_term += (s.lambda * s.demand).ln() / s.lambda;
            }
        }
        if sum_inv == 0.0 {
            // Nothing worth allocating to.
            raw.iter_mut().for_each(|b| *b = 0.0);
            break;
        }
        let c = (sum_term - budget) / sum_inv;
        let mut any_negative = false;
        for (i, s) in servers.iter().enumerate() {
            raw[i] = if active[i] {
                let b = ((s.lambda * s.demand).ln() - c) / s.lambda;
                if b < 0.0 {
                    any_negative = true;
                }
                b
            } else {
                0.0
            };
        }
        if !any_negative {
            break;
        }
        // KKT: deactivate servers pinned at the boundary and re-solve.
        for i in 0..n {
            if active[i] && raw[i] < 0.0 {
                active[i] = false;
            }
        }
    }

    // Round to whole bytes, preserving the budget exactly: floor each,
    // hand out the remainder to the largest fractional parts.
    let mut bytes: Vec<u64> = raw.iter().map(|&b| b.max(0.0).floor() as u64).collect();
    let assigned: u64 = bytes.iter().sum();
    let mut leftover = b0.get().saturating_sub(assigned);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = raw[a].max(0.0).fract();
        let fb = raw[b].max(0.0).fract();
        // total_cmp: a NaN share (degenerate zero-demand server) must
        // sort deterministically instead of panicking mid-allocation.
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        if raw[i] > 0.0 {
            bytes[i] += 1;
            leftover -= 1;
        }
    }

    let bytes: Vec<Bytes> = bytes.into_iter().map(Bytes::new).collect();
    let alpha = predict_alpha(servers, &bytes);
    Ok(Allocation { bytes, alpha })
}

/// Eq. 6 — equal duplication effectiveness (`λ_i = λ` for all i):
/// `B_j = B₀/n + (1/λ)·ln(R_j / geomean(R))`. May go negative for very
/// unpopular servers, exactly as in the paper; use [`optimize`] for the
/// constrained version.
pub fn allocate_equal_lambda(lambda: f64, demands: &[f64], b0: Bytes) -> Result<Vec<f64>> {
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(CoreError::invalid_config(
            "alloc.lambda",
            "must be positive",
        ));
    }
    if demands.is_empty() || demands.iter().any(|&r| r <= 0.0) {
        return Err(CoreError::invalid_config(
            "alloc.demands",
            "all demands must be positive for the closed form",
        ));
    }
    let n = demands.len() as f64;
    let log_geomean = demands.iter().map(|r| r.ln()).sum::<f64>() / n;
    Ok(demands
        .iter()
        .map(|r| b0.as_f64() / n + (r.ln() - log_geomean) / lambda)
        .collect())
}

/// Eq. 7 — equally popular servers (`R_i = R` for all i):
/// `B_j = (1/Σ_i λ_j/λ_i)·(B₀ + Σ_i (1/λ_i)·ln(λ_j/λ_i))`.
pub fn allocate_equal_demand(lambdas: &[f64], b0: Bytes) -> Result<Vec<f64>> {
    if lambdas.is_empty() || lambdas.iter().any(|&l| !(l.is_finite() && l > 0.0)) {
        return Err(CoreError::invalid_config(
            "alloc.lambdas",
            "all λ must be positive",
        ));
    }
    Ok(lambdas
        .iter()
        .map(|&lj| {
            let denom: f64 = lambdas.iter().map(|&li| lj / li).sum();
            let corr: f64 = lambdas.iter().map(|&li| (lj / li).ln() / li).sum();
            (b0.as_f64() + corr) / denom
        })
        .collect())
}

/// Eq. 10 (corrected; see module docs) — the proxy storage needed so a
/// symmetric cluster of `n` servers with rate `λ` is shielded from a
/// fraction `alpha` of its remote requests.
pub fn storage_for_alpha(n: usize, lambda: f64, alpha: f64) -> Result<Bytes> {
    if n == 0 {
        return Err(CoreError::invalid_config("alloc.n", "must be positive"));
    }
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(CoreError::invalid_config(
            "alloc.lambda",
            "must be positive",
        ));
    }
    if !(0.0..1.0).contains(&alpha) {
        return Err(CoreError::invalid_config(
            "alloc.alpha",
            "must be in [0, 1)",
        ));
    }
    let b0 = n as f64 / lambda * (1.0 / (1.0 - alpha)).ln();
    Ok(Bytes::new(b0.ceil() as u64))
}

/// Eq. 9 — the `α` a symmetric cluster achieves with storage `b0`.
pub fn alpha_for_storage(n: usize, lambda: f64, b0: Bytes) -> f64 {
    1.0 - (-lambda * b0.as_f64() / n as f64).exp()
}

/// Baseline: uniform split `B_j = B₀/n`.
pub fn allocate_uniform(servers: &[ServerModel], b0: Bytes) -> Result<Allocation> {
    validate(servers)?;
    let share = b0.get() / servers.len() as u64;
    let bytes: Vec<Bytes> = servers.iter().map(|_| Bytes::new(share)).collect();
    let alpha = predict_alpha(servers, &bytes);
    Ok(Allocation { bytes, alpha })
}

/// Baseline: split proportional to demand `R_j`.
pub fn allocate_proportional(servers: &[ServerModel], b0: Bytes) -> Result<Allocation> {
    validate(servers)?;
    let total_r: f64 = servers.iter().map(|s| s.demand).sum();
    let bytes: Vec<Bytes> = if total_r <= 0.0 {
        servers.iter().map(|_| Bytes::ZERO).collect()
    } else {
        servers
            .iter()
            .map(|s| Bytes::new((b0.as_f64() * s.demand / total_r).floor() as u64))
            .collect()
    };
    let alpha = predict_alpha(servers, &bytes);
    Ok(Allocation { bytes, alpha })
}

/// Empirical allocation against measured hit curves: greedily pick the
/// globally best next document by remote-request density until `B₀` is
/// exhausted. Returns per-server quotas (sum ≤ `B₀`; the gap is at most
/// one document) plus the documents chosen per server.
pub fn optimize_empirical(
    profiles: &[&ServerProfile],
    b0: Bytes,
) -> Result<(Allocation, Vec<Vec<specweb_core::ids::DocId>>)> {
    if profiles.is_empty() {
        return Err(CoreError::invalid_config(
            "alloc.profiles",
            "need at least one profile",
        ));
    }
    // Flatten all docs with their server index; rank by density.
    struct Cand {
        server: usize,
        doc: specweb_core::ids::DocId,
        size: u64,
        density: f64,
    }
    let mut cands = Vec::new();
    for (si, p) in profiles.iter().enumerate() {
        for &(doc, size, remote, _) in &p.docs {
            if remote > 0 {
                cands.push(Cand {
                    server: si,
                    doc,
                    size: size.get().max(1),
                    density: remote as f64 / size.get().max(1) as f64,
                });
            }
        }
    }
    // total_cmp, not partial_cmp: NaN densities cannot occur for sane
    // inputs, but a degenerate profile must degrade to a deterministic
    // order rather than abort the optimizer.
    cands.sort_by(|a, b| {
        b.density
            .total_cmp(&a.density)
            .then(a.server.cmp(&b.server))
            .then(a.doc.cmp(&b.doc))
    });

    let mut remaining = b0.get();
    // lint:allow(W3): one slot per already-materialized server profile
    let mut quotas = vec![0u64; profiles.len()];
    // lint:allow(W3): one slot per already-materialized server profile
    let mut picked: Vec<Vec<specweb_core::ids::DocId>> = vec![Vec::new(); profiles.len()];
    for c in cands {
        if c.size <= remaining {
            remaining -= c.size;
            quotas[c.server] = quotas[c.server].saturating_add(c.size);
            picked[c.server].push(c.doc);
        }
    }

    // Achieved alpha: intercepted remote requests / total remote requests.
    let mut total = 0u64;
    let mut hit = 0u64;
    for (si, p) in profiles.iter().enumerate() {
        total = total.saturating_add(p.total_remote_requests());
        let set: std::collections::BTreeSet<_> = picked[si].iter().copied().collect();
        for &(doc, _, remote, _) in &p.docs {
            if set.contains(&doc) {
                hit = hit.saturating_add(remote);
            }
        }
    }
    let alpha = if total == 0 {
        0.0
    } else {
        hit as f64 / total as f64
    };
    Ok((
        Allocation {
            bytes: quotas.into_iter().map(Bytes::new).collect(),
            alpha,
        },
        picked,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models(pairs: &[(f64, f64)]) -> Vec<ServerModel> {
        pairs
            .iter()
            .map(|&(lambda, demand)| ServerModel { lambda, demand })
            .collect()
    }

    const LAMBDA: f64 = 6.247e-7; // the paper's cs-www.bu.edu fit

    #[test]
    fn symmetric_cluster_splits_evenly() {
        // Eq. 8: identical servers ⇒ B_j = B₀/n.
        let servers = models(&[(LAMBDA, 100.0); 10]);
        let b0 = Bytes::from_mib(36);
        let a = optimize(&servers, b0).unwrap();
        let share = b0.get() / 10;
        for &b in &a.bytes {
            assert!(
                (b.get() as i64 - share as i64).abs() <= 1,
                "expected ≈{share}, got {b}"
            );
        }
        let total: u64 = a.bytes.iter().map(|b| b.get()).sum();
        assert_eq!(total, b0.get(), "budget must be fully used");
    }

    #[test]
    fn paper_sizing_example_36mb_for_90pct() {
        // §2.3: 10 servers, 90% shielding, λ = 6.247e-7 ⇒ ≈36 MB.
        let b0 = storage_for_alpha(10, LAMBDA, 0.9).unwrap();
        let mb = b0.as_f64() / 1e6;
        assert!((mb - 36.9).abs() < 0.5, "got {mb:.1} MB");
        // And the symmetric-optimum α with that storage is 90%.
        let a = alpha_for_storage(10, LAMBDA, b0);
        assert!((a - 0.9).abs() < 1e-6);
    }

    #[test]
    fn paper_sizing_example_500mb_100_servers() {
        // §2.3: 500 MB shields 100 servers from ≈96%.
        let a = alpha_for_storage(100, LAMBDA, Bytes::new(500_000_000));
        assert!((a - 0.956).abs() < 0.01, "got {a}");
    }

    #[test]
    fn optimizer_matches_eq6_for_equal_lambdas() {
        let demands = [50.0, 100.0, 400.0];
        let servers = models(&[(LAMBDA, 50.0), (LAMBDA, 100.0), (LAMBDA, 400.0)]);
        let b0 = Bytes::from_mib(30);
        let general = optimize(&servers, b0).unwrap();
        let closed = allocate_equal_lambda(LAMBDA, &demands, b0).unwrap();
        for (g, c) in general.bytes.iter().zip(&closed) {
            assert!(
                (g.as_f64() - c).abs() < 2.0,
                "general {g} vs closed-form {c}"
            );
        }
        // Popular servers get more than B₀/n, unpopular less.
        assert!(general.bytes[2] > general.bytes[1]);
        assert!(general.bytes[1] > general.bytes[0]);
    }

    #[test]
    fn optimizer_matches_eq7_for_equal_demand() {
        let lambdas = [4e-7, 8e-7, 1.6e-6];
        let servers = models(&[(4e-7, 100.0), (8e-7, 100.0), (1.6e-6, 100.0)]);
        let b0 = Bytes::from_mib(20); // lax: all quotas positive
        let general = optimize(&servers, b0).unwrap();
        let closed = allocate_equal_demand(&lambdas, b0).unwrap();
        for (g, c) in general.bytes.iter().zip(&closed) {
            assert!(
                (g.as_f64() - c).abs() < 2.0,
                "general {g} vs closed-form {c}"
            );
        }
        // With lax storage, the more uniform (small λ) server gets more.
        assert!(general.bytes[0] > general.bytes[2]);
    }

    #[test]
    fn eq7_tight_storage_favors_intermediate_lambda() {
        // Fig. 2's tight regime: with B₀ ≈ 1/λ, a very small λ_j (too
        // uniform to cover usefully) gets *less* than an intermediate λ_j.
        let li = 1e-6;
        let b0 = Bytes::new((1.0 / li) as u64); // tight
        let others = vec![li; 9];
        let bj_at = |lj: f64| {
            let mut ls = others.clone();
            ls.insert(0, lj);
            allocate_equal_demand(&ls, b0).unwrap()[0]
        };
        let very_uniform = bj_at(li / 100.0);
        let intermediate = bj_at(li / 3.0);
        assert!(
            intermediate > very_uniform,
            "tight storage should favor intermediate λ: B(λ/3)={intermediate} B(λ/100)={very_uniform}"
        );
    }

    #[test]
    fn water_filling_zeroes_unpopular_servers() {
        // One dominant server, one with negligible demand, tiny budget:
        // the closed form would go negative on the small one.
        let servers = models(&[(LAMBDA, 1e9), (LAMBDA, 1.0)]);
        let b0 = Bytes::from_kib(100);
        let a = optimize(&servers, b0).unwrap();
        assert_eq!(a.bytes[1], Bytes::ZERO, "unpopular server must get 0");
        assert_eq!(a.bytes[0], b0, "entire budget to the popular server");
    }

    #[test]
    fn zero_demand_servers_get_nothing() {
        let servers = models(&[(LAMBDA, 100.0), (LAMBDA, 0.0)]);
        let a = optimize(&servers, Bytes::from_mib(1)).unwrap();
        assert_eq!(a.bytes[1], Bytes::ZERO);
        assert_eq!(a.bytes[0], Bytes::from_mib(1));
    }

    #[test]
    fn optimizer_beats_baselines() {
        let servers = models(&[
            (2e-7, 500.0),
            (6e-7, 100.0),
            (1e-6, 50.0),
            (3e-6, 900.0),
            (8e-7, 10.0),
        ]);
        let b0 = Bytes::from_mib(8);
        let opt = optimize(&servers, b0).unwrap();
        let uni = allocate_uniform(&servers, b0).unwrap();
        let pro = allocate_proportional(&servers, b0).unwrap();
        assert!(
            opt.alpha >= uni.alpha - 1e-9,
            "opt {} < uniform {}",
            opt.alpha,
            uni.alpha
        );
        assert!(
            opt.alpha >= pro.alpha - 1e-9,
            "opt {} < proportional {}",
            opt.alpha,
            pro.alpha
        );
        assert!(opt.alpha > 0.0 && opt.alpha < 1.0);
    }

    #[test]
    fn allocation_sums_to_budget_and_is_nonnegative() {
        let servers = models(&[(1e-7, 3.0), (9e-7, 80.0), (5e-6, 41.0), (2e-6, 0.5)]);
        let b0 = Bytes::from_mib(3);
        let a = optimize(&servers, b0).unwrap();
        let total: u64 = a.bytes.iter().map(|b| b.get()).sum();
        assert!(total <= b0.get());
        // Full budget used whenever someone has positive demand.
        assert_eq!(total, b0.get());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(optimize(&[], Bytes::from_mib(1)).is_err());
        assert!(optimize(&models(&[(0.0, 1.0)]), Bytes::from_mib(1)).is_err());
        assert!(optimize(&models(&[(1e-6, -1.0)]), Bytes::from_mib(1)).is_err());
        assert!(storage_for_alpha(0, 1e-6, 0.5).is_err());
        assert!(storage_for_alpha(1, 1e-6, 1.0).is_err());
        assert!(allocate_equal_lambda(1e-6, &[], Bytes::from_mib(1)).is_err());
        assert!(allocate_equal_demand(&[0.0], Bytes::from_mib(1)).is_err());
    }

    #[test]
    fn predict_alpha_bounds() {
        let servers = models(&[(LAMBDA, 10.0), (LAMBDA, 20.0)]);
        assert_eq!(predict_alpha(&servers, &[Bytes::ZERO, Bytes::ZERO]), 0.0);
        let big = Bytes::new(u64::MAX / 4);
        let a = predict_alpha(&servers, &[big, big]);
        assert!((a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn storage_alpha_roundtrip() {
        for alpha in [0.3, 0.6, 0.9, 0.99] {
            let b0 = storage_for_alpha(7, LAMBDA, alpha).unwrap();
            let back = alpha_for_storage(7, LAMBDA, b0);
            assert!((back - alpha).abs() < 1e-3, "α={alpha} → {back}");
        }
    }
}
