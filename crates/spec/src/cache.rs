//! Client cache models (§3.2).
//!
//! The paper emulates the whole spectrum of client caching with one
//! knob, `SessionTimeout`: a document entering the cache (by request or
//! by speculative push) stays until the session ends.
//!
//! * `SessionTimeout = 0`   ⇒ no cache at all;
//! * `SessionTimeout = 60 min` ⇒ infinite-size *single-session* cache;
//! * `SessionTimeout = ∞`  ⇒ infinite-size multi-session cache (the
//!   baseline, equivalent to the LAN cache of the paper's reference \[4\]).
//!
//! We add a finite-capacity LRU as the obvious engineering extension.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use specweb_core::ids::DocId;
use specweb_core::time::{Duration, SimTime};
use specweb_core::units::Bytes;

/// Which cache a client runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheModel {
    /// No cache (`SessionTimeout = 0`): every access misses.
    None,
    /// Infinite cache purged when the gap since the client's previous
    /// request reaches `timeout` (a new session starts).
    Session {
        /// The session timeout.
        timeout: Duration,
    },
    /// Infinite multi-session cache (`SessionTimeout = ∞`).
    Infinite,
    /// Finite capacity with least-recently-used eviction.
    Lru {
        /// Total capacity in bytes.
        capacity: Bytes,
    },
}

impl CacheModel {
    /// The paper's baseline: `SessionTimeout = ∞`.
    pub fn baseline() -> CacheModel {
        CacheModel::Infinite
    }
}

/// One client's cache state.
#[derive(Debug, Clone)]
pub struct ClientCache {
    model: CacheModel,
    /// Resident documents → last-touch counter (for LRU). A BTreeMap:
    /// [`ClientCache::resident_docs`] feeds cooperative digests, so the
    /// enumeration order must not depend on hash iteration order.
    resident: BTreeMap<DocId, u64>,
    /// Sizes of resident documents (needed for LRU eviction accounting).
    doc_sizes: BTreeMap<DocId, Bytes>,
    used: Bytes,
    /// Monotonic touch counter.
    clock: u64,
    /// Time of this client's previous request (session tracking).
    last_request: Option<SimTime>,
}

impl ClientCache {
    /// A fresh, empty cache.
    pub fn new(model: CacheModel) -> Self {
        ClientCache {
            model,
            resident: BTreeMap::new(),
            doc_sizes: BTreeMap::new(),
            used: Bytes::ZERO,
            clock: 0,
            last_request: None,
        }
    }

    /// The model this cache runs.
    pub fn model(&self) -> CacheModel {
        self.model
    }

    /// Bytes currently resident.
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Number of resident documents.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Called at the start of every client request *before* the lookup:
    /// handles session expiry. Returns `true` if a new session started
    /// (the cache was purged).
    pub fn on_request(&mut self, now: SimTime) -> bool {
        let purge = match (self.model, self.last_request) {
            (CacheModel::Session { timeout }, Some(prev)) => {
                !timeout.is_infinite() && now.since(prev) >= timeout
            }
            _ => false,
        };
        if purge {
            self.resident.clear();
            self.doc_sizes.clear();
            self.used = Bytes::ZERO;
        }
        self.last_request = Some(now);
        purge
    }

    /// Whether `doc` is resident (touches it for LRU recency).
    pub fn contains(&mut self, doc: DocId) -> bool {
        self.clock += 1;
        let clock = self.clock;
        match self.resident.get_mut(&doc) {
            Some(touch) => {
                *touch = clock;
                true
            }
            None => false,
        }
    }

    /// Whether `doc` is resident, without touching recency — used for
    /// cooperative digests (peeking must not distort LRU order).
    pub fn peek(&self, doc: DocId) -> bool {
        self.resident.contains_key(&doc)
    }

    /// Inserts a document (by client fetch or server push).
    pub fn insert(&mut self, doc: DocId, size: Bytes) {
        match self.model {
            CacheModel::None => {}
            CacheModel::Session { timeout } if timeout == Duration::ZERO => {}
            CacheModel::Lru { capacity } => {
                if size > capacity {
                    return; // cannot ever fit
                }
                self.clock += 1;
                if let Some(touch) = self.resident.get_mut(&doc) {
                    *touch = self.clock;
                    return;
                }
                self.resident.insert(doc, self.clock);
                self.used += size;
                self.sizes_insert(doc, size);
                while self.used > capacity {
                    // used > 0 implies resident docs; an empty map would
                    // simply end the loop.
                    let Some((&lru, _)) = self.resident.iter().min_by_key(|(_, &t)| t) else {
                        break;
                    };
                    let sz = self.sizes_remove(lru);
                    self.resident.remove(&lru);
                    self.used -= sz;
                }
            }
            _ => {
                if !self.resident.contains_key(&doc) {
                    self.used += size;
                }
                self.clock += 1;
                self.resident.insert(doc, self.clock);
                self.sizes_insert(doc, size);
            }
        }
    }

    /// All resident documents (for cooperative digests).
    pub fn resident_docs(&self) -> impl Iterator<Item = DocId> + '_ {
        self.resident.keys().copied()
    }

    // -- internal size bookkeeping ------------------------------------

    fn sizes_insert(&mut self, doc: DocId, size: Bytes) {
        self.doc_sizes.insert(doc, size);
    }

    fn sizes_remove(&mut self, doc: DocId) -> Bytes {
        self.doc_sizes.remove(&doc).unwrap_or(Bytes::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb(n: u64) -> Bytes {
        Bytes::from_kib(n)
    }

    #[test]
    fn none_model_never_caches() {
        let mut c = ClientCache::new(CacheModel::None);
        c.insert(DocId(1), kb(1));
        assert!(!c.contains(DocId(1)));
        assert_eq!(c.used(), Bytes::ZERO);
    }

    #[test]
    fn infinite_model_keeps_everything() {
        let mut c = ClientCache::new(CacheModel::Infinite);
        for i in 0..100 {
            c.insert(DocId(i), kb(10));
        }
        assert_eq!(c.len(), 100);
        assert!(c.contains(DocId(0)));
        assert!(c.contains(DocId(99)));
        // Sessions never purge an infinite cache.
        assert!(!c.on_request(SimTime::from_days(400)));
        assert!(c.contains(DocId(0)));
    }

    #[test]
    fn duplicate_insert_does_not_double_count() {
        let mut c = ClientCache::new(CacheModel::Infinite);
        c.insert(DocId(1), kb(5));
        c.insert(DocId(1), kb(5));
        assert_eq!(c.used(), kb(5));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn session_cache_purges_on_timeout() {
        let timeout = Duration::from_secs(3_600);
        let mut c = ClientCache::new(CacheModel::Session { timeout });
        assert!(!c.on_request(SimTime::from_secs(0)));
        c.insert(DocId(1), kb(1));
        // 30 minutes later: same session.
        assert!(!c.on_request(SimTime::from_secs(1_800)));
        assert!(c.contains(DocId(1)));
        // 2 hours after that: new session, purged.
        assert!(c.on_request(SimTime::from_secs(1_800 + 7_200)));
        assert!(!c.contains(DocId(1)));
        assert_eq!(c.used(), Bytes::ZERO);
    }

    #[test]
    fn session_gap_exactly_timeout_purges() {
        let timeout = Duration::from_secs(60);
        let mut c = ClientCache::new(CacheModel::Session { timeout });
        c.on_request(SimTime::from_secs(0));
        c.insert(DocId(1), kb(1));
        assert!(c.on_request(SimTime::from_secs(60)));
    }

    #[test]
    fn zero_session_timeout_is_no_cache() {
        let mut c = ClientCache::new(CacheModel::Session {
            timeout: Duration::ZERO,
        });
        c.on_request(SimTime::from_secs(1));
        c.insert(DocId(1), kb(1));
        assert!(!c.contains(DocId(1)));
    }

    #[test]
    fn infinite_session_timeout_never_purges() {
        let mut c = ClientCache::new(CacheModel::Session {
            timeout: Duration::INFINITE,
        });
        c.on_request(SimTime::from_secs(0));
        c.insert(DocId(1), kb(1));
        assert!(!c.on_request(SimTime::from_days(1_000)));
        assert!(c.contains(DocId(1)));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ClientCache::new(CacheModel::Lru { capacity: kb(30) });
        c.insert(DocId(1), kb(10));
        c.insert(DocId(2), kb(10));
        c.insert(DocId(3), kb(10));
        // Touch 1 so 2 is the LRU.
        assert!(c.contains(DocId(1)));
        c.insert(DocId(4), kb(10));
        assert!(c.contains(DocId(1)));
        assert!(!c.contains(DocId(2)), "doc 2 should have been evicted");
        assert!(c.contains(DocId(3)));
        assert!(c.contains(DocId(4)));
        assert!(c.used() <= kb(30));
    }

    #[test]
    fn lru_rejects_oversized_doc() {
        let mut c = ClientCache::new(CacheModel::Lru { capacity: kb(10) });
        c.insert(DocId(1), kb(100));
        assert!(!c.contains(DocId(1)));
        assert_eq!(c.used(), Bytes::ZERO);
    }

    #[test]
    fn peek_does_not_touch() {
        let mut c = ClientCache::new(CacheModel::Lru { capacity: kb(20) });
        c.insert(DocId(1), kb(10));
        c.insert(DocId(2), kb(10));
        // Peek at 1 (no touch), then insert 3: 1 is still LRU → evicted.
        assert!(c.peek(DocId(1)));
        c.insert(DocId(3), kb(10));
        assert!(!c.peek(DocId(1)));
        assert!(c.peek(DocId(2)));
    }

    #[test]
    fn resident_docs_enumerates() {
        let mut c = ClientCache::new(CacheModel::Infinite);
        c.insert(DocId(1), kb(1));
        c.insert(DocId(2), kb(1));
        let mut docs: Vec<u32> = c.resident_docs().map(|d| d.raw()).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![1, 2]);
    }
}
