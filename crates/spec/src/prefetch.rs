//! Client-initiated prefetching (§3.4).
//!
//! The paper sketches two client-side mechanisms that complement
//! server-initiated speculation:
//!
//! * **server-assisted prefetching** — the server attaches a list of
//!   likely-next URLs to each response and *the client* decides what to
//!   prefetch (each prefetch is a normal request: it costs the server a
//!   request, unlike a speculative push which rides on the original);
//! * **profile-based prefetching** — the client predicts from its *own*
//!   history (a per-user `P` relation, the paper's companion study \[5\]). The
//!   paper's observation: very effective for re-traversals, useless for
//!   documents the user has never visited.
//!
//! [`UserProfile`] is the per-client transition model; [`HintPolicy`]
//! decides which server hints a client acts on.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use specweb_core::ids::DocId;
use specweb_core::time::{Duration, SimTime};

/// Per-client transition profile: counts of `prev → next` within a
/// window, from this client's own history only.
#[derive(Debug, Clone, Default)]
pub struct UserProfile {
    window: Duration,
    last: Option<(SimTime, DocId)>,
    /// BTreeMaps: [`UserProfile::predict`] enumerates transition rows,
    /// and tied probabilities must break by document id, not by hash
    /// iteration order (the PR 3 `DepMatrix` truncation bug class).
    transitions: BTreeMap<DocId, BTreeMap<DocId, u32>>,
    occurrences: BTreeMap<DocId, u32>,
}

impl UserProfile {
    /// Creates a profile with transition window `window`.
    pub fn new(window: Duration) -> Self {
        UserProfile {
            window,
            ..UserProfile::default()
        }
    }

    /// Records an access by this client.
    pub fn record(&mut self, time: SimTime, doc: DocId) {
        if let Some((t, prev)) = self.last {
            if prev != doc && (self.window.is_infinite() || time.since(t) < self.window) {
                *self
                    .transitions
                    .entry(prev)
                    .or_default()
                    .entry(doc)
                    .or_insert(0) += 1;
            }
        }
        *self.occurrences.entry(doc).or_insert(0) += 1;
        self.last = Some((time, doc));
    }

    /// The client's own estimate of `p[prev → next]`.
    pub fn probability(&self, prev: DocId, next: DocId) -> f64 {
        let occ = *self.occurrences.get(&prev).unwrap_or(&0);
        if occ == 0 {
            return 0.0;
        }
        let n = self
            .transitions
            .get(&prev)
            .and_then(|m| m.get(&next))
            .copied()
            .unwrap_or(0);
        f64::from(n) / f64::from(occ)
    }

    /// The client's predictions after requesting `doc`, most probable
    /// first, above `floor`.
    pub fn predict(&self, doc: DocId, floor: f64) -> Vec<(DocId, f64)> {
        let Some(nexts) = self.transitions.get(&doc) else {
            return Vec::new();
        };
        let occ = *self.occurrences.get(&doc).unwrap_or(&0);
        if occ == 0 {
            return Vec::new();
        }
        let mut out: Vec<(DocId, f64)> = nexts
            .iter()
            .map(|(&j, &n)| (j, f64::from(n) / f64::from(occ)))
            .filter(|&(_, p)| p >= floor)
            .collect();
        // Descending probability, ties broken by id so the prediction
        // list (and anything truncating it) is run-stable.
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Whether the client has ever seen `doc` (predictions only exist
    /// for previously traversed documents — the paper's key limitation
    /// of client-side prefetching).
    pub fn has_seen(&self, doc: DocId) -> bool {
        self.occurrences.contains_key(&doc)
    }
}

/// How a client reacts to server-attached hints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HintPolicy {
    /// Ignore hints entirely.
    Ignore,
    /// Prefetch every hint at or above this probability.
    Threshold {
        /// Minimum hinted probability to act on.
        tp: f64,
    },
    /// Prefetch a hint only if the client's own profile *also* rates the
    /// transition at or above `own_tp` — the conjunction of server
    /// knowledge (spatial locality) and user history (re-traversal).
    ProfileGated {
        /// Minimum hinted probability.
        tp: f64,
        /// Minimum own-profile probability.
        own_tp: f64,
    },
}

impl HintPolicy {
    /// Which hints the client will prefetch.
    pub fn select(
        &self,
        current: DocId,
        hints: &[(DocId, f64)],
        profile: &UserProfile,
    ) -> Vec<DocId> {
        match *self {
            HintPolicy::Ignore => Vec::new(),
            HintPolicy::Threshold { tp } => hints
                .iter()
                .filter(|&&(_, p)| p >= tp)
                .map(|&(j, _)| j)
                .collect(),
            HintPolicy::ProfileGated { tp, own_tp } => hints
                .iter()
                .filter(|&&(j, p)| p >= tp && profile.probability(current, j) >= own_tp)
                .map(|&(j, _)| j)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: Duration = Duration::from_millis(5_000);

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn profile_learns_transitions() {
        let mut p = UserProfile::new(W);
        for k in 0..10u64 {
            p.record(t(k * 1_000_000), DocId(1));
            p.record(t(k * 1_000_000 + 100), DocId(2));
        }
        assert!((p.probability(DocId(1), DocId(2)) - 1.0).abs() < 1e-12);
        assert_eq!(p.probability(DocId(2), DocId(1)), 0.0);
        assert!(p.has_seen(DocId(1)));
        assert!(!p.has_seen(DocId(9)));
    }

    #[test]
    fn profile_window_cuts_transitions() {
        let mut p = UserProfile::new(W);
        p.record(t(0), DocId(1));
        p.record(t(60_000), DocId(2)); // a minute later: not a transition
        assert_eq!(p.probability(DocId(1), DocId(2)), 0.0);
    }

    #[test]
    fn predictions_are_sorted_and_floored() {
        let mut p = UserProfile::new(W);
        for k in 0..10u64 {
            let base = k * 1_000_000;
            p.record(t(base), DocId(1));
            // 1→2 70%, 1→3 30%.
            let next = if k < 7 { 2 } else { 3 };
            p.record(t(base + 100), DocId(next));
        }
        let preds = p.predict(DocId(1), 0.0);
        assert_eq!(preds[0].0, DocId(2));
        assert!((preds[0].1 - 0.7).abs() < 1e-12);
        let floored = p.predict(DocId(1), 0.5);
        assert_eq!(floored.len(), 1);
        assert!(p.predict(DocId(9), 0.0).is_empty());
    }

    #[test]
    fn hint_policies() {
        let hints = vec![(DocId(2), 0.9), (DocId(3), 0.4)];
        let mut profile = UserProfile::new(W);
        // Profile knows 1→2 well, 1→3 not at all.
        for k in 0..5u64 {
            profile.record(t(k * 1_000_000), DocId(1));
            profile.record(t(k * 1_000_000 + 100), DocId(2));
        }

        assert!(HintPolicy::Ignore
            .select(DocId(1), &hints, &profile)
            .is_empty());

        let th = HintPolicy::Threshold { tp: 0.5 }.select(DocId(1), &hints, &profile);
        assert_eq!(th, vec![DocId(2)]);

        let gated = HintPolicy::ProfileGated {
            tp: 0.3,
            own_tp: 0.5,
        }
        .select(DocId(1), &hints, &profile);
        // Doc 3 passes the server hint bar but fails the own-profile bar.
        assert_eq!(gated, vec![DocId(2)]);
    }

    #[test]
    fn self_transitions_are_not_recorded() {
        let mut p = UserProfile::new(W);
        p.record(t(0), DocId(1));
        p.record(t(100), DocId(1));
        assert_eq!(p.probability(DocId(1), DocId(1)), 0.0);
    }
}
