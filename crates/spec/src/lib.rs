//! # specweb-spec
//!
//! The speculative-service protocol of Bestavros, ICDE 1996, §3: a
//! server answering a request for document `D_i` also pushes documents
//! `D_j` it speculates the client will need within a short window —
//! exploiting **spatial** locality of reference (embedded objects and
//! followed links).
//!
//! Components:
//!
//! * [`deps`] — the conditional-probability matrix `P` (`p[i,j]` = Pr
//!   that `D_j` is requested within `T_w` of `D_i`) estimated from
//!   traces, and its closure `P*` (best request-sequence probability);
//! * [`estimator`] — rolling re-estimation with `HistoryLength` /
//!   `UpdateCycle` (the §3.4 staleness machinery);
//! * [`policy`] — which candidates to push: the baseline threshold
//!   `p*[i,j] ≥ T_p` with the `MaxSize` cap, plus the §3.4 variants
//!   (embedding-only, top-k, hybrid push+hint);
//! * [`cache`] — client cache models spanning the paper's
//!   `SessionTimeout` spectrum (none / single-session / infinite) plus a
//!   finite-LRU extension;
//! * [`cooperative`] — piggybacked cache digests (exact and Bloom);
//! * [`prefetch`] — client-side prefetching from per-user profiles and
//!   server-attached hints;
//! * [`simulate`] — the trace-driven simulator producing the paper's
//!   four ratios (bandwidth, server load, service time, miss rate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cooperative;
pub mod deps;
pub mod estimator;
pub mod policy;
pub mod prefetch;
pub mod simulate;

pub use cache::{CacheModel, ClientCache};
pub use deps::{DepMatrix, DepMatrixBuilder};
pub use estimator::RollingEstimator;
pub use policy::{Policy, SpecDecision};
pub use simulate::{SpecConfig, SpecOutcome, SpecSim};
